#include "text/corpus.h"

namespace xcluster {

const std::vector<std::string>& CorpusWords() {
  // Function-local static pointer so the vector is never destroyed (see the
  // style guide's static-storage-duration rules).
  static const auto& words = *new std::vector<std::string>{
      // High-frequency function words (low Zipf ranks).
      "the", "of", "and", "to", "in", "a", "is", "that", "for", "it",
      "with", "as", "was", "on", "are", "be", "this", "by", "from", "or",
      "an", "which", "you", "one", "had", "not", "but", "what", "all", "were",
      "when", "there", "can", "more", "if", "out", "other", "new", "some",
      "could", "time", "these", "two", "may", "then", "first", "any", "my",
      "now", "such", "like", "our", "over", "even", "most", "after", "also",
      "made", "many", "must", "before", "through", "where", "much", "your",
      "well", "down", "should", "because", "each", "just", "those", "how",
      "too", "good", "very", "make", "world", "still", "own", "see", "men",
      "work", "long", "here", "get", "both", "between", "life", "being",
      "under", "never", "day", "same", "another", "know", "while", "last",
      "might", "us", "great", "old", "year", "off", "come", "since",
      "against", "go", "came", "right", "used", "take", "three",
      // Mid-frequency content words.
      "house", "letter", "king", "world", "water", "night", "light", "land",
      "story", "heart", "hand", "question", "money", "silver", "golden",
      "market", "price", "value", "trade", "offer", "goods", "quality",
      "honest", "seller", "buyer", "bidding", "ancient", "rare", "fine",
      "vintage", "classic", "modern", "original", "genuine", "crafted",
      "condition", "excellent", "shipping", "payment", "delivery", "credit",
      "cash", "check", "online", "auction", "reserve", "closed", "open",
      "current", "initial", "increase", "item", "category", "region",
      "europe", "asia", "africa", "australia", "america", "description",
      "annotation", "quantity", "person", "address", "city", "country",
      "street", "phone", "email", "profile", "interest", "education",
      "business", "income", "gender", "watch", "mailbox", "mail", "date",
      "text", "keyword", "bold", "emphasis", "list", "parlist", "listitem",
      // Literary filler (Shakespeare-flavoured, as XMark used).
      "lord", "lady", "sword", "crown", "castle", "noble", "honour",
      "battle", "soldier", "fortune", "virtue", "spirit", "shadow", "dream",
      "sorrow", "mercy", "grace", "wisdom", "folly", "jest", "villain",
      "crownd", "majesty", "herald", "trumpet", "banner", "throne", "realm",
      "kingdom", "queen", "prince", "duke", "earl", "knight", "squire",
      "page", "servant", "master", "mistress", "friend", "enemy", "traitor",
      "loyal", "brave", "coward", "fierce", "gentle", "cruel", "kind",
      "fair", "foul", "sweet", "bitter", "proud", "humble", "rich", "poor",
      "young", "aged", "swift", "slow", "strong", "weak", "wise", "mad",
      "merry", "sad", "glad", "woe", "joy", "grief", "love", "hate",
      "fear", "hope", "faith", "doubt", "truth", "lie", "oath", "vow",
      "curse", "blessing", "prayer", "sin", "heaven", "earth", "sea",
      "storm", "wind", "rain", "sun", "moon", "star", "fire", "ice",
      "stone", "iron", "gold", "pearl", "jewel", "ring", "chain", "robe",
      "cloak", "veil", "mask", "mirror", "candle", "torch", "lantern",
      "gate", "tower", "wall", "bridge", "road", "path", "forest", "field",
      "garden", "river", "mountain", "valley", "island", "shore", "harbor",
      "ship", "sail", "anchor", "voyage", "journey", "quest", "tale",
      "song", "verse", "rhyme", "music", "dance", "feast", "wine", "bread",
      "meat", "fruit", "flower", "rose", "thorn", "leaf", "branch", "root",
      "seed", "harvest", "winter", "spring", "summer", "autumn", "morning",
      "evening", "midnight", "dawn", "dusk", "hour", "moment", "season",
      "age", "century", "history", "memory", "legend", "prophecy", "omen",
      "sign", "wonder", "miracle", "magic", "charm", "spell", "potion",
      "poison", "remedy", "wound", "scar", "blood", "bone", "flesh",
      "breath", "voice", "whisper", "cry", "shout", "laughter", "tear",
      "smile", "frown", "glance", "gaze", "sight", "sound", "touch",
      "taste", "scent", "silence", "echo", "thunder", "lightning", "mist",
      "fog", "frost", "snow", "flame", "ember", "ash", "dust", "clay",
      "sand", "wave", "tide", "stream", "fountain", "well", "spring2",
      "pool", "lake", "marsh", "cave", "cliff", "peak", "abyss", "void",
      // Technical / bibliographic words (for the IMDB-like plots).
      "film", "movie", "director", "actor", "actress", "scene", "camera",
      "screen", "script", "plot", "drama", "comedy", "tragedy", "thriller",
      "mystery", "romance", "adventure", "fantasy", "horror", "western",
      "documentary", "animation", "studio", "producer", "award", "festival",
      "critic", "review", "audience", "premiere", "sequel", "trilogy",
      "character", "hero", "heroine", "narrative", "dialogue", "monologue",
      "soundtrack", "score", "editing", "costume", "makeup", "stunt",
      "special", "effect", "budget", "boxoffice", "release", "rating",
      "cast", "crew", "location", "set", "prop", "take", "cut", "frame",
      "shot", "angle", "closeup", "montage", "flashback", "climax",
      "ending", "twist", "suspense", "tension", "conflict", "resolution",
      "theme", "motif", "symbol", "metaphor", "genre", "style", "tone",
      "mood", "atmosphere", "pacing", "rhythm", "structure", "arc",
  };
  return words;
}

TextGenerator::TextGenerator(double theta)
    : zipf_(CorpusWords().size(), theta) {}

std::string TextGenerator::Generate(Rng* rng, size_t num_words,
                                    size_t topic) const {
  const std::vector<std::string>& words = CorpusWords();
  std::string out;
  for (size_t i = 0; i < num_words; ++i) {
    if (i > 0) out += ' ';
    // Topics rotate the rank-to-word mapping by a fixed stride.
    out += words[(zipf_.Sample(rng) + topic * 37) % words.size()];
  }
  return out;
}

const std::string& TextGenerator::Word(Rng* rng, size_t topic) const {
  const std::vector<std::string>& words = CorpusWords();
  return words[(zipf_.Sample(rng) + topic * 37) % words.size()];
}

}  // namespace xcluster
