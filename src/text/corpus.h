#ifndef XCLUSTER_TEXT_CORPUS_H_
#define XCLUSTER_TEXT_CORPUS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"

namespace xcluster {

/// Returns the embedded word corpus used by the synthetic data generators.
/// Stands in for XMark's Shakespeare word list (a substitution documented in
/// DESIGN.md): several hundred English + domain words, ordered so that a
/// Zipfian rank distribution over the vector yields natural-looking skew.
const std::vector<std::string>& CorpusWords();

/// Generates free text by drawing `num_words` words from the corpus under a
/// Zipf(theta) rank distribution. Deterministic given the Rng state.
///
/// `topic` rotates the rank-to-word mapping, so different topics have
/// different high-frequency vocabularies while sharing the long tail. The
/// generators use topics to correlate text content with document structure
/// (region-specific item descriptions, era-specific movie plots) — the
/// path-to-value correlations that XCluster synopses are built to capture.
class TextGenerator {
 public:
  explicit TextGenerator(double theta = 0.8);

  /// One text value with `num_words` space-separated words.
  std::string Generate(Rng* rng, size_t num_words, size_t topic = 0) const;

  /// One word (e.g., for keyword lists).
  const std::string& Word(Rng* rng, size_t topic = 0) const;

 private:
  ZipfSampler zipf_;
};

}  // namespace xcluster

#endif  // XCLUSTER_TEXT_CORPUS_H_
