#include "text/dictionary.h"

#include <algorithm>

namespace xcluster {

namespace {

void SortUnique(TermSet* terms) {
  std::sort(terms->begin(), terms->end());
  terms->erase(std::unique(terms->begin(), terms->end()), terms->end());
}

}  // namespace

TermSet TermDictionary::InternText(std::string_view text) {
  TermSet terms;
  for (const std::string& token : Tokenize(text)) {
    terms.push_back(pool_.Intern(token));
  }
  SortUnique(&terms);
  return terms;
}

TermSet TermDictionary::LookupText(std::string_view text,
                                   bool* all_known) const {
  TermSet terms;
  bool known = true;
  for (const std::string& token : Tokenize(text)) {
    TermId id = pool_.Lookup(token);
    if (id == kInvalidSymbol) {
      known = false;
      continue;
    }
    terms.push_back(id);
  }
  SortUnique(&terms);
  if (all_known != nullptr) *all_known = known;
  return terms;
}

}  // namespace xcluster
