#ifndef XCLUSTER_TEXT_DICTIONARY_H_
#define XCLUSTER_TEXT_DICTIONARY_H_

#include <string_view>
#include <vector>

#include "common/string_pool.h"
#include "text/tokenizer.h"

namespace xcluster {

/// Id of a term in the global term dictionary underlying all TEXT values.
using TermId = SymbolId;

/// The set of distinct terms of one TEXT value — a sparse representation of
/// the Boolean term vector of Sec. 2 (sorted, unique TermIds).
using TermSet = std::vector<TermId>;

/// Resolves a term string to its TermId (kInvalidSymbol when unknown).
/// The seam between query-time term resolution and the dictionary's
/// backing: a hash-indexed TermDictionary for synopses built in RAM, or a
/// binary search over a sorted index mapped straight from an XCSF image
/// (which never hydrates a dictionary at load).
class TermResolver {
 public:
  virtual ~TermResolver() = default;
  virtual TermId Lookup(std::string_view term) const = 0;
};

/// Maps terms to dense TermIds. One dictionary is shared by a document's
/// TEXT values, the reference synopsis, and the query workload so that
/// ftcontains predicates resolve to the same id space everywhere.
class TermDictionary : public TermResolver {
 public:
  TermDictionary() = default;

  /// Tokenizes `text` and interns every distinct term; returns the sorted
  /// TermSet (the Boolean vector's support).
  TermSet InternText(std::string_view text);

  /// Tokenizes `text` and resolves terms without interning; terms unknown to
  /// the dictionary are dropped (a Boolean vector over the dictionary has 0
  /// for them anyway). `all_known` reports whether every token resolved.
  TermSet LookupText(std::string_view text, bool* all_known = nullptr) const;

  TermId Intern(std::string_view term) { return pool_.Intern(term); }
  TermId Lookup(std::string_view term) const override {
    return pool_.Lookup(term);
  }
  const std::string& Get(TermId id) const { return pool_.Get(id); }

  /// Number of distinct terms.
  size_t size() const { return pool_.size(); }

 private:
  StringPool pool_;
};

}  // namespace xcluster

#endif  // XCLUSTER_TEXT_DICTIONARY_H_
