#include "text/tokenizer.h"

#include <cctype>

namespace xcluster {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> terms;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      terms.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) terms.push_back(std::move(current));
  return terms;
}

}  // namespace xcluster
