#ifndef XCLUSTER_TEXT_TOKENIZER_H_
#define XCLUSTER_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace xcluster {

/// Splits free text into lowercase alphanumeric terms. This defines the
/// Boolean term-vector model of Sec. 2: a TEXT value is the set of distinct
/// terms the tokenizer produces for it.
std::vector<std::string> Tokenize(std::string_view text);

}  // namespace xcluster

#endif  // XCLUSTER_TEXT_TOKENIZER_H_
