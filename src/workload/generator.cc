#include "workload/generator.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/rng.h"
#include "eval/evaluator.h"

namespace xcluster {

namespace {

/// Root-to-node cluster path in the reference synopsis (a tree: every
/// non-root node has exactly one parent).
std::vector<SynNodeId> PathFromRoot(const GraphSynopsis& synopsis,
                                    SynNodeId node) {
  std::vector<SynNodeId> path;
  SynNodeId cur = node;
  for (;;) {
    path.push_back(cur);
    if (cur == synopsis.root() || synopsis.node(cur).parents.empty()) break;
    cur = synopsis.node(cur).parents.front();
  }
  std::reverse(path.begin(), path.end());
  return path;
}

class WorkloadBuilder {
 public:
  WorkloadBuilder(const XmlDocument& doc, const GraphSynopsis& reference,
                  const WorkloadOptions& options)
      : doc_(doc),
        synopsis_(reference),
        options_(options),
        rng_(options.seed),
        evaluator_(doc, reference.term_dictionary().get()) {}

  Workload Build() {
    CollectValueNodes();
    Workload workload;
    size_t guard = options_.num_queries * options_.max_attempts;
    while (workload.queries.size() < options_.num_queries && guard-- > 0) {
      ValueType cls = PickClass();
      WorkloadQuery draw;
      if (!GenerateOne(cls, &draw)) continue;
      draw.query.ResolveTerms(*synopsis_.term_dictionary());
      draw.true_selectivity = evaluator_.Selectivity(draw.query);
      const bool ok = options_.positive ? draw.true_selectivity > 0.0
                                        : draw.true_selectivity == 0.0;
      if (!ok) continue;
      workload.queries.push_back(std::move(draw));
    }
    return workload;
  }

 private:
  void CollectValueNodes() {
    for (SynNodeId id : synopsis_.AliveNodes()) {
      const SynNode& node = synopsis_.node(id);
      if (node.vsumm.empty()) continue;
      switch (node.type) {
        case ValueType::kNumeric:
          numeric_nodes_.push_back(id);
          break;
        case ValueType::kString:
          string_nodes_.push_back(id);
          break;
        case ValueType::kText:
          text_nodes_.push_back(id);
          break;
        case ValueType::kNone:
          break;
      }
    }
  }

  ValueType PickClass() {
    if (rng_.NextDouble() < options_.struct_fraction) return ValueType::kNone;
    std::vector<ValueType> classes;
    if (!numeric_nodes_.empty()) classes.push_back(ValueType::kNumeric);
    if (!string_nodes_.empty()) classes.push_back(ValueType::kString);
    if (!text_nodes_.empty()) classes.push_back(ValueType::kText);
    if (classes.empty()) return ValueType::kNone;
    return classes[rng_.Uniform(classes.size())];
  }

  /// Picks an element of `nodes` weighted by extent size (high-count bias).
  SynNodeId PickWeighted(const std::vector<SynNodeId>& nodes) {
    std::vector<double> weights;
    weights.reserve(nodes.size());
    for (SynNodeId id : nodes) weights.push_back(synopsis_.node(id).count);
    return nodes[rng_.WeightedIndex(weights)];
  }

  const std::string& LabelOf(SynNodeId id) {
    return synopsis_.labels().Get(synopsis_.node(id).label);
  }

  /// Renders the synopsis path `path` (starting at the root cluster) into
  /// query steps under `query`, applying descendant-axis relaxation.
  /// Returns (query var, synopsis node) pairs for the materialized spine.
  std::vector<std::pair<QueryVarId, SynNodeId>> EmitSpine(
      TwigQuery* query, const std::vector<SynNodeId>& path) {
    std::vector<std::pair<QueryVarId, SynNodeId>> spine;
    QueryVarId current = 0;
    bool pending_descendant = false;
    for (size_t i = 1; i < path.size(); ++i) {
      const bool last = (i + 1 == path.size());
      // Skip an intermediate node with probability descendant_prob; the
      // next emitted step then uses the descendant axis.
      if (!last && !pending_descendant &&
          rng_.Bernoulli(options_.descendant_prob)) {
        pending_descendant = true;
        continue;
      }
      TwigStep step;
      step.axis = pending_descendant ? TwigStep::Axis::kDescendant
                                     : TwigStep::Axis::kChild;
      step.label = LabelOf(path[i]);
      pending_descendant = false;
      current = query->AddVar(current, std::move(step));
      spine.push_back({current, path[i]});
    }
    return spine;
  }

  /// Adds existential branches at random spine nodes (one extra step into a
  /// child cluster off the spine).
  void EmitBranches(TwigQuery* query,
                    const std::vector<std::pair<QueryVarId, SynNodeId>>& spine) {
    for (size_t i = 0; i + 1 < spine.size(); ++i) {
      if (!rng_.Bernoulli(options_.branch_prob)) continue;
      const auto [var, node] = spine[i];
      const SynNodeId on_spine = spine[i + 1].second;
      std::vector<SynNodeId> targets;
      std::vector<double> weights;
      for (const SynEdge& edge : synopsis_.node(node).children) {
        if (edge.target == on_spine) continue;
        targets.push_back(edge.target);
        weights.push_back(edge.avg_count * synopsis_.node(edge.target).count);
      }
      if (targets.empty()) continue;
      SynNodeId target = targets[rng_.WeightedIndex(weights)];
      TwigStep step;
      step.axis = TwigStep::Axis::kChild;
      step.label = LabelOf(target);
      query->AddVar(var, std::move(step));
    }
  }

  bool AttachPredicate(TwigQuery* query, QueryVarId var, SynNodeId node) {
    const ValueSummary& vsumm = synopsis_.node(node).vsumm;
    switch (vsumm.type()) {
      case ValueType::kNumeric: {
        switch (vsumm.numeric_kind()) {
          case NumericSummaryKind::kHistogram: {
            const auto& buckets = vsumm.histogram().buckets();
            if (buckets.empty()) return false;
            if (!options_.positive) {
              int64_t hi = vsumm.histogram().domain_hi();
              query->AddPredicate(
                  var, ValuePredicate::Range(hi + 10, hi + 1000));
              return true;
            }
            std::vector<double> weights;
            for (const HistogramBucket& b : buckets) {
              weights.push_back(b.count);
            }
            size_t i = rng_.WeightedIndex(weights);
            size_t span = rng_.Uniform(3);
            size_t j = std::min(buckets.size() - 1, i + span);
            query->AddPredicate(
                var, ValuePredicate::Range(buckets[i].lo, buckets[j].hi));
            return true;
          }
          case NumericSummaryKind::kSample: {
            const auto& sample = vsumm.sample().sample();
            if (sample.empty()) return false;
            if (!options_.positive) {
              int64_t hi = sample.back();
              query->AddPredicate(
                  var, ValuePredicate::Range(hi + 10, hi + 1000));
              return true;
            }
            size_t i = rng_.Uniform(sample.size());
            size_t j = std::min(sample.size() - 1, i + rng_.Uniform(5));
            query->AddPredicate(
                var, ValuePredicate::Range(sample[i], sample[j]));
            return true;
          }
          case NumericSummaryKind::kWavelet: {
            const WaveletSummary& wavelet = vsumm.wavelet();
            if (wavelet.total() <= 0.0) return false;
            int64_t lo = wavelet.domain_lo();
            int64_t hi = wavelet.domain_hi();
            if (!options_.positive) {
              query->AddPredicate(
                  var, ValuePredicate::Range(hi + 10, hi + 1000));
              return true;
            }
            int64_t a = rng_.UniformRange(lo, hi);
            int64_t b = rng_.UniformRange(lo, hi);
            if (a > b) std::swap(a, b);
            query->AddPredicate(var, ValuePredicate::Range(a, b));
            return true;
          }
        }
        return false;
      }
      case ValueType::kString: {
        std::vector<std::string> candidates =
            vsumm.pst().SampleSubstrings(128);
        if (candidates.empty()) return false;
        if (!options_.positive) {
          // A substring containing a symbol never seen in string data.
          query->AddPredicate(var, ValuePredicate::Contains("\x01zq\x01"));
          return true;
        }
        // Prefer longer substrings (more realistic query strings).
        std::vector<double> weights;
        for (const std::string& s : candidates) {
          weights.push_back(vsumm.pst().EstimateCount(s) *
                            static_cast<double>(s.size()));
        }
        query->AddPredicate(
            var, ValuePredicate::Contains(candidates[rng_.WeightedIndex(weights)]));
        return true;
      }
      case ValueType::kText: {
        std::vector<TermId> terms = vsumm.terms().SampleTerms(256);
        if (terms.empty()) return false;
        if (!options_.positive) {
          query->AddPredicate(
              var, ValuePredicate::FtContains({"qzxunseenterm"}));
          return true;
        }
        std::vector<double> weights;
        for (TermId t : terms) weights.push_back(vsumm.terms().Frequency(t));
        std::vector<std::string> chosen;
        chosen.push_back(
            synopsis_.term_dictionary()->Get(terms[rng_.WeightedIndex(weights)]));
        if (rng_.Bernoulli(0.4)) {
          const std::string& second =
              synopsis_.term_dictionary()->Get(terms[rng_.WeightedIndex(weights)]);
          if (second != chosen.front()) chosen.push_back(second);
        }
        query->AddPredicate(var, ValuePredicate::FtContains(std::move(chosen)));
        return true;
      }
      case ValueType::kNone:
        return false;
    }
    return false;
  }

  bool GenerateOne(ValueType cls, WorkloadQuery* out) {
    out->pred_class = cls;
    out->query = TwigQuery();

    std::vector<SynNodeId> path;
    if (cls == ValueType::kNone) {
      // Structural random walk from the root, biased toward heavy edges.
      SynNodeId current = synopsis_.root();
      size_t length = 2 + rng_.Uniform(3);
      path.push_back(current);
      for (size_t step = 0; step < length; ++step) {
        const auto& edges = synopsis_.node(current).children;
        if (edges.empty()) break;
        std::vector<double> weights;
        for (const SynEdge& edge : edges) {
          weights.push_back(edge.avg_count * synopsis_.node(edge.target).count);
        }
        current = edges[rng_.WeightedIndex(weights)].target;
        path.push_back(current);
      }
      if (path.size() < 2) return false;
    } else {
      const std::vector<SynNodeId>* pool = nullptr;
      switch (cls) {
        case ValueType::kNumeric:
          pool = &numeric_nodes_;
          break;
        case ValueType::kString:
          pool = &string_nodes_;
          break;
        case ValueType::kText:
          pool = &text_nodes_;
          break;
        case ValueType::kNone:
          return false;
      }
      if (pool->empty()) return false;
      path = PathFromRoot(synopsis_, PickWeighted(*pool));
      if (path.size() < 2) return false;
    }

    auto spine = EmitSpine(&out->query, path);
    if (spine.empty()) return false;
    EmitBranches(&out->query, spine);
    if (cls != ValueType::kNone) {
      // The spine's last node is the sampled value cluster.
      if (!AttachPredicate(&out->query, spine.back().first,
                           spine.back().second)) {
        return false;
      }
    }
    return true;
  }

  const XmlDocument& doc_;
  const GraphSynopsis& synopsis_;
  const WorkloadOptions& options_;
  Rng rng_;
  ExactEvaluator evaluator_;
  std::vector<SynNodeId> numeric_nodes_;
  std::vector<SynNodeId> string_nodes_;
  std::vector<SynNodeId> text_nodes_;
};

}  // namespace

Workload GenerateWorkload(const XmlDocument& doc,
                          const GraphSynopsis& reference,
                          const WorkloadOptions& options) {
  return WorkloadBuilder(doc, reference, options).Build();
}

}  // namespace xcluster
