#ifndef XCLUSTER_WORKLOAD_GENERATOR_H_
#define XCLUSTER_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "query/twig.h"
#include "synopsis/graph.h"
#include "xml/document.h"

namespace xcluster {

/// Options for workload generation (Sec. 6.1: random positive twig queries
/// sampled from the reference synopsis, with predicates attached at nodes
/// with values; sampling biased toward high counts).
struct WorkloadOptions {
  size_t num_queries = 1000;
  uint64_t seed = 17;

  /// Probability that a spine step is relaxed to the descendant axis
  /// (collapsing the intermediate steps it skips).
  double descendant_prob = 0.25;

  /// Probability of adding an existential branch at a spine node.
  double branch_prob = 0.5;

  /// Fraction of queries that carry no value predicate ("Struct" class);
  /// the remainder split evenly across the value classes present in the
  /// reference synopsis.
  double struct_fraction = 0.3;

  /// Number of attempts to generate a positive query before giving up on a
  /// draw (a safety valve; in practice 1-3 attempts suffice).
  size_t max_attempts = 64;

  /// When true (default), only queries with non-zero true selectivity are
  /// kept; when false, predicates are drawn to be unsatisfiable (negative
  /// workload).
  bool positive = true;
};

/// One generated query with its ground truth.
struct WorkloadQuery {
  TwigQuery query;
  double true_selectivity = 0.0;
  /// Class for reporting: kNone = purely structural; otherwise the type of
  /// the attached value predicate.
  ValueType pred_class = ValueType::kNone;
};

/// A query workload over one data set.
struct Workload {
  std::vector<WorkloadQuery> queries;
};

/// Generates a workload for `doc` by sampling twigs from its reference
/// synopsis `reference` (which must have been built from `doc` and carry
/// its term dictionary). True selectivities are computed with the exact
/// evaluator.
Workload GenerateWorkload(const XmlDocument& doc,
                          const GraphSynopsis& reference,
                          const WorkloadOptions& options);

}  // namespace xcluster

#endif  // XCLUSTER_WORKLOAD_GENERATOR_H_
