#include "workload/io.h"

#include <fstream>
#include <sstream>

#include "query/parser.h"
#include "workload/metrics.h"

namespace xcluster {

namespace {

Result<ValueType> ClassFromName(const std::string& name) {
  if (name == "Struct") return ValueType::kNone;
  if (name == "Numeric") return ValueType::kNumeric;
  if (name == "String") return ValueType::kString;
  if (name == "Text") return ValueType::kText;
  return Status::Corruption("unknown workload class '" + name + "'");
}

bool QueryRoundTrips(const WorkloadQuery& query) {
  for (QueryVarId var = 0; var < query.query.size(); ++var) {
    for (const ValuePredicate& pred : query.query.var(var).predicates) {
      if (pred.substring.find('"') != std::string::npos) return false;
      for (const std::string& term : pred.terms) {
        if (term.find('"') != std::string::npos) return false;
      }
    }
  }
  return true;
}

}  // namespace

Status SaveWorkload(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.precision(17);
  for (const WorkloadQuery& query : workload.queries) {
    if (!QueryRoundTrips(query)) {
      return Status::Unsupported(
          "workload query contains a double quote, which the twig syntax "
          "cannot represent: " +
          query.query.ToString());
    }
    out << ClassName(query.pred_class) << '\t' << query.true_selectivity
        << '\t' << query.query.ToString() << '\n';
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<Workload> LoadWorkload(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  Workload workload;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string class_name;
    std::string selectivity;
    std::string query_text;
    if (!std::getline(fields, class_name, '\t') ||
        !std::getline(fields, selectivity, '\t') ||
        !std::getline(fields, query_text)) {
      return Status::Corruption("bad workload line " +
                                std::to_string(line_number));
    }
    Result<ValueType> cls = ClassFromName(class_name);
    if (!cls.ok()) return cls.status();
    Result<TwigQuery> query = ParseTwig(query_text);
    if (!query.ok()) {
      return Status::Corruption("line " + std::to_string(line_number) + ": " +
                                query.status().ToString());
    }
    WorkloadQuery entry;
    entry.pred_class = cls.value();
    entry.true_selectivity = std::stod(selectivity);
    entry.query = std::move(query).value();
    workload.queries.push_back(std::move(entry));
  }
  return workload;
}

}  // namespace xcluster
