#ifndef XCLUSTER_WORKLOAD_IO_H_
#define XCLUSTER_WORKLOAD_IO_H_

#include <string>

#include "common/status.h"
#include "workload/generator.h"

namespace xcluster {

/// Persists a workload as tab-separated lines:
///   <class>\t<true_selectivity>\t<query>
/// where <class> is Struct/Numeric/String/Text and <query> uses the twig
/// syntax of query/parser.h. Substring predicates containing a double quote
/// cannot be represented (the syntax has no escape) and are rejected.
Status SaveWorkload(const Workload& workload, const std::string& path);

/// Loads a workload written by SaveWorkload. Query strings are re-parsed;
/// true selectivities are taken from the file (they are properties of the
/// data set the workload was generated from).
Result<Workload> LoadWorkload(const std::string& path);

}  // namespace xcluster

#endif  // XCLUSTER_WORKLOAD_IO_H_
