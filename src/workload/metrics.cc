#include "workload/metrics.h"

#include <algorithm>
#include <cmath>

namespace xcluster {

std::string ClassName(ValueType pred_class) {
  switch (pred_class) {
    case ValueType::kNone:
      return "Struct";
    case ValueType::kNumeric:
      return "Numeric";
    case ValueType::kString:
      return "String";
    case ValueType::kText:
      return "Text";
  }
  return "?";
}

double SanityBound(const Workload& workload, double percentile) {
  if (workload.queries.empty()) return 0.0;
  std::vector<double> counts;
  counts.reserve(workload.queries.size());
  for (const WorkloadQuery& q : workload.queries) {
    counts.push_back(q.true_selectivity);
  }
  std::sort(counts.begin(), counts.end());
  size_t index = static_cast<size_t>(
      percentile * static_cast<double>(counts.size()));
  index = std::min(index, counts.size() - 1);
  return counts[index];
}

namespace {

struct Accumulator {
  size_t count = 0;
  double sum_rel = 0.0;
  double sum_abs = 0.0;
  double sum_true = 0.0;

  void Add(double truth, double estimate, double sanity) {
    ++count;
    const double abs_error = std::abs(truth - estimate);
    sum_abs += abs_error;
    sum_rel += abs_error / std::max(truth, sanity);
    sum_true += truth;
  }

  ClassError Finish() const {
    ClassError error;
    error.count = count;
    if (count > 0) {
      const double n = static_cast<double>(count);
      error.avg_rel_error = sum_rel / n;
      error.avg_abs_error = sum_abs / n;
      error.avg_true = sum_true / n;
    }
    return error;
  }
};

ErrorReport Evaluate(const Workload& workload,
                     const std::vector<double>& estimates, double sanity,
                     bool low_count_only) {
  ErrorReport report;
  report.sanity_bound = sanity;
  Accumulator overall;
  std::map<std::string, Accumulator> by_class;
  for (size_t i = 0; i < workload.queries.size() && i < estimates.size();
       ++i) {
    const WorkloadQuery& q = workload.queries[i];
    if (low_count_only && q.true_selectivity >= sanity) continue;
    overall.Add(q.true_selectivity, estimates[i], sanity);
    by_class[ClassName(q.pred_class)].Add(q.true_selectivity, estimates[i],
                                          sanity);
  }
  report.overall = overall.Finish();
  for (const auto& [name, acc] : by_class) {
    report.by_class[name] = acc.Finish();
  }
  return report;
}

}  // namespace

ErrorReport EvaluateErrors(const Workload& workload,
                           const std::vector<double>& estimates,
                           double sanity_override) {
  const double sanity = sanity_override > 0.0
                            ? sanity_override
                            : std::max(1.0, SanityBound(workload));
  return Evaluate(workload, estimates, sanity, /*low_count_only=*/false);
}

ErrorReport EvaluateLowCountErrors(const Workload& workload,
                                   const std::vector<double>& estimates) {
  const double sanity = std::max(1.0, SanityBound(workload));
  return Evaluate(workload, estimates, sanity, /*low_count_only=*/true);
}

}  // namespace xcluster
