#ifndef XCLUSTER_WORKLOAD_METRICS_H_
#define XCLUSTER_WORKLOAD_METRICS_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "workload/generator.h"
#include "xml/document.h"

namespace xcluster {

/// Per-class error aggregates.
struct ClassError {
  size_t count = 0;
  double avg_rel_error = 0.0;  ///< mean |c - e| / max(c, s), in [0, ...)
  double avg_abs_error = 0.0;  ///< mean |c - e|
  double avg_true = 0.0;       ///< mean true selectivity
};

/// Error report over a workload for one synopsis, using the paper's
/// evaluation metric (Sec. 6.1): the average absolute relative error with a
/// sanity bound s set to the 10-percentile of the true counts (90% of
/// queries have true result size >= s).
struct ErrorReport {
  double sanity_bound = 0.0;
  ClassError overall;
  /// Keys: "Struct", "Numeric", "String", "Text" (present classes only).
  std::map<std::string, ClassError> by_class;
};

/// Display name of a workload query class.
std::string ClassName(ValueType pred_class);

/// Sanity bound: the `percentile` quantile of the true counts.
double SanityBound(const Workload& workload, double percentile = 0.10);

/// Computes the error report for `estimates[i]` vs the workload's true
/// selectivities. `estimates` must parallel `workload.queries`. If
/// `sanity_override` > 0 it is used instead of the computed 10-percentile.
ErrorReport EvaluateErrors(const Workload& workload,
                           const std::vector<double>& estimates,
                           double sanity_override = 0.0);

/// Error report restricted to low-count queries (true selectivity below
/// the sanity bound) — the Figure 9 analysis.
ErrorReport EvaluateLowCountErrors(const Workload& workload,
                                   const std::vector<double>& estimates);

}  // namespace xcluster

#endif  // XCLUSTER_WORKLOAD_METRICS_H_
