#include "xml/document.h"

#include <algorithm>

namespace xcluster {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNone:
      return "none";
    case ValueType::kNumeric:
      return "numeric";
    case ValueType::kString:
      return "string";
    case ValueType::kText:
      return "text";
  }
  return "unknown";
}

NodeId XmlDocument::CreateRoot(std::string_view label) {
  nodes_.clear();
  XmlNode node;
  node.label = labels_.Intern(label);
  nodes_.push_back(std::move(node));
  return 0;
}

NodeId XmlDocument::AddChild(NodeId parent, std::string_view label) {
  XmlNode node;
  node.label = labels_.Intern(label);
  node.parent = parent;
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  return id;
}

void XmlDocument::SetNumeric(NodeId node, int64_t value) {
  nodes_[node].type = ValueType::kNumeric;
  nodes_[node].numeric = value;
}

void XmlDocument::SetString(NodeId node, std::string_view value) {
  nodes_[node].type = ValueType::kString;
  nodes_[node].text = std::string(value);
}

void XmlDocument::SetText(NodeId node, std::string_view value) {
  nodes_[node].type = ValueType::kText;
  nodes_[node].text = std::string(value);
}

size_t XmlDocument::CountValued() const {
  size_t count = 0;
  for (const XmlNode& node : nodes_) {
    if (node.type != ValueType::kNone) ++count;
  }
  return count;
}

size_t XmlDocument::Depth() const {
  if (nodes_.empty()) return 0;
  // Nodes are created parent-before-child, so one forward pass suffices.
  std::vector<uint32_t> depth(nodes_.size(), 1);
  uint32_t max_depth = 1;
  for (NodeId id = 1; id < nodes_.size(); ++id) {
    depth[id] = depth[nodes_[id].parent] + 1;
    max_depth = std::max(max_depth, depth[id]);
  }
  return max_depth;
}

std::string XmlDocument::PathOf(NodeId id) const {
  std::vector<SymbolId> labels;
  for (NodeId cur = id; cur != kNoNode; cur = nodes_[cur].parent) {
    labels.push_back(nodes_[cur].label);
  }
  std::string path;
  for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
    path += '/';
    path += labels_.Get(*it);
  }
  return path;
}

}  // namespace xcluster
