#ifndef XCLUSTER_XML_DOCUMENT_H_
#define XCLUSTER_XML_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/string_pool.h"

namespace xcluster {

/// Data type of an XML element's value (Sec. 2 of the paper). Elements with
/// no value are kNone ("null data type").
enum class ValueType : uint8_t {
  kNone = 0,
  kNumeric = 1,  ///< integer values in a domain {0..M-1}
  kString = 2,   ///< short strings (names, titles, ...)
  kText = 3,     ///< free text queried with IR-style term predicates
};

/// Name of a value type for display ("none", "numeric", "string", "text").
const char* ValueTypeName(ValueType type);

using NodeId = uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// One element node of the document tree.
struct XmlNode {
  SymbolId label = kInvalidSymbol;
  ValueType type = ValueType::kNone;
  int64_t numeric = 0;    ///< valid iff type == kNumeric
  std::string text;       ///< raw value iff type is kString or kText
  NodeId parent = kNoNode;
  std::vector<NodeId> children;
};

/// A node-labeled XML document tree T(V, E) with typed element values.
/// Nodes live in a flat arena indexed by NodeId; node 0 is the root once
/// created. Labels are interned in a per-document StringPool.
class XmlDocument {
 public:
  XmlDocument() = default;

  XmlDocument(const XmlDocument&) = delete;
  XmlDocument& operator=(const XmlDocument&) = delete;
  XmlDocument(XmlDocument&&) = default;
  XmlDocument& operator=(XmlDocument&&) = default;

  /// Creates the root element; must be the first node created.
  NodeId CreateRoot(std::string_view label);

  /// Appends a child element under `parent` and returns its id.
  NodeId AddChild(NodeId parent, std::string_view label);

  /// Attaches a NUMERIC value to `node`.
  void SetNumeric(NodeId node, int64_t value);

  /// Attaches a STRING value to `node`.
  void SetString(NodeId node, std::string_view value);

  /// Attaches a TEXT value to `node` (raw text; term vectors are derived by
  /// the text module).
  void SetText(NodeId node, std::string_view value);

  NodeId root() const { return nodes_.empty() ? kNoNode : 0; }
  size_t size() const { return nodes_.size(); }

  const XmlNode& node(NodeId id) const { return nodes_[id]; }
  SymbolId label(NodeId id) const { return nodes_[id].label; }
  const std::string& label_name(NodeId id) const {
    return labels_.Get(nodes_[id].label);
  }
  ValueType type(NodeId id) const { return nodes_[id].type; }
  const std::vector<NodeId>& children(NodeId id) const {
    return nodes_[id].children;
  }

  const StringPool& labels() const { return labels_; }
  StringPool& labels() { return labels_; }

  /// Number of elements carrying a (non-null) value.
  size_t CountValued() const;

  /// Maximum depth of the tree (root at depth 1); 0 when empty.
  size_t Depth() const;

  /// Root-to-node label path rendered as "/a/b/c" (for diagnostics and for
  /// selecting value-summary paths).
  std::string PathOf(NodeId id) const;

 private:
  StringPool labels_;
  std::vector<XmlNode> nodes_;
};

}  // namespace xcluster

#endif  // XCLUSTER_XML_DOCUMENT_H_
