#include "xml/parser.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace xcluster {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Returns true if `s` (after trimming) is a decimal integer.
bool LooksNumeric(std::string_view s, int64_t* out) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  if (b == e) return false;
  size_t i = b;
  if (s[i] == '-' || s[i] == '+') ++i;
  if (i == e) return false;
  int64_t value = 0;
  for (; i < e; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
    value = value * 10 + (s[i] - '0');
    if (value < 0) return false;  // overflow guard; treat as non-numeric
  }
  *out = (s[b] == '-') ? -value : value;
  return true;
}

class ParserImpl {
 public:
  ParserImpl(std::string_view input, const ParseOptions& options,
             XmlDocument* doc)
      : in_(input), options_(options), doc_(doc) {}

  Status Run() {
    SkipProlog();
    if (eof()) return Status::InvalidArgument("empty document");
    XC_RETURN_IF_ERROR(ParseElement(kNoNode));
    SkipMisc();
    if (!eof()) {
      return Status::Corruption("trailing content after root element at byte " +
                                std::to_string(pos_));
    }
    return Status::OK();
  }

 private:
  bool eof() const { return pos_ >= in_.size(); }
  char peek() const { return in_[pos_]; }
  bool StartsWith(std::string_view s) const {
    return in_.compare(pos_, s.size(), s) == 0;
  }

  void SkipSpace() {
    while (!eof() && IsSpace(peek())) ++pos_;
  }

  /// Skips XML declaration, comments, PIs, doctype (without entity decls).
  void SkipProlog() {
    for (;;) {
      SkipSpace();
      if (StartsWith("<?")) {
        SkipUntil("?>");
      } else if (StartsWith("<!--")) {
        SkipUntil("-->");
      } else if (StartsWith("<!DOCTYPE")) {
        SkipDoctype();
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipSpace();
      if (StartsWith("<?")) {
        SkipUntil("?>");
      } else if (StartsWith("<!--")) {
        SkipUntil("-->");
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view terminator) {
    size_t found = in_.find(terminator, pos_);
    pos_ = (found == std::string_view::npos) ? in_.size()
                                             : found + terminator.size();
  }

  void SkipDoctype() {
    // Skip to matching '>' accounting for an optional internal subset.
    int bracket = 0;
    while (!eof()) {
      char c = in_[pos_++];
      if (c == '[') ++bracket;
      if (c == ']') --bracket;
      if (c == '>' && bracket <= 0) return;
    }
  }

  Result<std::string> ParseName() {
    if (eof() || !IsNameStart(peek())) {
      return Status::Corruption("expected name at byte " +
                                std::to_string(pos_));
    }
    size_t start = pos_;
    while (!eof() && IsNameChar(peek())) ++pos_;
    return std::string(in_.substr(start, pos_ - start));
  }

  /// Decodes predefined entities and numeric character references in `raw`.
  std::string DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos || semi - i > 10) {
        out += raw[i++];
        continue;
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") {
        out += '<';
      } else if (ent == "gt") {
        out += '>';
      } else if (ent == "amp") {
        out += '&';
      } else if (ent == "quot") {
        out += '"';
      } else if (ent == "apos") {
        out += '\'';
      } else if (!ent.empty() && ent[0] == '#') {
        long code = 0;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
        }
        if (code > 0 && code < 128) {
          out += static_cast<char>(code);
        } else {
          out += '?';  // non-ASCII reference: placeholder
        }
      } else {
        // Unknown entity: keep literally.
        out.append(raw.substr(i, semi - i + 1));
      }
      i = semi + 1;
    }
    return out;
  }

  Status ParseAttributes(NodeId element) {
    for (;;) {
      SkipSpace();
      if (eof()) return Status::Corruption("unterminated start tag");
      if (peek() == '>' || peek() == '/' || peek() == '?') return Status::OK();
      Result<std::string> name = ParseName();
      if (!name.ok()) return name.status();
      SkipSpace();
      if (eof() || peek() != '=') {
        return Status::Corruption("expected '=' in attribute at byte " +
                                  std::to_string(pos_));
      }
      ++pos_;
      SkipSpace();
      if (eof() || (peek() != '"' && peek() != '\'')) {
        return Status::Corruption("expected quoted attribute value");
      }
      char quote = in_[pos_++];
      size_t start = pos_;
      while (!eof() && peek() != quote) ++pos_;
      if (eof()) return Status::Corruption("unterminated attribute value");
      std::string value = DecodeEntities(in_.substr(start, pos_ - start));
      ++pos_;
      if (options_.attributes_as_children && element != kNoNode) {
        NodeId attr = doc_->AddChild(element, "@" + name.value());
        AssignValue(attr, value);
      }
    }
  }

  /// Types and stores character data on `node` per hints / inference.
  void AssignValue(NodeId node, std::string_view raw) {
    // Trim surrounding whitespace.
    size_t b = 0;
    size_t e = raw.size();
    while (b < e && IsSpace(raw[b])) ++b;
    while (e > b && IsSpace(raw[e - 1])) --e;
    if (b == e) return;
    std::string_view text = raw.substr(b, e - b);

    auto hint = options_.type_hints.find(doc_->label_name(node));
    if (hint != options_.type_hints.end()) {
      switch (hint->second) {
        case ValueType::kNumeric: {
          int64_t value = 0;
          if (LooksNumeric(text, &value)) doc_->SetNumeric(node, value);
          return;
        }
        case ValueType::kString:
          doc_->SetString(node, text);
          return;
        case ValueType::kText:
          doc_->SetText(node, text);
          return;
        case ValueType::kNone:
          return;
      }
    }
    int64_t value = 0;
    if (LooksNumeric(text, &value)) {
      doc_->SetNumeric(node, value);
    } else if (text.size() <= options_.string_max_bytes) {
      doc_->SetString(node, text);
    } else {
      doc_->SetText(node, text);
    }
  }

  Status ParseElement(NodeId parent) {
    if (eof() || peek() != '<') {
      return Status::Corruption("expected '<' at byte " + std::to_string(pos_));
    }
    ++pos_;
    Result<std::string> name = ParseName();
    if (!name.ok()) return name.status();

    NodeId node = (parent == kNoNode) ? doc_->CreateRoot(name.value())
                                      : doc_->AddChild(parent, name.value());
    XC_RETURN_IF_ERROR(ParseAttributes(node));

    if (StartsWith("/>")) {
      pos_ += 2;
      return Status::OK();
    }
    if (eof() || peek() != '>') {
      return Status::Corruption("malformed start tag for <" + name.value() +
                                ">");
    }
    ++pos_;

    std::string char_data;
    for (;;) {
      if (eof()) {
        return Status::Corruption("unterminated element <" + name.value() +
                                  ">");
      }
      if (StartsWith("<![CDATA[")) {
        pos_ += 9;
        size_t end = in_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          return Status::Corruption("unterminated CDATA section");
        }
        char_data.append(in_.substr(pos_, end - pos_));
        pos_ = end + 3;
      } else if (StartsWith("<!--")) {
        SkipUntil("-->");
      } else if (StartsWith("<?")) {
        SkipUntil("?>");
      } else if (StartsWith("</")) {
        pos_ += 2;
        Result<std::string> close = ParseName();
        if (!close.ok()) return close.status();
        if (close.value() != name.value()) {
          return Status::Corruption("mismatched close tag </" + close.value() +
                                    "> for <" + name.value() + ">");
        }
        SkipSpace();
        if (eof() || peek() != '>') {
          return Status::Corruption("malformed close tag");
        }
        ++pos_;
        break;
      } else if (peek() == '<') {
        XC_RETURN_IF_ERROR(ParseElement(node));
      } else {
        size_t start = pos_;
        while (!eof() && peek() != '<') ++pos_;
        char_data += DecodeEntities(in_.substr(start, pos_ - start));
      }
    }

    AssignValue(node, char_data);
    return Status::OK();
  }

  std::string_view in_;
  size_t pos_ = 0;
  const ParseOptions& options_;
  XmlDocument* doc_;
};

}  // namespace

Status XmlParser::Parse(std::string_view input, XmlDocument* doc) {
  *doc = XmlDocument();
  ParserImpl impl(input, options_, doc);
  return impl.Run();
}

Status XmlParser::ParseFile(const std::string& path, XmlDocument* doc) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return Parse(buffer.str(), doc);
}

}  // namespace xcluster
