#include "xml/parser.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/telemetry/telemetry.h"

namespace xcluster {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Returns true if `s` (after trimming) is a decimal integer.
bool LooksNumeric(std::string_view s, int64_t* out) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  if (b == e) return false;
  size_t i = b;
  if (s[i] == '-' || s[i] == '+') ++i;
  if (i == e) return false;
  int64_t value = 0;
  for (; i < e; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
    value = value * 10 + (s[i] - '0');
    if (value < 0) return false;  // overflow guard; treat as non-numeric
  }
  *out = (s[b] == '-') ? -value : value;
  return true;
}

class ParserImpl {
 public:
  ParserImpl(std::string_view input, const ParseOptions& options,
             XmlDocument* doc)
      : in_(input), options_(options), doc_(doc) {}

  Status Run() {
    if (options_.limits.max_input_bytes != 0 &&
        in_.size() > options_.limits.max_input_bytes) {
      XCLUSTER_COUNTER_INC("parse.limit_trips");
      return Status::ResourceExhausted(
          "input of " + std::to_string(in_.size()) +
          " bytes exceeds limit of " +
          std::to_string(options_.limits.max_input_bytes));
    }
    SkipProlog();
    if (eof()) return Status::InvalidArgument("empty document");
    XC_RETURN_IF_ERROR(ParseElement(kNoNode, 1));
    SkipMisc();
    if (!eof()) {
      return Corrupt("trailing content after root element");
    }
    return Status::OK();
  }

 private:
  bool eof() const { return pos_ >= in_.size(); }
  char peek() const { return in_[pos_]; }

  /// "line L, column C" of the current position (1-based). Computed by
  /// scanning, so only the error paths pay for it.
  std::string Here() const { return At(pos_); }

  std::string At(size_t offset) const {
    if (offset > in_.size()) offset = in_.size();
    size_t line = 1;
    size_t column = 1;
    for (size_t i = 0; i < offset; ++i) {
      if (in_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    return "line " + std::to_string(line) + ", column " +
           std::to_string(column);
  }

  Status Corrupt(const std::string& what) const {
    return Status::Corruption(what + " at " + Here());
  }

  Status Exhausted(const std::string& what) const {
    XCLUSTER_COUNTER_INC("parse.limit_trips");
    return Status::ResourceExhausted(what + " at " + Here());
  }
  bool StartsWith(std::string_view s) const {
    return in_.compare(pos_, s.size(), s) == 0;
  }

  void SkipSpace() {
    while (!eof() && IsSpace(peek())) ++pos_;
  }

  /// Skips XML declaration, comments, PIs, doctype (without entity decls).
  void SkipProlog() {
    for (;;) {
      SkipSpace();
      if (StartsWith("<?")) {
        SkipUntil("?>");
      } else if (StartsWith("<!--")) {
        SkipUntil("-->");
      } else if (StartsWith("<!DOCTYPE")) {
        SkipDoctype();
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipSpace();
      if (StartsWith("<?")) {
        SkipUntil("?>");
      } else if (StartsWith("<!--")) {
        SkipUntil("-->");
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view terminator) {
    size_t found = in_.find(terminator, pos_);
    pos_ = (found == std::string_view::npos) ? in_.size()
                                             : found + terminator.size();
  }

  void SkipDoctype() {
    // Skip to matching '>' accounting for an optional internal subset.
    int bracket = 0;
    while (!eof()) {
      char c = in_[pos_++];
      if (c == '[') ++bracket;
      if (c == ']') --bracket;
      if (c == '>' && bracket <= 0) return;
    }
  }

  Result<std::string> ParseName() {
    if (eof() || !IsNameStart(peek())) {
      return Corrupt("expected name");
    }
    size_t start = pos_;
    while (!eof() && IsNameChar(peek())) ++pos_;
    return std::string(in_.substr(start, pos_ - start));
  }

  /// Decodes predefined entities and numeric character references in `raw`
  /// into `*out`, charging each expansion against the document-wide limit.
  Status DecodeEntities(std::string_view raw, std::string* out) {
    out->reserve(out->size() + raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        *out += raw[i++];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos || semi - i > 10) {
        *out += raw[i++];
        continue;
      }
      if (++entity_expansions_ > options_.limits.max_entity_expansions) {
        return Exhausted("entity expansion limit of " +
                         std::to_string(
                             options_.limits.max_entity_expansions) +
                         " exceeded");
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") {
        *out += '<';
      } else if (ent == "gt") {
        *out += '>';
      } else if (ent == "amp") {
        *out += '&';
      } else if (ent == "quot") {
        *out += '"';
      } else if (ent == "apos") {
        *out += '\'';
      } else if (!ent.empty() && ent[0] == '#') {
        long code = 0;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
        }
        if (code > 0 && code < 128) {
          *out += static_cast<char>(code);
        } else {
          *out += '?';  // non-ASCII reference: placeholder
        }
      } else {
        // Unknown entity: keep literally.
        out->append(raw.substr(i, semi - i + 1));
      }
      i = semi + 1;
    }
    return Status::OK();
  }

  Status ParseAttributes(NodeId element) {
    size_t attribute_count = 0;
    for (;;) {
      SkipSpace();
      if (eof()) return Corrupt("unterminated start tag");
      if (peek() == '>' || peek() == '/' || peek() == '?') return Status::OK();
      if (++attribute_count > options_.limits.max_attribute_count) {
        return Exhausted(
            "attribute count exceeds limit of " +
            std::to_string(options_.limits.max_attribute_count));
      }
      Result<std::string> name = ParseName();
      if (!name.ok()) return name.status();
      SkipSpace();
      if (eof() || peek() != '=') {
        return Corrupt("expected '=' in attribute");
      }
      ++pos_;
      SkipSpace();
      if (eof() || (peek() != '"' && peek() != '\'')) {
        return Corrupt("expected quoted attribute value");
      }
      char quote = in_[pos_++];
      size_t start = pos_;
      while (!eof() && peek() != quote) ++pos_;
      if (eof()) return Corrupt("unterminated attribute value");
      std::string value;
      XC_RETURN_IF_ERROR(
          DecodeEntities(in_.substr(start, pos_ - start), &value));
      ++pos_;
      if (options_.attributes_as_children && element != kNoNode) {
        NodeId attr = doc_->AddChild(element, "@" + name.value());
        AssignValue(attr, value);
      }
    }
  }

  /// Types and stores character data on `node` per hints / inference.
  void AssignValue(NodeId node, std::string_view raw) {
    // Trim surrounding whitespace.
    size_t b = 0;
    size_t e = raw.size();
    while (b < e && IsSpace(raw[b])) ++b;
    while (e > b && IsSpace(raw[e - 1])) --e;
    if (b == e) return;
    std::string_view text = raw.substr(b, e - b);

    auto hint = options_.type_hints.find(doc_->label_name(node));
    if (hint != options_.type_hints.end()) {
      switch (hint->second) {
        case ValueType::kNumeric: {
          int64_t value = 0;
          if (LooksNumeric(text, &value)) doc_->SetNumeric(node, value);
          return;
        }
        case ValueType::kString:
          doc_->SetString(node, text);
          return;
        case ValueType::kText:
          doc_->SetText(node, text);
          return;
        case ValueType::kNone:
          return;
      }
    }
    int64_t value = 0;
    if (LooksNumeric(text, &value)) {
      doc_->SetNumeric(node, value);
    } else if (text.size() <= options_.string_max_bytes) {
      doc_->SetString(node, text);
    } else {
      doc_->SetText(node, text);
    }
  }

  Status ParseElement(NodeId parent, size_t depth) {
    if (depth > options_.limits.max_depth) {
      return Exhausted("element nesting exceeds depth limit of " +
                       std::to_string(options_.limits.max_depth));
    }
    if (eof() || peek() != '<') {
      return Corrupt("expected '<'");
    }
    ++pos_;
    Result<std::string> name = ParseName();
    if (!name.ok()) return name.status();

    NodeId node = (parent == kNoNode) ? doc_->CreateRoot(name.value())
                                      : doc_->AddChild(parent, name.value());
    XC_RETURN_IF_ERROR(ParseAttributes(node));

    if (StartsWith("/>")) {
      pos_ += 2;
      return Status::OK();
    }
    if (eof() || peek() != '>') {
      return Corrupt("malformed start tag for <" + name.value() + ">");
    }
    ++pos_;

    std::string char_data;
    for (;;) {
      if (eof()) {
        return Corrupt("unterminated element <" + name.value() + ">");
      }
      if (StartsWith("<![CDATA[")) {
        pos_ += 9;
        size_t end = in_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          return Corrupt("unterminated CDATA section");
        }
        char_data.append(in_.substr(pos_, end - pos_));
        pos_ = end + 3;
      } else if (StartsWith("<!--")) {
        SkipUntil("-->");
      } else if (StartsWith("<?")) {
        SkipUntil("?>");
      } else if (StartsWith("</")) {
        pos_ += 2;
        Result<std::string> close = ParseName();
        if (!close.ok()) return close.status();
        if (close.value() != name.value()) {
          return Corrupt("mismatched close tag </" + close.value() +
                         "> for <" + name.value() + ">");
        }
        SkipSpace();
        if (eof() || peek() != '>') {
          return Corrupt("malformed close tag");
        }
        ++pos_;
        break;
      } else if (peek() == '<') {
        XC_RETURN_IF_ERROR(ParseElement(node, depth + 1));
      } else {
        size_t start = pos_;
        while (!eof() && peek() != '<') ++pos_;
        XC_RETURN_IF_ERROR(
            DecodeEntities(in_.substr(start, pos_ - start), &char_data));
      }
    }

    AssignValue(node, char_data);
    return Status::OK();
  }

  std::string_view in_;
  size_t pos_ = 0;
  size_t entity_expansions_ = 0;
  const ParseOptions& options_;
  XmlDocument* doc_;
};

}  // namespace

Status XmlParser::Parse(std::string_view input, XmlDocument* doc) {
  XCLUSTER_TRACE_SPAN("parse.document");
  XCLUSTER_SCOPED_TIMER_NS("parse.latency_ns");
  *doc = XmlDocument();
  ParserImpl impl(input, options_, doc);
  Status status = impl.Run();
  XCLUSTER_COUNTER_INC("parse.documents");
  XCLUSTER_COUNTER_ADD("parse.bytes", input.size());
  if (status.ok()) {
    // parse.nodes / parse.latency_ns together give the nodes-per-second
    // ingest rate without a derived metric.
    XCLUSTER_COUNTER_ADD("parse.nodes", doc->size());
  } else {
    XCLUSTER_COUNTER_INC("parse.errors");
  }
  return status;
}

Status XmlParser::ParseFile(const std::string& path, XmlDocument* doc) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return Parse(buffer.str(), doc);
}

}  // namespace xcluster
