#ifndef XCLUSTER_XML_PARSER_H_
#define XCLUSTER_XML_PARSER_H_

#include <map>
#include <string>
#include <string_view>

#include "common/status.h"
#include "xml/document.h"

namespace xcluster {

/// Resource guards applied while parsing untrusted input. Exceeding any
/// limit aborts the parse with Status::ResourceExhausted carrying the
/// line/column where the limit tripped.
struct ParseLimits {
  /// Maximum element nesting depth (the parser recurses per level).
  size_t max_depth = 256;

  /// Maximum input size in bytes; 0 disables the check.
  size_t max_input_bytes = size_t{1} << 30;

  /// Maximum attributes on a single element.
  size_t max_attribute_count = 256;

  /// Maximum entity / character-reference expansions across the document
  /// (an expansion bound, not a declaration bound — internal DTD entity
  /// declarations are rejected outright).
  size_t max_entity_expansions = 1u << 20;
};

/// Options controlling how parsed character data is typed.
struct ParseOptions {
  /// Explicit element-label -> value-type assignments. Labels not listed
  /// fall back to automatic inference (integer text => NUMERIC, short text
  /// => STRING, long text => TEXT).
  std::map<std::string, ValueType> type_hints;

  /// Threshold (in bytes) separating auto-inferred STRING from TEXT values.
  size_t string_max_bytes = 64;

  /// When true, attributes become child elements labeled "@name" carrying a
  /// STRING value (the paper's data model is element-only).
  bool attributes_as_children = true;

  /// Resource guards; see ParseLimits.
  ParseLimits limits;
};

/// Self-contained, non-validating XML parser producing an XmlDocument.
///
/// Supported: nested elements, attributes, character data, CDATA sections,
/// comments, processing instructions, XML declaration, the five predefined
/// entities and numeric character references. Unsupported (rejected with
/// Status): DTDs with internal subsets that declare entities.
///
/// Mixed content: all character data directly under an element is
/// concatenated; an element receives a value only if it has character data.
///
/// Malformed input and tripped ParseLimits never crash the parser: every
/// failure is a Status whose message carries 1-based line/column context.
class XmlParser {
 public:
  explicit XmlParser(ParseOptions options = {}) : options_(std::move(options)) {}

  /// Parses `input` into `doc` (replacing its contents).
  Status Parse(std::string_view input, XmlDocument* doc);

  /// Reads `path` from disk and parses it.
  Status ParseFile(const std::string& path, XmlDocument* doc);

 private:
  ParseOptions options_;
};

}  // namespace xcluster

#endif  // XCLUSTER_XML_PARSER_H_
