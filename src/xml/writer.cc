#include "xml/writer.h"

#include <fstream>

namespace xcluster {

std::string XmlEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void XmlWriter::RenderNode(const XmlDocument& doc, NodeId id, int depth,
                           std::string* out) const {
  const XmlNode& node = doc.node(id);
  const std::string& name = doc.label_name(id);
  if (options_.indent) out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += '<';
  *out += name;

  // Attribute-children first.
  std::vector<NodeId> element_children;
  for (NodeId child : node.children) {
    const std::string& child_name = doc.label_name(child);
    if (!child_name.empty() && child_name[0] == '@') {
      *out += ' ';
      out->append(child_name, 1, std::string::npos);
      *out += "=\"";
      const XmlNode& attr = doc.node(child);
      if (attr.type == ValueType::kNumeric) {
        *out += std::to_string(attr.numeric);
      } else {
        *out += XmlEscape(attr.text);
      }
      *out += '"';
    } else {
      element_children.push_back(child);
    }
  }

  std::string value;
  switch (node.type) {
    case ValueType::kNumeric:
      value = std::to_string(node.numeric);
      break;
    case ValueType::kString:
    case ValueType::kText:
      value = XmlEscape(node.text);
      break;
    case ValueType::kNone:
      break;
  }

  if (element_children.empty() && value.empty()) {
    *out += "/>";
    if (options_.indent) *out += '\n';
    return;
  }

  *out += '>';
  *out += value;
  if (!element_children.empty()) {
    if (options_.indent) *out += '\n';
    for (NodeId child : element_children) {
      RenderNode(doc, child, depth + 1, out);
    }
    if (options_.indent) out->append(static_cast<size_t>(depth) * 2, ' ');
  }
  *out += "</";
  *out += name;
  *out += '>';
  if (options_.indent) *out += '\n';
}

std::string XmlWriter::ToString(const XmlDocument& doc) const {
  std::string out;
  if (doc.root() == kNoNode) return out;
  RenderNode(doc, doc.root(), 0, &out);
  return out;
}

Status XmlWriter::WriteFile(const XmlDocument& doc,
                            const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open " + path + " for writing");
  file << ToString(doc);
  if (!file) return Status::IOError("write failed for " + path);
  return Status::OK();
}

size_t XmlWriter::SerializedSize(const XmlDocument& doc) const {
  return ToString(doc).size();
}

}  // namespace xcluster
