#ifndef XCLUSTER_XML_WRITER_H_
#define XCLUSTER_XML_WRITER_H_

#include <string>

#include "common/status.h"
#include "xml/document.h"

namespace xcluster {

/// Serializes an XmlDocument back to XML text. Attribute-children (labels
/// beginning with '@') are emitted as attributes; everything else as nested
/// elements. Used by the generators to materialize data sets and by Table 1
/// to report the on-disk size of each data set.
class XmlWriter {
 public:
  struct Options {
    bool indent = false;  ///< pretty-print with 2-space indentation
  };

  XmlWriter() : options_(Options()) {}
  explicit XmlWriter(Options options) : options_(options) {}

  /// Renders the whole document to a string.
  std::string ToString(const XmlDocument& doc) const;

  /// Writes the document to `path`.
  Status WriteFile(const XmlDocument& doc, const std::string& path) const;

  /// Size in bytes of the serialized document (without materializing when
  /// possible is unnecessary at our scale; this renders and measures).
  size_t SerializedSize(const XmlDocument& doc) const;

 private:
  void RenderNode(const XmlDocument& doc, NodeId id, int depth,
                  std::string* out) const;

  Options options_;
};

/// Escapes &, <, >, " for inclusion in XML text/attributes.
std::string XmlEscape(std::string_view raw);

}  // namespace xcluster

#endif  // XCLUSTER_XML_WRITER_H_
