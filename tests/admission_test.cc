#include "service/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/telemetry/metrics.h"
#include "net/client.h"
#include "service/executor.h"

namespace xcluster {
namespace {

using telemetry::MonotonicNowNs;

constexpr uint64_t kMs = 1'000'000;    // ns per millisecond
constexpr uint64_t kSec = 1'000'000'000;

TEST(LaneTest, NamesRoundTrip) {
  EXPECT_STREQ(LaneName(Lane::kInteractive), "interactive");
  EXPECT_STREQ(LaneName(Lane::kBulk), "bulk");
  Lane lane = Lane::kBulk;
  EXPECT_TRUE(ParseLane("interactive", &lane));
  EXPECT_EQ(lane, Lane::kInteractive);
  EXPECT_TRUE(ParseLane("bulk", &lane));
  EXPECT_EQ(lane, Lane::kBulk);
  EXPECT_FALSE(ParseLane("batch", &lane));
  EXPECT_FALSE(ParseLane("", &lane));
}

// The bucket takes its clock as a parameter, so refill arithmetic is
// testable exactly: 10 tokens/sec, burst 5, starting full at t=0.
TEST(TokenBucketTest, BurstThenRefillMath) {
  TokenBucket bucket(10.0, 5.0, 0);
  uint64_t retry_after_ms = 0;
  EXPECT_TRUE(bucket.TryCharge(5.0, 0, &retry_after_ms));
  EXPECT_DOUBLE_EQ(bucket.TokensAt(0), 0.0);

  // Empty: one token is 1/10 s away.
  EXPECT_FALSE(bucket.TryCharge(1.0, 0, &retry_after_ms));
  EXPECT_EQ(retry_after_ms, 100u);

  // After exactly that wait the same charge succeeds.
  EXPECT_TRUE(bucket.TryCharge(1.0, 100 * kMs, &retry_after_ms));

  // The bucket never refills past its burst.
  EXPECT_DOUBLE_EQ(bucket.TokensAt(60 * kSec), 5.0);
}

// An oversized request (cost > burst) is admitted when the bucket is full
// and drives it into debt, so it pays the long-run rate instead of being
// unadmittable forever.
TEST(TokenBucketTest, OversizedChargeGoesIntoDebt) {
  TokenBucket bucket(10.0, 5.0, 0);
  uint64_t retry_after_ms = 0;
  EXPECT_TRUE(bucket.TryCharge(50.0, 0, &retry_after_ms));
  EXPECT_DOUBLE_EQ(bucket.TokensAt(0), -45.0);

  // Until the debt is repaid even a single-token charge waits:
  // (1 - (-45)) / 10 per sec = 4.6 s.
  EXPECT_FALSE(bucket.TryCharge(1.0, 0, &retry_after_ms));
  EXPECT_EQ(retry_after_ms, 4600u);

  // Five seconds of refill clears the debt and caps at the burst.
  EXPECT_DOUBLE_EQ(bucket.TokensAt(5 * kSec + 500 * kMs), 5.0);
}

TEST(BackoffTest, RetryAfterHintTakesPrecedence) {
  net::RetryOptions options;
  options.initial_backoff_ms = 25;
  options.max_backoff_ms = 2000;
  // jitter_draw with all-ones mantissa bits: factor rounds to exactly 1.0,
  // so the delay is the undamped base — the easiest point to pin down.
  const uint64_t kFullDraw = ~uint64_t{0};
  // No hint: exponential 25, 50, 100, ... capped at max.
  EXPECT_EQ(net::BackoffDelayMs(options, 1, 0, kFullDraw), 25u);
  EXPECT_EQ(net::BackoffDelayMs(options, 2, 0, kFullDraw), 50u);
  EXPECT_EQ(net::BackoffDelayMs(options, 3, 0, kFullDraw), 100u);
  EXPECT_LE(net::BackoffDelayMs(options, 30, 0, kFullDraw),
            options.max_backoff_ms);
  // A server hint replaces the schedule as the base.
  EXPECT_EQ(net::BackoffDelayMs(options, 1, 500, kFullDraw), 500u);
}

TEST(BackoffTest, JitterStaysWithinHalfToFull) {
  net::RetryOptions options;
  // Draw 0: factor exactly 0.5. The full draw lands within 1ms of the base.
  EXPECT_EQ(net::BackoffDelayMs(options, 1, 1000, 0), 500u);
  for (uint64_t draw : {uint64_t{1}, uint64_t{1} << 40, ~uint64_t{0}}) {
    const uint64_t delay = net::BackoffDelayMs(options, 1, 1000, draw);
    EXPECT_GE(delay, 500u);
    EXPECT_LE(delay, 1000u);
    // Deterministic: the same draw always produces the same delay.
    EXPECT_EQ(delay, net::BackoffDelayMs(options, 1, 1000, draw));
  }
}

TEST(AdmissionTest, QuotaShedsWholeBatchWithRetryAfter) {
  Executor executor;  // inline; quotas apply regardless of pool mode
  AdmissionOptions options;
  AdmissionController admission(&executor, options);
  admission.SetQuota("books", 1000.0, 8.0);

  uint64_t retry_after_ms = 0;
  EXPECT_TRUE(admission
                  .AdmitBatch("books", Lane::kInteractive, 8, 0,
                              &retry_after_ms)
                  .ok());
  Status shed = admission.AdmitBatch("books", Lane::kInteractive, 8, 0,
                                     &retry_after_ms);
  EXPECT_EQ(shed.code(), Status::Code::kUnavailable);
  EXPECT_GE(retry_after_ms, options.min_retry_after_ms);

  // Collections without a quota are never quota-shed.
  EXPECT_TRUE(admission
                  .AdmitBatch("other", Lane::kBulk, 1000, 0, &retry_after_ms)
                  .ok());

  const AdmissionController::Stats stats = admission.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed_quota, 1u);
  EXPECT_EQ(stats.shed_deadline, 0u);
  EXPECT_EQ(stats.lane_admitted[static_cast<size_t>(Lane::kInteractive)], 8u);
  EXPECT_EQ(stats.lane_shed[static_cast<size_t>(Lane::kInteractive)], 8u);
  EXPECT_EQ(stats.lane_admitted[static_cast<size_t>(Lane::kBulk)], 1000u);

  EXPECT_TRUE(admission.RemoveQuota("books"));
  EXPECT_FALSE(admission.RemoveQuota("books"));
  // Quota gone: the formerly exhausted collection admits freely.
  EXPECT_TRUE(admission
                  .AdmitBatch("books", Lane::kInteractive, 64, 0,
                              &retry_after_ms)
                  .ok());
}

// Weighted fair queueing: with one worker pinned, a freshly arrived
// interactive batch must overtake a bulk batch's deep backlog instead of
// queueing behind all of it.
TEST(AdmissionTest, InteractiveOvertakesBulkBacklog) {
  ExecutorOptions executor_options;
  executor_options.num_threads = 1;
  executor_options.queue_capacity = 1024;
  Executor executor(executor_options);
  AdmissionOptions options;  // weights 8:1, window 2x1 worker
  AdmissionController admission(&executor, options);

  // Pin the worker (raw executor submit, outside the admission layer).
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool worker_busy = false;
  ASSERT_TRUE(executor
                  .Submit([&](const Executor::TaskContext&) {
                    std::unique_lock<std::mutex> lock(mu);
                    worker_busy = true;
                    cv.notify_all();
                    cv.wait(lock, [&] { return release; });
                  })
                  .ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return worker_busy; });
  }

  constexpr int kBulk = 32;
  constexpr int kInteractive = 8;
  std::mutex order_mu;
  std::vector<std::string> completion_order;
  std::atomic<int> done{0};
  auto record = [&](const char* label) {
    return [&, label](const Executor::TaskContext&) {
      {
        std::lock_guard<std::mutex> lock(order_mu);
        completion_order.push_back(label);
      }
      ++done;
    };
  };

  const uint64_t bulk_id = admission.BeginBatch(Lane::kBulk);
  for (int i = 0; i < kBulk; ++i) {
    ASSERT_TRUE(admission.Submit(bulk_id, record("bulk"), 0).ok());
  }
  const uint64_t interactive_id = admission.BeginBatch(Lane::kInteractive);
  for (int i = 0; i < kInteractive; ++i) {
    ASSERT_TRUE(
        admission.Submit(interactive_id, record("interactive"), 0).ok());
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  while (done.load() < kBulk + kInteractive) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  admission.EndBatch(bulk_id);
  admission.EndBatch(interactive_id);
  executor.Shutdown(true);

  // Only the small inflight window's worth of bulk work (plus one DRR
  // round) may finish ahead of the interactive batch.
  size_t last_interactive = 0;
  for (size_t i = 0; i < completion_order.size(); ++i) {
    if (completion_order[i] == "interactive") last_interactive = i;
  }
  EXPECT_LT(last_interactive, 16u)
      << "interactive batch queued behind the bulk backlog";
  EXPECT_EQ(admission.stats().dispatched,
            static_cast<uint64_t>(kBulk + kInteractive));
}

// Deadline-slack shedding: once the EWMA has seen slow queries and a
// backlog exists, a batch whose deadline is already unreachable is shed at
// admission instead of expiring query by query in the queue.
TEST(AdmissionTest, UnreachableDeadlineIsShedAfterWarmup) {
  ExecutorOptions executor_options;
  executor_options.num_threads = 1;
  Executor executor(executor_options);
  AdmissionOptions options;
  AdmissionController admission(&executor, options);

  // Cold controller: no samples, never sheds on slack.
  uint64_t retry_after_ms = 0;
  EXPECT_EQ(admission.EstimatedBacklogWaitNs(), 0u);
  EXPECT_TRUE(admission
                  .AdmitBatch("c", Lane::kInteractive, 1,
                              MonotonicNowNs() + 1, &retry_after_ms)
                  .ok());

  // Warm the EWMA with one deliberately slow query.
  std::atomic<int> done{0};
  const uint64_t warm_id = admission.BeginBatch(Lane::kInteractive);
  ASSERT_TRUE(admission
                  .Submit(warm_id,
                          [&](const Executor::TaskContext&) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(50));
                            ++done;
                          },
                          0)
                  .ok());
  while (done.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  admission.EndBatch(warm_id);

  // Pin the worker and build a backlog so the slack estimate is real.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(executor
                  .Submit([&](const Executor::TaskContext&) {
                    std::unique_lock<std::mutex> lock(mu);
                    cv.wait(lock, [&] { return release; });
                  })
                  .ok());
  const uint64_t backlog_id = admission.BeginBatch(Lane::kBulk);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(admission
                    .Submit(backlog_id,
                            [&](const Executor::TaskContext&) { ++done; }, 0)
                    .ok());
  }
  EXPECT_GT(admission.EstimatedBacklogWaitNs(), 0u);

  // ~50ms EWMA x 5 backlogged queries: a 1ns-slack deadline cannot be met.
  Status shed = admission.AdmitBatch("c", Lane::kInteractive, 4,
                                     MonotonicNowNs() + 1, &retry_after_ms);
  EXPECT_EQ(shed.code(), Status::Code::kUnavailable);
  EXPECT_GE(retry_after_ms, options.min_retry_after_ms);
  EXPECT_EQ(admission.stats().shed_deadline, 1u);

  // A deadline-free batch is never slack-shed, whatever the backlog.
  EXPECT_TRUE(
      admission.AdmitBatch("c", Lane::kBulk, 4, 0, &retry_after_ms).ok());
  // And a generous deadline clears the estimate.
  EXPECT_TRUE(admission
                  .AdmitBatch("c", Lane::kInteractive, 4,
                              MonotonicNowNs() + 60 * kSec, &retry_after_ms)
                  .ok());

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  while (done.load() < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  admission.EndBatch(backlog_id);
  executor.Shutdown(true);
}

// Shutdown with work still queued in the fair queue: every submitted task
// is invoked exactly once, with `cancelled` set, so completion-counting
// callers never hang.
TEST(AdmissionTest, ShutdownCancelsQueuedTasksExactlyOnce) {
  ExecutorOptions executor_options;
  executor_options.num_threads = 1;
  Executor executor(executor_options);
  AdmissionController admission(&executor, AdmissionOptions{});

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool worker_busy = false;
  ASSERT_TRUE(executor
                  .Submit([&](const Executor::TaskContext&) {
                    std::unique_lock<std::mutex> lock(mu);
                    worker_busy = true;
                    cv.notify_all();
                    cv.wait(lock, [&] { return release; });
                  })
                  .ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return worker_busy; });
  }

  std::atomic<int> invoked{0};
  std::atomic<int> cancelled{0};
  const uint64_t id = admission.BeginBatch(Lane::kBulk);
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(admission
                    .Submit(id,
                            [&](const Executor::TaskContext& ctx) {
                              ++invoked;
                              if (ctx.cancelled) ++cancelled;
                            },
                            0)
                    .ok());
  }
  EXPECT_GT(admission.pending(), 0u);
  admission.Shutdown();
  EXPECT_EQ(admission.pending(), 0u);

  // Post-shutdown traffic is refused, not queued.
  uint64_t retry_after_ms = 0;
  EXPECT_EQ(admission.AdmitBatch("c", Lane::kBulk, 1, 0, &retry_after_ms)
                .code(),
            Status::Code::kUnsupported);
  EXPECT_EQ(admission
                .Submit(id, [](const Executor::TaskContext&) {}, 0)
                .code(),
            Status::Code::kUnsupported);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  executor.Shutdown(true);

  // The inflight window's tasks ran normally; everything still queued in
  // the controller was invoked with `cancelled` set. Exactly once each.
  EXPECT_EQ(invoked.load(), kTasks);
  EXPECT_GT(cancelled.load(), 0);
}

// max_pending caps the fair queue the same way queue_capacity caps the
// executor: ResourceExhausted, caller flow-controls.
TEST(AdmissionTest, PendingCapReturnsResourceExhausted) {
  ExecutorOptions executor_options;
  executor_options.num_threads = 1;
  Executor executor(executor_options);
  AdmissionOptions options;
  options.max_pending = 4;
  AdmissionController admission(&executor, options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool worker_busy = false;
  ASSERT_TRUE(executor
                  .Submit([&](const Executor::TaskContext&) {
                    std::unique_lock<std::mutex> lock(mu);
                    worker_busy = true;
                    cv.notify_all();
                    cv.wait(lock, [&] { return release; });
                  })
                  .ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return worker_busy; });
  }

  std::atomic<int> done{0};
  auto task = [&](const Executor::TaskContext&) { ++done; };
  const uint64_t id = admission.BeginBatch(Lane::kBulk);
  // Window (2) drains into the executor; 4 more fill max_pending.
  int accepted = 0;
  Status status = Status::OK();
  while (status.ok()) {
    status = admission.Submit(id, task, 0);
    if (status.ok()) ++accepted;
  }
  EXPECT_EQ(status.code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(admission.pending(), options.max_pending);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  while (done.load() < accepted) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  admission.EndBatch(id);
  executor.Shutdown(true);
  EXPECT_EQ(done.load(), accepted);
}

}  // namespace
}  // namespace xcluster
