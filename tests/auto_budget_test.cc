#include "build/auto_budget.h"

#include <gtest/gtest.h>

#include "data/imdb.h"
#include "estimate/estimator.h"
#include "synopsis/reference.h"
#include "workload/metrics.h"

namespace xcluster {
namespace {

class AutoBudgetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ImdbOptions options;
    options.scale = 0.08;
    dataset_ = GenerateImdb(options);
    ReferenceOptions ref_options;
    ref_options.value_paths = dataset_.value_paths;
    reference_ = BuildReferenceSynopsis(dataset_.doc, ref_options);
  }

  AutoBudgetOptions DefaultOptions(size_t total) {
    AutoBudgetOptions options;
    options.total_budget = total;
    options.sample_workload.num_queries = 80;
    options.sample_workload.seed = 99;
    return options;
  }

  GeneratedDataset dataset_;
  GraphSynopsis reference_;
};

TEST_F(AutoBudgetTest, MeetsTotalBudget) {
  AutoBudgetResult result =
      AutoBudgetBuild(dataset_.doc, reference_, DefaultOptions(24 * 1024));
  EXPECT_EQ(result.structural_budget + result.value_budget, 24u * 1024u);
  EXPECT_LE(result.synopsis.StructuralBytes(), result.structural_budget);
  EXPECT_LE(result.synopsis.ValueBytes(), result.value_budget);
}

TEST_F(AutoBudgetTest, ProbesCoarseAndRefinePoints) {
  AutoBudgetOptions options = DefaultOptions(24 * 1024);
  options.coarse_points = 4;
  options.refine_points = 2;
  AutoBudgetResult result =
      AutoBudgetBuild(dataset_.doc, reference_, options);
  EXPECT_EQ(result.probes, 6u);
}

TEST_F(AutoBudgetTest, ChoosesCompetitiveSplit) {
  // The automatically chosen split should not be worse on a held-out
  // workload than the worst of a set of fixed splits.
  AutoBudgetResult result =
      AutoBudgetBuild(dataset_.doc, reference_, DefaultOptions(24 * 1024));

  WorkloadOptions held_out;
  held_out.num_queries = 120;
  held_out.seed = 12345;
  Workload workload = GenerateWorkload(dataset_.doc, reference_, held_out);

  auto error_of = [&](const GraphSynopsis& synopsis) {
    XClusterEstimator estimator(synopsis);
    std::vector<double> estimates;
    for (const WorkloadQuery& q : workload.queries) {
      estimates.push_back(estimator.Estimate(q.query));
    }
    return EvaluateErrors(workload, estimates).overall.avg_rel_error;
  };

  double auto_error = error_of(result.synopsis);
  double worst_fixed = 0.0;
  for (double fraction : {0.05, 0.5, 0.8}) {
    BuildOptions fixed;
    fixed.structural_budget =
        static_cast<size_t>(fraction * 24.0 * 1024.0);
    fixed.value_budget = 24 * 1024 - fixed.structural_budget;
    GraphSynopsis synopsis = XClusterBuild(reference_, fixed, nullptr);
    worst_fixed = std::max(worst_fixed, error_of(synopsis));
  }
  EXPECT_LE(auto_error, worst_fixed + 0.02);
}

TEST_F(AutoBudgetTest, DeterministicGivenSeeds) {
  AutoBudgetResult a =
      AutoBudgetBuild(dataset_.doc, reference_, DefaultOptions(20 * 1024));
  AutoBudgetResult b =
      AutoBudgetBuild(dataset_.doc, reference_, DefaultOptions(20 * 1024));
  EXPECT_EQ(a.structural_budget, b.structural_budget);
  EXPECT_EQ(a.sample_error, b.sample_error);
}

TEST_F(AutoBudgetTest, SampleErrorReported) {
  AutoBudgetResult result =
      AutoBudgetBuild(dataset_.doc, reference_, DefaultOptions(24 * 1024));
  EXPECT_GE(result.sample_error, 0.0);
  EXPECT_LT(result.sample_error, 1.0);
}

}  // namespace
}  // namespace xcluster
