// Tests for the vectorized batch estimation engine: lane grouping
// (BatchPlan) and the structure-of-arrays DP (BatchEstimator), plus the
// service-level EstimateBatch vectorized path. The load-bearing property
// throughout is *bit identity*: every lane-evaluated estimate must EXPECT_EQ
// the double the scalar FlatEstimator produces for the same query — across
// shuffled batches, duplicate queries, parse errors interleaved, and any
// worker count.
#include "estimate/batch_estimator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/xcluster.h"
#include "estimate/compiled_twig.h"
#include "estimate/flat_estimator.h"
#include "estimate/flat_synopsis.h"
#include "estimate/reach_cache.h"
#include "query/parser.h"
#include "service/service.h"
#include "synopsis/graph.h"

namespace xcluster {
namespace {

TwigQuery MustParse(std::string_view input) {
  Result<TwigQuery> result = ParseTwig(input);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Fig. 7-style synopsis (numeric summary on C, fanout, two branches).
GraphSynopsis MakeFig7() {
  GraphSynopsis synopsis;
  SynNodeId r = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("A", ValueType::kNone, 10.0);
  SynNodeId b = synopsis.AddNode("B", ValueType::kNone, 100.0);
  SynNodeId c = synopsis.AddNode("C", ValueType::kNumeric, 500.0);
  SynNodeId d = synopsis.AddNode("D", ValueType::kNone, 50.0);
  SynNodeId e = synopsis.AddNode("E", ValueType::kNone, 100.0);
  synopsis.AddEdge(r, a, 10.0);
  synopsis.AddEdge(a, b, 10.0);
  synopsis.AddEdge(b, c, 5.0);
  synopsis.AddEdge(a, d, 5.0);
  synopsis.AddEdge(d, e, 2.0);
  std::vector<int64_t> values;
  for (int64_t v = 0; v < 10; ++v) values.push_back(v);
  synopsis.node(c).vsumm = ValueSummary::FromNumeric(std::move(values), 16);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  return synopsis;
}

/// Cyclic synopsis (XMark parlist shape): descendant reach runs the
/// bounded-hop DP, which is what the batch tier shares.
GraphSynopsis MakeCyclic() {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId parlist = synopsis.AddNode("parlist", ValueType::kNone, 20.0);
  SynNodeId text = synopsis.AddNode("text", ValueType::kNone, 40.0);
  synopsis.AddEdge(root, parlist, 10.0);
  synopsis.AddEdge(parlist, parlist, 0.5);
  synopsis.AddEdge(parlist, text, 1.0);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  return synopsis;
}

// ---------------------------------------------------------------------------
// Lane grouping (BatchPlan)
// ---------------------------------------------------------------------------

TEST(BatchPlanTest, SameSkeletonDifferentPredicatesShareAGroup) {
  GraphSynopsis synopsis = MakeFig7();
  FlatSynopsis flat(synopsis);
  // Identical structure, different range predicates: one group, two lanes.
  const CompiledTwig p1 =
      CompiledTwig::Compile(MustParse("/A/B/C[range(0,4)]"), flat);
  const CompiledTwig p2 =
      CompiledTwig::Compile(MustParse("/A/B/C[range(2,7)]"), flat);
  // Different structure: its own group.
  const CompiledTwig p3 = CompiledTwig::Compile(MustParse("//A//E"), flat);

  EXPECT_EQ(p1.group_key(), p2.group_key());
  EXPECT_TRUE(p1.SameStructure(p2));
  EXPECT_NE(p1.group_key(), p3.group_key());
  EXPECT_FALSE(p1.SameStructure(p3));

  BatchPlan plan = BatchPlan::Build({&p1, &p2, &p3});
  ASSERT_EQ(plan.num_groups(), 2u);
  EXPECT_EQ(plan.num_lanes(), 3u);
  EXPECT_EQ(plan.groups()[0].num_lanes(), 2u);
  EXPECT_EQ(plan.groups()[1].num_lanes(), 1u);
  EXPECT_EQ(plan.groups()[0].lane_slots[0], std::vector<uint32_t>{0});
  EXPECT_EQ(plan.groups()[0].lane_slots[1], std::vector<uint32_t>{1});
  EXPECT_EQ(plan.groups()[1].lane_slots[0], std::vector<uint32_t>{2});
}

TEST(BatchPlanTest, GroupKeysStableAcrossRecompiles) {
  // The same query compiled twice (as on a plan-cache hit or across
  // batches within a generation) must land in the same group.
  GraphSynopsis synopsis = MakeFig7();
  FlatSynopsis flat(synopsis);
  for (const char* query :
       {"/A/B/C[range(0,4)]", "//A//E", "/A/*", "//*", "/Z"}) {
    const CompiledTwig first = CompiledTwig::Compile(MustParse(query), flat);
    const CompiledTwig second = CompiledTwig::Compile(MustParse(query), flat);
    EXPECT_EQ(first.group_key(), second.group_key()) << query;
    EXPECT_TRUE(first.SameStructure(second)) << query;
  }
}

TEST(BatchPlanTest, DuplicatePlansCollapseOntoOneLaneAndNullsAreSkipped) {
  GraphSynopsis synopsis = MakeFig7();
  FlatSynopsis flat(synopsis);
  const CompiledTwig p1 = CompiledTwig::Compile(MustParse("/A/B"), flat);
  const CompiledTwig p2 = CompiledTwig::Compile(MustParse("//E"), flat);
  // Slots 0, 2, 4 repeat the same plan object (plan-cache hit semantics);
  // slot 3 has no plan (a parse failure).
  BatchPlan plan = BatchPlan::Build({&p1, &p2, &p1, nullptr, &p1});
  ASSERT_EQ(plan.num_groups(), 2u);
  EXPECT_EQ(plan.num_lanes(), 2u);
  const BatchPlan::Group& dup = plan.groups()[0];
  ASSERT_EQ(dup.num_lanes(), 1u);
  EXPECT_EQ(dup.lane_slots[0], (std::vector<uint32_t>{0, 2, 4}));
  EXPECT_EQ(dup.num_slots(), 3u);
  EXPECT_EQ(plan.groups()[1].num_slots(), 1u);
}

// ---------------------------------------------------------------------------
// Lane DP bit identity (direct BatchEstimator)
// ---------------------------------------------------------------------------

/// Runs `queries` as one BatchPlan and asserts each lane's estimate is
/// bit-identical to the scalar FlatEstimator result.
void ExpectLanesMatchScalar(const GraphSynopsis& synopsis,
                            const std::vector<std::string>& queries) {
  FlatSynopsis flat(synopsis);
  FlatEstimator estimator(flat);
  std::vector<CompiledTwig> storage;
  storage.reserve(queries.size());
  std::vector<const CompiledTwig*> plans;
  for (const std::string& query : queries) {
    storage.push_back(CompiledTwig::Compile(MustParse(query), flat));
  }
  for (const CompiledTwig& plan : storage) plans.push_back(&plan);

  BatchPlan partition = BatchPlan::Build(plans);
  BatchReachTier tier(&estimator.reach_cache());
  std::vector<double> scalar(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    scalar[i] = estimator.Estimate(*plans[i]);
  }
  std::vector<double> lanes;
  for (const BatchPlan::Group& group : partition.groups()) {
    BatchEstimator::EstimateGroup(estimator, group, &tier, &lanes);
    ASSERT_EQ(lanes.size(), group.num_lanes());
    for (size_t lane = 0; lane < group.num_lanes(); ++lane) {
      for (const uint32_t slot : group.lane_slots[lane]) {
        EXPECT_EQ(lanes[lane], scalar[slot]) << queries[slot];
      }
    }
  }
}

TEST(BatchEstimatorTest, Fig7LanesBitIdenticalToScalar) {
  ExpectLanesMatchScalar(
      MakeFig7(),
      {"//A[/B/C[range(0,0)]]//E", "/A", "/A/B", "/A/B/C", "//C", "//E",
       "/A/*", "//*", "/A/B/C[range(0,4)]", "/A/B/C[range(2,7)]", "/A[/B]/D",
       "/Z", "//A/Q", "/A/B[range(0,100)]", "/A/B/C[contains(x)]"});
}

TEST(BatchEstimatorTest, CyclicLanesBitIdenticalToScalar) {
  ExpectLanesMatchScalar(MakeCyclic(),
                         {"//text", "//parlist", "//parlist//text",
                          "/parlist/parlist", "//*", "//R//text"});
}

TEST(BatchEstimatorTest, UnknownTermLanesEstimateExactlyZero) {
  // contains() with a term absent from the dictionary short-circuits to
  // 0.0 in the scalar path; lanes must reproduce that exactly even when
  // grouped with lanes that estimate nonzero.
  ExpectLanesMatchScalar(MakeFig7(),
                         {"/A/B/C[contains(nosuchterm)]", "/A/B/C[range(0,4)]",
                          "/A/B/C[contains(alsomissing)]"});
}

TEST(BatchEstimatorTest, EmptySynopsisLanesAreZero) {
  GraphSynopsis empty;
  FlatSynopsis flat(empty);
  FlatEstimator estimator(flat);
  const CompiledTwig plan = CompiledTwig::Compile(MustParse("/A"), flat);
  BatchPlan partition = BatchPlan::Build({&plan});
  BatchReachTier tier(&estimator.reach_cache());
  std::vector<double> lanes;
  ASSERT_EQ(partition.num_groups(), 1u);
  BatchEstimator::EstimateGroup(estimator, partition.groups()[0], &tier,
                                &lanes);
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0], 0.0);
  EXPECT_EQ(lanes[0], estimator.Estimate(plan));
}

TEST(BatchEstimatorTest, DescendantReachSharedWithinBatch) {
  // Two descendant queries with the same skeleton form one group; the
  // structure pass computes each (source, label) reach once and the lane
  // pass re-reads it from the batch tier — observable as shared hits.
  GraphSynopsis synopsis = MakeCyclic();
  FlatSynopsis flat(synopsis);
  FlatEstimator estimator(flat);
  const CompiledTwig p1 = CompiledTwig::Compile(MustParse("//text"), flat);
  const CompiledTwig p2 = CompiledTwig::Compile(MustParse("//parlist"), flat);
  BatchPlan partition = BatchPlan::Build({&p1, &p2});
  ASSERT_EQ(partition.num_groups(), 2u);  // different labels → different keys
  BatchReachTier tier(&estimator.reach_cache());
  std::vector<double> lanes;
  for (const BatchPlan::Group& group : partition.groups()) {
    BatchEstimator::EstimateGroup(estimator, group, &tier, &lanes);
  }
  // Each group's lane pass re-reads the reach its structure pass published.
  EXPECT_GE(estimator.reach_cache().batch_shared_hits(), 2u);
  EXPECT_GE(tier.size(), 2u);
}

// ---------------------------------------------------------------------------
// Service-level randomized property test
// ---------------------------------------------------------------------------

XCluster MakeFixtureCluster(GraphSynopsis synopsis) {
  return XCluster(std::move(synopsis));
}

/// Query pool mixing skeleton repeats, distinct predicates, wildcards,
/// descendant axes, misses, unknown terms, and malformed inputs.
const std::vector<std::string> kFig7Pool = {
    "//A[/B/C[range(0,0)]]//E",
    "/A",
    "/A/B",
    "/A/B/C",
    "//C",
    "//E",
    "/A/*",
    "//*",
    "/A/B/C[range(0,4)]",
    "/A/B/C[range(2,7)]",
    "/A/B/C[range(1,3)]",
    "/A[/B]/D",
    "/Z",
    "//A/Q",
    "/A/B[range(0,100)]",
    "/A/B/C[contains(x)]",
    "][broken",
    "not a query",
};

const std::vector<std::string> kCyclicPool = {
    "//text",          "//parlist", "//parlist//text", "/parlist/parlist",
    "//*",             "//R//text", "](malformed",
};

void RunShuffledBatchSuite(size_t workers) {
  ServiceOptions options;
  options.executor.num_threads = workers;
  auto service = std::make_unique<EstimationService>(options);
  service->store().Install("fig7", MakeFixtureCluster(MakeFig7()));
  service->store().Install("cyclic", MakeFixtureCluster(MakeCyclic()));

  Rng rng(20260809 + workers);
  const struct {
    const char* collection;
    const std::vector<std::string>* pool;
  } collections[] = {{"fig7", &kFig7Pool}, {"cyclic", &kCyclicPool}};

  for (int round = 0; round < 6; ++round) {
    for (const auto& target : collections) {
      // Shuffled batch with duplicates: sample with replacement, then
      // append a guaranteed repeat of slot 0 so dedup always triggers.
      const size_t n = 16 + rng.Uniform(48);
      std::vector<std::string> queries;
      queries.reserve(n + 1);
      for (size_t i = 0; i < n; ++i) {
        queries.push_back((*target.pool)[rng.Uniform(target.pool->size())]);
      }
      queries.push_back(queries[0]);

      BatchOptions vectorized;  // default: vectorize = true
      BatchResult batch =
          service->EstimateBatch(target.collection, queries, vectorized);
      ASSERT_TRUE(batch.admission.ok());
      ASSERT_EQ(batch.results.size(), queries.size());

      BatchOptions scalar_mode;
      scalar_mode.vectorize = false;
      BatchResult scalar =
          service->EstimateBatch(target.collection, queries, scalar_mode);
      ASSERT_TRUE(scalar.admission.ok());
      EXPECT_EQ(scalar.stats.batch_groups, 0u);
      EXPECT_EQ(scalar.stats.vector_lanes, 0u);
      EXPECT_GT(batch.stats.batch_groups, 0u);
      EXPECT_GE(batch.stats.vector_lanes, batch.stats.batch_groups);

      for (size_t i = 0; i < queries.size(); ++i) {
        // Slot-for-slot: same status code, bit-identical estimate, and
        // both must equal the inline scalar EstimateOne result.
        const QueryResult& v = batch.results[i];
        const QueryResult& s = scalar.results[i];
        EXPECT_EQ(v.status.code(), s.status.code())
            << target.collection << " '" << queries[i] << "'";
        EXPECT_EQ(v.estimate, s.estimate)
            << target.collection << " '" << queries[i] << "'";
        QueryResult one = service->EstimateOne(target.collection, queries[i]);
        EXPECT_EQ(v.status.code(), one.status.code());
        EXPECT_EQ(v.estimate, one.estimate)
            << target.collection << " '" << queries[i] << "'";
      }
    }
  }
}

TEST(BatchEstimatorServiceTest, ShuffledBatchesBitIdenticalWorkers1) {
  RunShuffledBatchSuite(1);
}

TEST(BatchEstimatorServiceTest, ShuffledBatchesBitIdenticalWorkers8) {
  RunShuffledBatchSuite(8);
}

TEST(BatchEstimatorServiceTest, ExplainBatchesFallBackToScalarPath) {
  ServiceOptions options;
  options.executor.num_threads = 2;
  auto service = std::make_unique<EstimationService>(options);
  service->store().Install("fig7", MakeFixtureCluster(MakeFig7()));
  BatchOptions explain;
  explain.explain = true;  // vectorize stays true but explain wins
  BatchResult batch =
      service->EstimateBatch("fig7", {"/A/B/C[range(0,4)]", "//E"}, explain);
  ASSERT_TRUE(batch.admission.ok());
  EXPECT_EQ(batch.stats.batch_groups, 0u);  // scalar path ran
  ASSERT_TRUE(batch.results[0].status.ok());
  EXPECT_FALSE(batch.results[0].explanation.empty());
}

}  // namespace
}  // namespace xcluster
