#include "build/builder.h"

#include <gtest/gtest.h>

#include <set>

#include "data/imdb.h"
#include "synopsis/reference.h"

namespace xcluster {
namespace {

class BuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ImdbOptions options;
    options.scale = 0.05;
    dataset_ = GenerateImdb(options);
    ReferenceOptions ref_options;
    ref_options.value_paths = dataset_.value_paths;
    reference_ = BuildReferenceSynopsis(dataset_.doc, ref_options);
  }

  GeneratedDataset dataset_;
  GraphSynopsis reference_;
};

TEST_F(BuilderTest, MeetsStructuralBudget) {
  BuildOptions options;
  options.structural_budget = 2048;
  options.value_budget = 1 << 30;  // effectively unbounded
  BuildStats stats;
  GraphSynopsis synopsis = XClusterBuild(reference_, options, &stats);
  EXPECT_LE(synopsis.StructuralBytes(), 2048u);
  EXPECT_EQ(stats.final_structural_bytes, synopsis.StructuralBytes());
  EXPECT_GT(stats.merges_applied, 0u);
}

TEST_F(BuilderTest, MeetsValueBudget) {
  BuildOptions options;
  options.structural_budget = 1 << 30;
  options.value_budget = reference_.ValueBytes() / 2;
  BuildStats stats;
  GraphSynopsis synopsis = XClusterBuild(reference_, options, &stats);
  EXPECT_LE(synopsis.ValueBytes(), options.value_budget);
  EXPECT_GT(stats.value_bytes_compressed, 0u);
}

TEST_F(BuilderTest, LargeBudgetKeepsReference) {
  BuildOptions options;
  options.structural_budget = 1 << 30;
  options.value_budget = 1 << 30;
  BuildStats stats;
  GraphSynopsis synopsis = XClusterBuild(reference_, options, &stats);
  EXPECT_EQ(stats.merges_applied, 0u);
  EXPECT_EQ(synopsis.NodeCount(), reference_.NodeCount());
}

TEST_F(BuilderTest, ZeroBudgetReachesTagPartition) {
  BuildOptions options;
  options.structural_budget = 0;
  options.value_budget = 1 << 30;
  GraphSynopsis synopsis = XClusterBuild(reference_, options, nullptr);
  GraphSynopsis tag = BuildTagSynopsis(dataset_.doc, ReferenceOptions());
  // The merge floor is one cluster per (label, type).
  EXPECT_EQ(synopsis.NodeCount(), tag.NodeCount());
}

TEST_F(BuilderTest, ResultIsCompacted) {
  BuildOptions options;
  options.structural_budget = 2048;
  GraphSynopsis synopsis = XClusterBuild(reference_, options, nullptr);
  EXPECT_EQ(synopsis.arena_size(), synopsis.NodeCount());
  for (SynNodeId id = 0; id < synopsis.arena_size(); ++id) {
    EXPECT_TRUE(synopsis.node(id).alive);
  }
}

TEST_F(BuilderTest, ExtentMassConserved) {
  BuildOptions options;
  options.structural_budget = 1024;
  GraphSynopsis synopsis = XClusterBuild(reference_, options, nullptr);
  double total = 0.0;
  for (SynNodeId id : synopsis.AliveNodes()) {
    total += synopsis.node(id).count;
  }
  EXPECT_NEAR(total, static_cast<double>(dataset_.doc.size()), 1e-6);
}

TEST_F(BuilderTest, MergesRespectLabelsAndTypes) {
  BuildOptions options;
  options.structural_budget = 0;
  GraphSynopsis synopsis = XClusterBuild(reference_, options, nullptr);
  // Every (label, type) pair appears at most once at the merge floor.
  std::set<std::pair<SymbolId, ValueType>> seen;
  for (SynNodeId id : synopsis.AliveNodes()) {
    auto key = std::make_pair(synopsis.node(id).label, synopsis.node(id).type);
    EXPECT_TRUE(seen.insert(key).second);
  }
}

TEST_F(BuilderTest, StatsReflectReference) {
  BuildOptions options;
  options.structural_budget = 4096;
  BuildStats stats;
  XClusterBuild(reference_, options, &stats);
  EXPECT_EQ(stats.reference_nodes, reference_.NodeCount());
  EXPECT_EQ(stats.reference_bytes,
            reference_.StructuralBytes() + reference_.ValueBytes());
}

TEST_F(BuilderTest, RandomPolicyAlsoMeetsBudget) {
  BuildOptions options;
  options.structural_budget = 2048;
  options.policy = MergePolicy::kRandom;
  options.seed = 5;
  GraphSynopsis synopsis = XClusterBuild(reference_, options, nullptr);
  EXPECT_LE(synopsis.StructuralBytes(), 2048u);
}

TEST_F(BuilderTest, CountOnlyPolicyMeetsBudget) {
  BuildOptions options;
  options.structural_budget = 2048;
  options.policy = MergePolicy::kCountOnly;
  GraphSynopsis synopsis = XClusterBuild(reference_, options, nullptr);
  EXPECT_LE(synopsis.StructuralBytes(), 2048u);
}

TEST_F(BuilderTest, DeterministicGivenSameInputs) {
  BuildOptions options;
  options.structural_budget = 2048;
  options.value_budget = 8192;
  GraphSynopsis a = XClusterBuild(reference_, options, nullptr);
  GraphSynopsis b = XClusterBuild(reference_, options, nullptr);
  ASSERT_EQ(a.NodeCount(), b.NodeCount());
  EXPECT_EQ(a.StructuralBytes(), b.StructuralBytes());
  EXPECT_EQ(a.ValueBytes(), b.ValueBytes());
}

TEST_F(BuilderTest, BuildXClusterConvenienceWrapper) {
  ReferenceOptions ref_options;
  ref_options.value_paths = dataset_.value_paths;
  BuildOptions options;
  options.structural_budget = 2048;
  options.value_budget = 16384;
  BuildStats stats;
  GraphSynopsis synopsis =
      BuildXCluster(dataset_.doc, ref_options, options, &stats);
  EXPECT_LE(synopsis.StructuralBytes(), 2048u);
  EXPECT_LE(synopsis.ValueBytes(), 16384u);
  EXPECT_NE(synopsis.term_dictionary(), nullptr);
}

TEST_F(BuilderTest, PreservesTermDictionary) {
  BuildOptions options;
  options.structural_budget = 1024;
  GraphSynopsis synopsis = XClusterBuild(reference_, options, nullptr);
  EXPECT_EQ(synopsis.term_dictionary().get(),
            reference_.term_dictionary().get());
}

}  // namespace
}  // namespace xcluster
