#include "cluster/router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/merge.h"
#include "cluster/replica_set.h"
#include "core/serialize.h"
#include "core/xcluster.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "service/service.h"

namespace xcluster {
namespace cluster {
namespace {

XCluster MakeFixture() {
  GraphSynopsis synopsis;
  SynNodeId r = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("A", ValueType::kNone, 10.0);
  SynNodeId b = synopsis.AddNode("B", ValueType::kNone, 100.0);
  synopsis.AddEdge(r, a, 10.0);
  synopsis.AddEdge(a, b, 10.0);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  return XCluster(std::move(synopsis));
}

bool WaitFor(const std::function<bool()>& done) {
  for (int i = 0; i < 5000; ++i) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

// ---------------------------------------------------------------------------
// hash_ring

TEST(HashRing, CollectionHashIsStableAndSpreads) {
  // The routing hash must be process-invariant: a literal expectation would
  // overfit, but determinism and dispersion are the contract.
  EXPECT_EQ(CollectionHash("books"), CollectionHash("books"));
  EXPECT_NE(CollectionHash("books"), CollectionHash("book"));
  EXPECT_NE(CollectionHash("books"), CollectionHash("books@0"));
  EXPECT_NE(CollectionHash(""), CollectionHash("a"));
}

TEST(HashRing, RankReplicasIsATotalOrderAndMinimallyDisruptive) {
  std::vector<uint64_t> seeds;
  for (int i = 0; i < 5; ++i) {
    seeds.push_back(ReplicaSeed("10.0.0." + std::to_string(i) + ":9000"));
  }
  const uint64_t hash = CollectionHash("books");
  std::vector<size_t> order = RankReplicas(hash, seeds);
  ASSERT_EQ(order.size(), seeds.size());
  // A permutation of all indices.
  std::vector<size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  // Deterministic.
  EXPECT_EQ(order, RankReplicas(hash, seeds));

  // HRW's minimal-disruption property: dropping one replica preserves the
  // relative order of the survivors.
  const size_t removed = order[0];
  std::vector<uint64_t> remaining_seeds;
  std::vector<size_t> index_map;  // position in `seeds` for each survivor
  for (size_t i = 0; i < seeds.size(); ++i) {
    if (i == removed) continue;
    index_map.push_back(i);
    remaining_seeds.push_back(seeds[i]);
  }
  std::vector<size_t> reranked = RankReplicas(hash, remaining_seeds);
  std::vector<size_t> survivors;
  for (size_t index : order) {
    if (index != removed) survivors.push_back(index);
  }
  ASSERT_EQ(reranked.size(), survivors.size());
  for (size_t i = 0; i < reranked.size(); ++i) {
    EXPECT_EQ(index_map[reranked[i]], survivors[i]) << i;
  }
}

TEST(HashRing, DifferentCollectionsSpreadAcrossReplicas) {
  std::vector<uint64_t> seeds;
  for (int i = 0; i < 4; ++i) {
    seeds.push_back(ReplicaSeed("host" + std::to_string(i) + ":1"));
  }
  std::vector<size_t> owner_counts(seeds.size(), 0);
  for (int i = 0; i < 200; ++i) {
    const uint64_t hash = CollectionHash("col" + std::to_string(i));
    ++owner_counts[RankReplicas(hash, seeds)[0]];
  }
  // Every replica owns something — the hash isn't collapsing.
  for (size_t count : owner_counts) EXPECT_GT(count, 0u);
}

TEST(HashRing, ParseShardSpecGrammar) {
  EXPECT_FALSE(ParseShardSpec("books").sharded());
  EXPECT_FALSE(ParseShardSpec("books@0").sharded());
  EXPECT_FALSE(ParseShardSpec("books@1").sharded());
  EXPECT_FALSE(ParseShardSpec("books@007").sharded());  // leading zeros
  EXPECT_FALSE(ParseShardSpec("books@").sharded());     // trailing @
  EXPECT_FALSE(ParseShardSpec("@4").sharded());         // empty base
  EXPECT_FALSE(ParseShardSpec("a@b@4").sharded());      // base contains @
  EXPECT_FALSE(ParseShardSpec("books@4x").sharded());   // non-digit
  EXPECT_FALSE(ParseShardSpec("books@9", 8).sharded()); // above max_shards

  ShardSpec spec = ParseShardSpec("books@4");
  EXPECT_TRUE(spec.sharded());
  EXPECT_EQ(spec.base, "books");
  EXPECT_EQ(spec.shard_count, 4u);

  std::vector<std::string> names = ShardNames(spec);
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "books@0");
  EXPECT_EQ(names[3], "books@3");

  names = ShardNames(ParseShardSpec("books"));
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "books");
}

// ---------------------------------------------------------------------------
// merge

net::BatchReplyFrame MakeReply(std::vector<net::BatchReplyItem> items) {
  net::BatchReplyFrame reply;
  reply.items = std::move(items);
  reply.stats.ok = 0;
  for (const net::BatchReplyItem& item : reply.items) {
    if (item.ok) {
      ++reply.stats.ok;
    } else {
      ++reply.stats.failed;
    }
  }
  return reply;
}

net::BatchReplyItem OkItem(double estimate, uint64_t latency_ns = 1000) {
  net::BatchReplyItem item;
  item.ok = true;
  item.estimate = estimate;
  item.latency_ns = latency_ns;
  return item;
}

net::BatchReplyItem ErrItem(const std::string& error) {
  net::BatchReplyItem item;
  item.ok = false;
  item.error = error;
  return item;
}

TEST(Merge, SumsEstimatesInShardOrderAndMaxesLatency) {
  std::vector<ShardReply> shards(2);
  shards[0].shard = "books@0";
  shards[0].reply = MakeReply({OkItem(1.5, 2000), OkItem(10.0, 500)});
  shards[0].reply.stats.wall_ns = 9000;
  shards[1].shard = "books@1";
  shards[1].reply = MakeReply({OkItem(2.25, 1000), OkItem(30.0, 800)});
  shards[1].reply.stats.wall_ns = 4000;

  Result<net::BatchReplyFrame> merged = MergeShardReplies(shards);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged.value().items.size(), 2u);
  EXPECT_EQ(merged.value().items[0].estimate, 3.75);  // exact in binary
  EXPECT_EQ(merged.value().items[1].estimate, 40.0);
  EXPECT_EQ(merged.value().items[0].latency_ns, 2000u);
  EXPECT_EQ(merged.value().items[1].latency_ns, 800u);
  EXPECT_EQ(merged.value().stats.ok, 2u);
  EXPECT_EQ(merged.value().stats.failed, 0u);
  EXPECT_EQ(merged.value().stats.wall_ns, 9000u);
  EXPECT_EQ(merged.value().trace_id, 0u);
}

TEST(Merge, SlotFailsWhenAnyShardFailsWithAttributedError) {
  std::vector<ShardReply> shards(2);
  shards[0].shard = "books@0";
  shards[0].reply = MakeReply({OkItem(1.0), ErrItem("Parse: broken")});
  shards[1].shard = "books@1";
  shards[1].reply = MakeReply({OkItem(2.0), OkItem(5.0)});

  Result<net::BatchReplyFrame> merged = MergeShardReplies(shards);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged.value().items.size(), 2u);
  EXPECT_TRUE(merged.value().items[0].ok);
  EXPECT_FALSE(merged.value().items[1].ok);
  EXPECT_EQ(merged.value().items[1].error, "shard books@0: Parse: broken");
  EXPECT_EQ(merged.value().stats.ok, 1u);
  EXPECT_EQ(merged.value().stats.failed, 1u);
}

TEST(Merge, SlotCountMismatchIsARoutingBugNotAPartialMerge) {
  std::vector<ShardReply> shards(2);
  shards[0].shard = "books@0";
  shards[0].reply = MakeReply({OkItem(1.0)});
  shards[1].shard = "books@1";
  shards[1].reply = MakeReply({OkItem(1.0), OkItem(2.0)});
  EXPECT_FALSE(MergeShardReplies(shards).ok());
  EXPECT_FALSE(MergeShardReplies({}).ok());
}

// ---------------------------------------------------------------------------
// replica_set parsing

TEST(ReplicaSetParsing, ParsesHarnessListOutput) {
  const std::string response =
      "ok list 3\n"
      "synopsis alpha gen=4 clusters=3 bytes=512\n"
      "synopsis beta gen=7 clusters=3 bytes=512 source=wire:1.2.3.4\n"
      "garbage line\n"
      "synopsis gamma notgen=9\n";
  std::vector<std::pair<std::string, uint64_t>> generations =
      ParseListGenerations(response);
  ASSERT_EQ(generations.size(), 2u);
  EXPECT_EQ(generations[0].first, "alpha");
  EXPECT_EQ(generations[0].second, 4u);
  EXPECT_EQ(generations[1].first, "beta");
  EXPECT_EQ(generations[1].second, 7u);
}

// ---------------------------------------------------------------------------
// end-to-end: router + replicas on loopback

/// One in-process replica daemon: an EstimationService with the fixture
/// installed under "books", served on an ephemeral loopback port.
struct Replica {
  std::unique_ptr<EstimationService> service;
  std::unique_ptr<net::NetServer> server;

  std::string address() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }
};

Replica StartReplica(size_t workers = 2, size_t max_install_bytes = 0) {
  Replica replica;
  ServiceOptions options;
  options.executor.num_threads = workers;
  replica.service = std::make_unique<EstimationService>(options);
  replica.service->store().Install("books", MakeFixture());
  net::NetServerOptions net_options;
  net_options.host = "127.0.0.1";
  net_options.port = 0;
  if (max_install_bytes != 0) {
    net_options.max_install_bytes = max_install_bytes;
  }
  replica.server =
      std::make_unique<net::NetServer>(replica.service.get(), net_options);
  Status started = replica.server->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  return replica;
}

/// An address that is guaranteed closed: bind an ephemeral listener, note
/// the port, shut it down.
std::string DeadAddress() {
  Replica ghost = StartReplica(1);
  const std::string address = ghost.address();
  ghost.server->Stop();
  return address;
}

std::unique_ptr<Router> StartRouter(const std::vector<std::string>& peers,
                                    uint64_t probe_ms = 100) {
  RouterOptions options;
  options.server.host = "127.0.0.1";
  options.server.port = 0;
  options.peers = peers;
  options.replicas.probe_interval_ms = probe_ms;
  options.replicas.client.recv_timeout_ms = 5000;
  options.replicas.client.connect_timeout_ms = 2000;
  options.workers = 2;
  auto router = std::make_unique<Router>(std::move(options));
  Status started = router->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  return router;
}

net::NetClient ConnectOrDie(uint16_t port, net::NetClientOptions options = {}) {
  Result<net::NetClient> client =
      net::NetClient::Connect("127.0.0.1", port, options);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

TEST(ClusterE2E, RoutedBatchIsBitIdenticalToDirectAcrossWorkerCounts) {
  // One narrow and one wide replica: the determinism gate must hold both
  // through the router and regardless of replica parallelism.
  Replica narrow = StartReplica(1);
  Replica wide = StartReplica(8);
  std::unique_ptr<Router> router =
      StartRouter({narrow.address(), wide.address()});

  std::vector<std::string> queries;
  for (int i = 0; i < 100; ++i) {
    queries.push_back(i % 3 == 2 ? "][broken" : (i % 2 == 0 ? "/A" : "/A/B"));
  }

  net::NetClient routed = ConnectOrDie(router->port());
  EXPECT_EQ(routed.server_role(), "router");
  Result<net::BatchReplyFrame> via_router = routed.Batch("books", queries, {});
  ASSERT_TRUE(via_router.ok()) << via_router.status().ToString();

  for (Replica* replica : {&narrow, &wide}) {
    net::NetClient direct = ConnectOrDie(replica->server->port());
    EXPECT_EQ(direct.server_role(), "replica");
    Result<net::BatchReplyFrame> expected = direct.Batch("books", queries, {});
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_EQ(via_router.value().items.size(), expected.value().items.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      const net::BatchReplyItem& routed_item = via_router.value().items[i];
      const net::BatchReplyItem& direct_item = expected.value().items[i];
      EXPECT_EQ(routed_item.ok, direct_item.ok) << queries[i];
      // Exact IEEE-754 bit equality, not approximate: the router forwards
      // the replica's encoded estimate without a text round-trip.
      EXPECT_EQ(routed_item.estimate, direct_item.estimate) << queries[i];
      if (!routed_item.ok) {
        EXPECT_EQ(routed_item.error, direct_item.error) << queries[i];
      }
    }
    EXPECT_EQ(via_router.value().stats.ok, expected.value().stats.ok);
    EXPECT_EQ(via_router.value().stats.failed, expected.value().stats.failed);
  }
}

TEST(ClusterE2E, RouterStatsAndAggregatedListSeeTheFleet) {
  Replica first = StartReplica();
  Replica second = StartReplica();
  std::unique_ptr<Router> router =
      StartRouter({first.address(), second.address()});

  net::NetClient client = ConnectOrDie(router->port());
  Result<std::string> stats = client.Command("stats");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().rfind("ok stats role=router replicas=2 healthy=2", 0),
            0u)
      << stats.value();
  EXPECT_NE(stats.value().find("role=replica"), std::string::npos)
      << stats.value();

  Result<std::string> list = client.Command("list");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().rfind("ok list 1\n", 0), 0u) << list.value();
  EXPECT_NE(list.value().find("synopsis books gen="), std::string::npos)
      << list.value();
  EXPECT_NE(list.value().find("replicas=2"), std::string::npos)
      << list.value();

  // Routed single-command estimate.
  Result<std::string> estimate = client.Command("estimate books /A");
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate.value().rfind("ok estimate 10 us=", 0), 0u)
      << estimate.value();
}

TEST(ClusterE2E, ReplicaDownAtStartupIsRoutedAround) {
  Replica alive = StartReplica();
  const std::string dead = DeadAddress();
  // Start() runs a synchronous probe round, so the dead peer is unhealthy
  // before the first request routes — no lost first batch.
  std::unique_ptr<Router> router = StartRouter({dead, alive.address()});
  EXPECT_EQ(router->replicas().HealthyIndices(), std::vector<size_t>{1});

  net::NetClient client = ConnectOrDie(router->port());
  Result<net::BatchReplyFrame> reply =
      client.Batch("books", {"/A", "/A/B"}, {});
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.value().items.size(), 2u);
  EXPECT_EQ(reply.value().items[0].estimate, 10.0);
  EXPECT_EQ(reply.value().items[1].estimate, 100.0);
}

TEST(ClusterE2E, ReplicaDeathMidStreamFailsOverWithoutLosingBatches) {
  Replica first = StartReplica();
  Replica second = StartReplica();
  std::unique_ptr<Router> router =
      StartRouter({first.address(), second.address()});
  net::NetClient client = ConnectOrDie(router->port());

  // Warm the routed path (also warms the router's connection pool, so the
  // kill below poisons a pooled connection — the interesting case).
  Result<net::BatchReplyFrame> before = client.Batch("books", {"/A"}, {});
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // Kill whichever replica owns "books"; the router must fail over and
  // every accepted batch must still come back complete, exactly once.
  const uint64_t hash = CollectionHash("books");
  const size_t owner = RankReplicas(hash, router->replicas().seeds())[0];
  (owner == 0 ? first : second).server->Stop();

  for (int round = 0; round < 3; ++round) {
    Result<net::BatchReplyFrame> after =
        client.Batch("books", {"/A", "/A/B", "/A"}, {});
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    ASSERT_EQ(after.value().items.size(), 3u) << "lost or duplicated slots";
    EXPECT_EQ(after.value().items[0].estimate, 10.0);
    EXPECT_EQ(after.value().items[1].estimate, 100.0);
    EXPECT_EQ(after.value().items[2].estimate, 10.0);
  }

  // The data-path failure is enough to deprioritize the dead replica; the
  // prober eventually agrees.
  EXPECT_TRUE(WaitFor([&] {
    return router->replicas().HealthyIndices() ==
           std::vector<size_t>{owner == 0 ? size_t{1} : size_t{0}};
  }));
}

TEST(ClusterE2E, AllReplicasDeadShedsInsteadOfHanging) {
  const std::string dead = DeadAddress();
  std::unique_ptr<Router> router = StartRouter({dead});
  EXPECT_TRUE(router->replicas().HealthyIndices().empty());

  net::NetClient client = ConnectOrDie(router->port());
  Result<net::BatchReplyFrame> reply = client.Batch("books", {"/A"}, {});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), Status::Code::kUnavailable)
      << reply.status().ToString();
  // The shed frame keeps the connection usable — a later request (after
  // hypothetical recovery) reuses it.
  Result<std::string> stats = client.Command("stats");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().rfind("ok stats role=router", 0), 0u);
}

TEST(ClusterE2E, InstallThroughRouterLeavesFleetAtSameGeneration) {
  Replica first = StartReplica();
  Replica second = StartReplica();
  std::unique_ptr<Router> router =
      StartRouter({first.address(), second.address()});

  const std::string bytes = EncodeSynopsisToString(MakeFixture().synopsis());
  net::NetClient client = ConnectOrDie(router->port());
  // Tiny chunk size forces the multi-chunk reassembly path end to end.
  Result<net::InstallReplyFrame> reply =
      client.Install("catalog", bytes, /*generation=*/0, /*chunk_bytes=*/64);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply.value().ok) << reply.value().message;
  const uint64_t generation = reply.value().generation;
  EXPECT_GT(generation, 0u);

  // Both replicas hot-swapped the same snapshot under the same pinned
  // generation — the fleet is in lockstep.
  for (Replica* replica : {&first, &second}) {
    auto stored = replica->service->store().Get("catalog");
    ASSERT_NE(stored, nullptr) << replica->address();
    EXPECT_EQ(stored->generation(), generation) << replica->address();
    EXPECT_EQ(stored->source().rfind("wire:", 0), 0u) << stored->source();
  }

  // A second install moves the whole fleet forward, again in lockstep.
  Result<net::InstallReplyFrame> again = client.Install("catalog", bytes);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_TRUE(again.value().ok) << again.value().message;
  EXPECT_GT(again.value().generation, generation);
  EXPECT_EQ(first.service->store().Get("catalog")->generation(),
            second.service->store().Get("catalog")->generation());

  // The replicated collection serves through the router.
  Result<std::string> estimate = client.Command("estimate catalog /A");
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate.value().rfind("ok estimate 10 us=", 0), 0u)
      << estimate.value();
}

TEST(ClusterE2E, CorruptInstallPushIsRejectedWithoutInstalling) {
  Replica replica = StartReplica();
  std::unique_ptr<Router> router = StartRouter({replica.address()});

  std::string bytes = EncodeSynopsisToString(MakeFixture().synopsis());
  bytes[bytes.size() / 2] ^= 0x40;  // flip one bit mid-snapshot

  net::NetClient client = ConnectOrDie(router->port());
  Result<net::InstallReplyFrame> reply = client.Install("broken", bytes);
  // The router's whole-snapshot CRC check fires before any replica sees a
  // byte (surfaced as a reply with ok=false or a decode error).
  if (reply.ok()) {
    EXPECT_FALSE(reply.value().ok) << reply.value().message;
  }
  EXPECT_EQ(replica.service->store().Get("broken"), nullptr);
}

TEST(ClusterE2E, ScatterGatherSumsShardsAndMatchesDirectMath) {
  Replica first = StartReplica();
  Replica second = StartReplica();
  // Per-shard synopses installed directly (each replica holds every shard,
  // so HRW may send each shard anywhere).
  for (Replica* replica : {&first, &second}) {
    replica->service->store().Install("part@0", MakeFixture());
    replica->service->store().Install("part@1", MakeFixture());
  }
  std::unique_ptr<Router> router =
      StartRouter({first.address(), second.address()});

  net::NetClient client = ConnectOrDie(router->port());
  Result<net::BatchReplyFrame> reply =
      client.Batch("part@2", {"/A", "/A/B", "][broken"}, {});
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.value().items.size(), 3u);
  EXPECT_TRUE(reply.value().items[0].ok);
  EXPECT_EQ(reply.value().items[0].estimate, 20.0);   // 10 + 10
  EXPECT_EQ(reply.value().items[1].estimate, 200.0);  // 100 + 100
  EXPECT_FALSE(reply.value().items[2].ok);
  EXPECT_EQ(reply.value().items[2].error.rfind("shard part@", 0), 0u)
      << reply.value().items[2].error;
  EXPECT_EQ(reply.value().stats.ok, 2u);
  EXPECT_EQ(reply.value().stats.failed, 1u);

  // A missing shard fails the whole batch (never a silent partial sum).
  Result<net::BatchReplyFrame> missing = client.Batch("part@3", {"/A"}, {});
  if (missing.ok()) {
    ASSERT_EQ(missing.value().items.size(), 1u);
    EXPECT_FALSE(missing.value().items[0].ok);
  }
}

TEST(ClusterE2E, StaleReplicatedInstallIsRejectedByReplica) {
  Replica replica = StartReplica();
  const std::string bytes = EncodeSynopsisToString(MakeFixture().synopsis());

  net::NetClient client = ConnectOrDie(replica.server->port());
  Result<net::InstallReplyFrame> fresh =
      client.Install("catalog", bytes, /*generation=*/20);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ASSERT_TRUE(fresh.value().ok) << fresh.value().message;
  EXPECT_EQ(fresh.value().generation, 20u);

  // A delayed or retried push with the same (or an older) pinned
  // generation must not roll the replica backwards — or sideways onto a
  // different snapshot of the same generation.
  for (const uint64_t stale : {uint64_t{20}, uint64_t{7}}) {
    Result<net::InstallReplyFrame> reply =
        client.Install("catalog", bytes, stale);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_FALSE(reply.value().ok) << "generation " << stale;
    EXPECT_NE(reply.value().message.find("stale install"), std::string::npos)
        << reply.value().message;
  }
  EXPECT_EQ(replica.service->store().Get("catalog")->generation(), 20u);

  // A strictly newer pinned generation still lands.
  Result<net::InstallReplyFrame> newer =
      client.Install("catalog", bytes, /*generation=*/21);
  ASSERT_TRUE(newer.ok()) << newer.status().ToString();
  EXPECT_TRUE(newer.value().ok) << newer.value().message;
  EXPECT_EQ(replica.service->store().Get("catalog")->generation(), 21u);
}

TEST(ClusterE2E, OversizedInstallDeclarationIsRejectedUpFront) {
  // A 64-byte install cap: the first chunk's declared total must be
  // refused before any buffering, so a hostile declaration can never
  // commit the daemon to an allocation it cannot afford.
  Replica replica = StartReplica(/*workers=*/2, /*max_install_bytes=*/64);
  const std::string bytes = EncodeSynopsisToString(MakeFixture().synopsis());
  ASSERT_GT(bytes.size(), 64u);

  net::NetClient client = ConnectOrDie(replica.server->port());
  Result<net::InstallReplyFrame> reply = client.Install("big", bytes);
  ASSERT_FALSE(reply.ok());
  EXPECT_NE(reply.status().ToString().find("install cap"), std::string::npos)
      << reply.status().ToString();
  EXPECT_EQ(replica.service->store().Get("big"), nullptr);

  // The daemon survived and still serves (fresh connection — the server
  // closes the offending one with the error frame).
  net::NetClient again = ConnectOrDie(replica.server->port());
  Result<std::string> estimate = again.Command("estimate books /A");
  ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
  EXPECT_EQ(estimate.value().rfind("ok estimate 10 us=", 0), 0u);
}

TEST(ClusterE2E, MutationsFailLoudlyWhenReplicasAreUnhealthy) {
  Replica alive = StartReplica();
  const std::string dead = DeadAddress();
  std::unique_ptr<Router> router = StartRouter({alive.address(), dead});
  EXPECT_EQ(router->replicas().HealthyIndices(), std::vector<size_t>{0});

  // drop fans out to the healthy replica but must not claim fleet-wide
  // success: the dead replica missed the mutation and would serve
  // undropped data once a probe re-admits it.
  net::NetClient client = ConnectOrDie(router->port());
  Result<std::string> drop = client.Command("drop books");
  ASSERT_TRUE(drop.ok()) << drop.status().ToString();
  EXPECT_EQ(drop.value().rfind("err drop did not reach 1 unhealthy", 0), 0u)
      << drop.value();
  EXPECT_NE(drop.value().find(dead), std::string::npos) << drop.value();
  // The healthy replica did apply it.
  EXPECT_EQ(alive.service->store().Get("books"), nullptr);

  // Replication through the router likewise refuses an unqualified ok.
  const std::string bytes = EncodeSynopsisToString(MakeFixture().synopsis());
  Result<net::InstallReplyFrame> install = client.Install("books", bytes);
  ASSERT_TRUE(install.ok()) << install.status().ToString();
  EXPECT_FALSE(install.value().ok);
  EXPECT_NE(install.value().message.find("skipped 1 unhealthy"),
            std::string::npos)
      << install.value().message;
  // ... while still landing the snapshot on every healthy replica.
  ASSERT_NE(alive.service->store().Get("books"), nullptr);
}

TEST(ClusterE2E, ShardedNamesOnTheCommandPathMatchBatchSemantics) {
  Replica first = StartReplica();
  Replica second = StartReplica();
  for (Replica* replica : {&first, &second}) {
    replica->service->store().Install("part@0", MakeFixture());
    replica->service->store().Install("part@1", MakeFixture());
  }
  std::unique_ptr<Router> router =
      StartRouter({first.address(), second.address()});

  // A single text estimate against the sharded name scatter-gathers like
  // a kBatch would (sum across shards), instead of hashing the literal
  // name to one replica and answering "unknown collection".
  net::NetClient client = ConnectOrDie(router->port());
  Result<std::string> estimate = client.Command("estimate part@2 /A");
  ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
  EXPECT_EQ(estimate.value().rfind("ok estimate 20 us=", 0), 0u)
      << estimate.value();
  Result<std::string> deep = client.Command("estimate part@2 /A/B");
  ASSERT_TRUE(deep.ok());
  EXPECT_EQ(deep.value().rfind("ok estimate 200 us=", 0), 0u) << deep.value();

  // A missing shard fails the estimate — never a silent partial sum.
  Result<std::string> missing = client.Command("estimate part@3 /A");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().rfind("err", 0), 0u) << missing.value();

  // load of a sharded name has no single home; the rejection points at
  // the per-shard and replicate paths instead of "unknown collection".
  Result<std::string> load = client.Command("load part@2 /tmp/x.xcs");
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load.value().rfind("err load of sharded name", 0), 0u)
      << load.value();
  EXPECT_NE(load.value().find("replicate"), std::string::npos) << load.value();
}

TEST(ClusterE2E, V3PinnedClientFallsBackAgainstRouter) {
  Replica replica = StartReplica();
  std::unique_ptr<Router> router = StartRouter({replica.address()});

  net::NetClientOptions pinned;
  pinned.max_protocol_version = net::kProtocolVersionTrace;  // v3
  net::NetClient client = ConnectOrDie(router->port(), pinned);
  EXPECT_EQ(client.negotiated_version(), net::kProtocolVersionTrace);
  // v4 hello-ack metadata is absent below v4.
  EXPECT_TRUE(client.server_role().empty());
  EXPECT_TRUE(client.server_description().empty());

  // The data path still routes.
  Result<net::BatchReplyFrame> reply = client.Batch("books", {"/A"}, {});
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().items[0].estimate, 10.0);

  // Install frames are v4-only; the pinned client refuses locally instead
  // of poisoning the stream.
  Result<net::InstallReplyFrame> install = client.Install("books", "x");
  ASSERT_FALSE(install.ok());
  EXPECT_EQ(install.status().code(), Status::Code::kUnsupported)
      << install.status().ToString();
}

TEST(ClusterE2E, RouterTraceIdSpansRouterAndReplica) {
  Replica replica = StartReplica();
  std::unique_ptr<Router> router = StartRouter({replica.address()});

  net::NetClient client = ConnectOrDie(router->port());
  BatchOptions options;
  options.trace.trace_id = 0xabcdef12345678ull;
  options.trace.sampled = true;
  Result<net::BatchReplyFrame> reply =
      client.Batch("books", {"/A"}, options);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  // The router echoes the client's id, and files the batch under it in its
  // own flight ring; the replica leg carried the same id.
  EXPECT_EQ(reply.value().trace_id, options.trace.trace_id);
}

}  // namespace
}  // namespace cluster
}  // namespace xcluster
