#include "build/compress.h"

#include <gtest/gtest.h>

namespace xcluster {
namespace {

/// Root with three valued leaves: a numeric histogram, a string PST, and a
/// text term histogram.
GraphSynopsis MakeValuedSynopsis() {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);

  SynNodeId numeric = synopsis.AddNode("year", ValueType::kNumeric, 40.0);
  synopsis.AddEdge(root, numeric, 40.0);
  std::vector<int64_t> values;
  for (int64_t v = 0; v < 40; ++v) values.push_back(v % 20);
  synopsis.node(numeric).vsumm = ValueSummary::FromNumeric(values, 64);

  SynNodeId str = synopsis.AddNode("title", ValueType::kString, 3.0);
  synopsis.AddEdge(root, str, 3.0);
  synopsis.node(str).vsumm =
      ValueSummary::FromStrings({"golden ring", "silver coin", "gold dust"}, 4);

  SynNodeId text = synopsis.AddNode("plot", ValueType::kText, 4.0);
  synopsis.AddEdge(root, text, 4.0);
  synopsis.node(text).vsumm =
      ValueSummary::FromTexts({{1, 2, 3}, {1, 4}, {2, 5}, {1, 2, 6}});
  return synopsis;
}

TEST(CompressTest, MeetsBudget) {
  GraphSynopsis synopsis = MakeValuedSynopsis();
  size_t before = synopsis.ValueBytes();
  size_t budget = before / 2;
  size_t after = CompressValueSummaries(&synopsis, budget, CompressOptions());
  EXPECT_LE(after, budget);
  EXPECT_EQ(after, synopsis.ValueBytes());
}

TEST(CompressTest, NoOpWhenUnderBudget) {
  GraphSynopsis synopsis = MakeValuedSynopsis();
  size_t before = synopsis.ValueBytes();
  size_t after =
      CompressValueSummaries(&synopsis, before + 1000, CompressOptions());
  EXPECT_EQ(after, before);
}

TEST(CompressTest, StopsAtIncompressibleFloor) {
  GraphSynopsis synopsis = MakeValuedSynopsis();
  // Budget 0 is unreachable: histograms keep one bucket, PSTs keep their
  // depth-1 symbols, term histograms keep the uniform bucket.
  size_t after = CompressValueSummaries(&synopsis, 0, CompressOptions());
  EXPECT_GT(after, 0u);
  // Every summary was compressed as far as possible.
  for (SynNodeId id : synopsis.AliveNodes()) {
    const ValueSummary& vsumm = synopsis.node(id).vsumm;
    if (vsumm.empty()) continue;
    ValueSummary copy = vsumm;
    size_t saved = copy.Compress(1);
    EXPECT_EQ(saved, 0u) << "node " << id;
  }
}

TEST(CompressTest, SummariesRemainUsable) {
  GraphSynopsis synopsis = MakeValuedSynopsis();
  CompressValueSummaries(&synopsis, synopsis.ValueBytes() / 3,
                         CompressOptions());
  for (SynNodeId id : synopsis.AliveNodes()) {
    const ValueSummary& vsumm = synopsis.node(id).vsumm;
    switch (vsumm.type()) {
      case ValueType::kNumeric:
        EXPECT_NEAR(vsumm.histogram().total(), 40.0, 1e-9);
        break;
      case ValueType::kString:
        EXPECT_GT(vsumm.pst().Selectivity("g"), 0.0);
        break;
      case ValueType::kText: {
        double mass = 0.0;
        for (TermId t = 0; t < 8; ++t) mass += vsumm.terms().Frequency(t);
        EXPECT_GT(mass, 0.0);
        break;
      }
      case ValueType::kNone:
        break;
    }
  }
}

TEST(CompressTest, PrefersCheapOperations) {
  // Two numeric nodes: one with redundant buckets (uniform), one with a
  // highly informative distribution. Compressing to remove exactly a few
  // buckets should prefer the redundant histogram.
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId uniform = synopsis.AddNode("u", ValueType::kNumeric, 16.0);
  SynNodeId skewed = synopsis.AddNode("s", ValueType::kNumeric, 16.0);
  synopsis.AddEdge(root, uniform, 16.0);
  synopsis.AddEdge(root, skewed, 16.0);
  std::vector<int64_t> uniform_values;
  for (int64_t v = 0; v < 16; ++v) uniform_values.push_back(v);
  std::vector<int64_t> skewed_values = {0, 0, 0, 0, 0, 0, 0, 0,
                                        1000, 2000, 4000, 8000,
                                        16000, 32000, 64000, 128000};
  synopsis.node(uniform).vsumm = ValueSummary::FromNumeric(uniform_values, 64);
  synopsis.node(skewed).vsumm = ValueSummary::FromNumeric(skewed_values, 64);

  size_t uniform_before = synopsis.node(uniform).vsumm.SizeBytes();
  size_t budget = synopsis.ValueBytes() - 24;  // force ~3 bucket merges
  CompressOptions options;
  options.step = 1;
  CompressValueSummaries(&synopsis, budget, options);
  // The uniform histogram absorbed the compression.
  EXPECT_LT(synopsis.node(uniform).vsumm.SizeBytes(), uniform_before);
  EXPECT_EQ(synopsis.node(skewed).vsumm.histogram().bucket_count(), 9u);
}

TEST(CompressTest, VOptimalHistogramOption) {
  GraphSynopsis synopsis = MakeValuedSynopsis();
  CompressOptions options;
  options.voptimal_histograms = true;
  size_t budget = synopsis.ValueBytes() / 2;
  size_t after = CompressValueSummaries(&synopsis, budget, options);
  EXPECT_LE(after, budget);
  // The numeric summary remains a valid histogram with its total intact.
  for (SynNodeId id : synopsis.AliveNodes()) {
    const ValueSummary& vsumm = synopsis.node(id).vsumm;
    if (vsumm.type() == ValueType::kNumeric) {
      EXPECT_NEAR(vsumm.histogram().total(), 40.0, 1e-9);
    }
  }
}

TEST(CompressTest, EmptySynopsisIsFine) {
  GraphSynopsis synopsis;
  EXPECT_EQ(CompressValueSummaries(&synopsis, 100, CompressOptions()), 0u);
}

TEST(CompressTest, LargerStepCompressesFaster) {
  GraphSynopsis a = MakeValuedSynopsis();
  GraphSynopsis b = MakeValuedSynopsis();
  CompressOptions coarse;
  coarse.step = 8;
  size_t budget = a.ValueBytes() / 2;
  size_t after_fine = CompressValueSummaries(&a, budget, CompressOptions());
  size_t after_coarse = CompressValueSummaries(&b, budget, coarse);
  EXPECT_LE(after_fine, budget);
  EXPECT_LE(after_coarse, budget);
}

}  // namespace
}  // namespace xcluster
