#include "core/xcluster.h"

#include <gtest/gtest.h>

#include "data/imdb.h"

namespace xcluster {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ImdbOptions options;
    options.scale = 0.05;
    dataset_ = GenerateImdb(options);
  }

  XCluster::Options DefaultOptions() {
    XCluster::Options options;
    options.reference.value_paths = dataset_.value_paths;
    options.build.structural_budget = 4096;
    options.build.value_budget = 32768;
    return options;
  }

  GeneratedDataset dataset_;
};

TEST_F(CoreTest, BuildRespectsBudgets) {
  XCluster xc = XCluster::Build(dataset_.doc, DefaultOptions());
  EXPECT_LE(xc.synopsis().StructuralBytes(), 4096u);
  EXPECT_LE(xc.synopsis().ValueBytes(), 32768u);
  EXPECT_EQ(xc.SizeBytes(),
            xc.synopsis().StructuralBytes() + xc.synopsis().ValueBytes());
}

TEST_F(CoreTest, BuildStatsExposed) {
  XCluster xc = XCluster::Build(dataset_.doc, DefaultOptions());
  EXPECT_GT(xc.build_stats().reference_nodes, 0u);
  EXPECT_GT(xc.build_stats().merges_applied, 0u);
}

TEST_F(CoreTest, EstimateFromQueryString) {
  XCluster xc = XCluster::Build(dataset_.doc, DefaultOptions());
  Result<double> estimate = xc.EstimateSelectivity("/movie/title");
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(estimate.value(), 0.0);
}

TEST_F(CoreTest, EstimateParseErrorPropagates) {
  XCluster xc = XCluster::Build(dataset_.doc, DefaultOptions());
  Result<double> estimate = xc.EstimateSelectivity("not a query");
  EXPECT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(CoreTest, EstimateStructuralCountsRoughlyCorrect) {
  // With a generous budget the synopsis preserves the per-label counts, so
  // single-step structural estimates match the document exactly.
  XCluster::Options options = DefaultOptions();
  options.build.structural_budget = 1 << 30;
  options.build.value_budget = 1 << 30;
  XCluster xc = XCluster::Build(dataset_.doc, options);
  size_t movies = 0;
  for (NodeId child : dataset_.doc.children(dataset_.doc.root())) {
    if (dataset_.doc.label_name(child) == "movie") ++movies;
  }
  Result<double> estimate = xc.EstimateSelectivity("/movie");
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate.value(), static_cast<double>(movies), 1e-6);
}

TEST_F(CoreTest, WrapExistingSynopsis) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("r", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("a", ValueType::kNone, 5.0);
  synopsis.AddEdge(root, a, 5.0);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  XCluster xc(std::move(synopsis));
  Result<double> estimate = xc.EstimateSelectivity("/a");
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate.value(), 5.0, 1e-9);
}

}  // namespace
}  // namespace xcluster
