#include "text/corpus.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "text/tokenizer.h"

namespace xcluster {
namespace {

TEST(CorpusTest, WordListIsLargeAndStable) {
  const auto& words = CorpusWords();
  EXPECT_GT(words.size(), 300u);
  EXPECT_EQ(&CorpusWords(), &words);  // same instance
}

TEST(CorpusTest, WordsAreTokenizerClean) {
  // Every corpus word must survive tokenization unchanged, so that term
  // dictionaries built from generated text match query terms drawn from
  // the corpus.
  for (const std::string& word : CorpusWords()) {
    std::vector<std::string> tokens = Tokenize(word);
    ASSERT_EQ(tokens.size(), 1u) << word;
    EXPECT_EQ(tokens[0], word);
  }
}

TEST(TextGeneratorTest, GeneratesRequestedWordCount) {
  TextGenerator gen(0.8);
  Rng rng(1);
  std::string text = gen.Generate(&rng, 12);
  EXPECT_EQ(Tokenize(text).size(), 12u);
}

TEST(TextGeneratorTest, ZeroWordsIsEmpty) {
  TextGenerator gen(0.8);
  Rng rng(1);
  EXPECT_EQ(gen.Generate(&rng, 0), "");
}

TEST(TextGeneratorTest, DeterministicGivenSeed) {
  TextGenerator gen(0.8);
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(gen.Generate(&a, 20), gen.Generate(&b, 20));
}

TEST(TextGeneratorTest, SkewedTowardHeadWords) {
  TextGenerator gen(1.0);
  Rng rng(9);
  std::map<std::string, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[gen.Word(&rng)];
  // The most frequent word should appear far more often than average.
  int max_count = 0;
  for (const auto& [word, count] : counts) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, 5000 / 50);
}

TEST(TextGeneratorTest, TopicsShiftVocabulary) {
  TextGenerator gen(1.2);
  Rng a(3);
  Rng b(3);
  // The head word under topic 0 and topic 5 must differ (rank rotation).
  std::map<std::string, int> topic0;
  std::map<std::string, int> topic5;
  for (int i = 0; i < 2000; ++i) {
    ++topic0[gen.Word(&a, 0)];
    ++topic5[gen.Word(&b, 5)];
  }
  auto argmax = [](const std::map<std::string, int>& counts) {
    std::string best;
    int best_count = -1;
    for (const auto& [word, count] : counts) {
      if (count > best_count) {
        best = word;
        best_count = count;
      }
    }
    return best;
  };
  EXPECT_NE(argmax(topic0), argmax(topic5));
}

TEST(TextGeneratorTest, AllWordsFromCorpus) {
  TextGenerator gen(0.5);
  Rng rng(11);
  std::set<std::string> corpus(CorpusWords().begin(), CorpusWords().end());
  for (const std::string& token : Tokenize(gen.Generate(&rng, 200, 3))) {
    EXPECT_TRUE(corpus.count(token) > 0) << token;
  }
}

}  // namespace
}  // namespace xcluster
