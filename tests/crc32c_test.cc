#include "common/io/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace xcluster {
namespace {

// Reference vectors from the iSCSI specification (RFC 3720 B.4) and the
// canonical "123456789" check value.
TEST(Crc32cTest, CheckValue) {
  EXPECT_EQ(crc32c::Value("123456789"), 0xe3069283u);
}

TEST(Crc32cTest, ThirtyTwoZeros) {
  std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::Value(zeros), 0x8a9136aau);
}

TEST(Crc32cTest, ThirtyTwoOnes) {
  std::string ones(32, '\xff');
  EXPECT_EQ(crc32c::Value(ones), 0x62a8ab43u);
}

TEST(Crc32cTest, AscendingBytes) {
  std::string data(32, '\0');
  for (int i = 0; i < 32; ++i) data[i] = static_cast<char>(i);
  EXPECT_EQ(crc32c::Value(data), 0x46dd794eu);
}

TEST(Crc32cTest, EmptyIsZero) { EXPECT_EQ(crc32c::Value(""), 0u); }

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = crc32c::Extend(0, data.data(), split);
    crc = crc32c::Extend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, crc32c::Value(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, SensitiveToSingleBitFlips) {
  std::string data = "some synopsis payload bytes";
  const uint32_t clean = crc32c::Value(data);
  for (size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(data[bit / 8]) ^ (1u << (bit % 8)));
    EXPECT_NE(crc32c::Value(data), clean) << "bit " << bit;
    data[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(data[bit / 8]) ^ (1u << (bit % 8)));
  }
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu, 0xe3069283u}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
    EXPECT_NE(crc32c::Mask(crc), crc);
  }
}

}  // namespace
}  // namespace xcluster
