#include "build/delta.h"

#include <gtest/gtest.h>

#include "synopsis/size_model.h"

namespace xcluster {
namespace {

/// Root with two same-label children u, v that in turn share a child c.
struct Pair {
  GraphSynopsis synopsis;
  SynNodeId root, u, v, c;

  Pair(double cu, double cv, double uc, double vc) {
    root = synopsis.AddNode("R", ValueType::kNone, 1.0);
    u = synopsis.AddNode("A", ValueType::kNone, cu);
    v = synopsis.AddNode("A", ValueType::kNone, cv);
    c = synopsis.AddNode("C", ValueType::kNone, cu * uc + cv * vc);
    synopsis.AddEdge(root, u, cu);
    synopsis.AddEdge(root, v, cv);
    if (uc > 0) synopsis.AddEdge(u, c, uc);
    if (vc > 0) synopsis.AddEdge(v, c, vc);
  }
};

TEST(DeltaTest, IdenticalCentroidsHaveZeroDelta) {
  Pair p(4.0, 4.0, 3.0, 3.0);
  EXPECT_NEAR(MergeDelta(p.synopsis, p.u, p.v, DeltaOptions()), 0.0, 1e-12);
}

TEST(DeltaTest, StructuralDivergenceIsCharged) {
  Pair p(4.0, 4.0, 2.0, 6.0);
  // Merged count(w, c) = 4; per the formula each side contributes
  // |x| * (count(x,c) - 4)^2 = 4 * 4 = 16, total 32.
  EXPECT_NEAR(MergeDelta(p.synopsis, p.u, p.v, DeltaOptions()), 32.0, 1e-9);
}

TEST(DeltaTest, DeltaGrowsWithDivergence) {
  Pair small(4.0, 4.0, 3.0, 4.0);
  Pair large(4.0, 4.0, 1.0, 9.0);
  DeltaOptions options;
  EXPECT_LT(MergeDelta(small.synopsis, small.u, small.v, options),
            MergeDelta(large.synopsis, large.u, large.v, options));
}

TEST(DeltaTest, ExtentWeightsMatter) {
  // Same centroid divergence, bigger extents => bigger delta.
  Pair light(1.0, 1.0, 2.0, 6.0);
  Pair heavy(10.0, 10.0, 2.0, 6.0);
  DeltaOptions options;
  EXPECT_LT(MergeDelta(light.synopsis, light.u, light.v, options),
            MergeDelta(heavy.synopsis, heavy.u, heavy.v, options));
}

TEST(DeltaTest, ValueDivergenceIsCharged) {
  // Structurally identical nodes whose value summaries differ: the delta
  // must be positive through the value term.
  Pair p(4.0, 4.0, 3.0, 3.0);
  p.synopsis.node(p.u).type = ValueType::kNumeric;
  p.synopsis.node(p.v).type = ValueType::kNumeric;
  p.synopsis.node(p.u).vsumm = ValueSummary::FromNumeric({1, 1, 1, 1}, 8);
  p.synopsis.node(p.v).vsumm = ValueSummary::FromNumeric({9, 9, 9, 9}, 8);
  double delta = MergeDelta(p.synopsis, p.u, p.v, DeltaOptions());
  EXPECT_GT(delta, 0.0);

  // With use_value_summaries disabled the same pair costs nothing.
  DeltaOptions structural_only;
  structural_only.use_value_summaries = false;
  EXPECT_NEAR(MergeDelta(p.synopsis, p.u, p.v, structural_only), 0.0, 1e-12);
}

TEST(DeltaTest, IdenticalValueSummariesCostNothing) {
  Pair p(4.0, 4.0, 3.0, 3.0);
  p.synopsis.node(p.u).type = ValueType::kNumeric;
  p.synopsis.node(p.v).type = ValueType::kNumeric;
  p.synopsis.node(p.u).vsumm = ValueSummary::FromNumeric({1, 5, 9}, 8);
  p.synopsis.node(p.v).vsumm = ValueSummary::FromNumeric({1, 5, 9}, 8);
  EXPECT_NEAR(MergeDelta(p.synopsis, p.u, p.v, DeltaOptions()), 0.0, 1e-9);
}

TEST(DeltaTest, LeafValueNodesStillCharged) {
  // Leaf nodes (no children) with diverging values: the implicit self
  // target must charge the drift.
  GraphSynopsis synopsis;
  synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId u = synopsis.AddNode("Y", ValueType::kNumeric, 4.0);
  SynNodeId v = synopsis.AddNode("Y", ValueType::kNumeric, 4.0);
  synopsis.AddEdge(0, u, 4.0);
  synopsis.AddEdge(0, v, 4.0);
  synopsis.node(u).vsumm = ValueSummary::FromNumeric({0, 0, 0, 0}, 8);
  synopsis.node(v).vsumm = ValueSummary::FromNumeric({100, 100, 100, 100}, 8);
  EXPECT_GT(MergeDelta(synopsis, u, v, DeltaOptions()), 0.0);
}

TEST(DeltaTest, MergeSavingsSharedChildAndParent) {
  Pair p(4.0, 4.0, 3.0, 3.0);
  // Nodes: one saved (9B). Edges: root->u/root->v collapse (1 edge saved),
  // u->c/v->c collapse (1 edge saved) => 16B.
  EXPECT_EQ(MergeSavings(p.synopsis, p.u, p.v),
            SizeModel::kNodeBytes + 2 * SizeModel::kEdgeBytes);
}

TEST(DeltaTest, MergeSavingsDisjointChildren) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId u = synopsis.AddNode("A", ValueType::kNone, 1.0);
  SynNodeId v = synopsis.AddNode("A", ValueType::kNone, 1.0);
  SynNodeId x = synopsis.AddNode("X", ValueType::kNone, 1.0);
  SynNodeId y = synopsis.AddNode("Y", ValueType::kNone, 1.0);
  synopsis.AddEdge(root, u, 1.0);
  synopsis.AddEdge(root, v, 1.0);
  synopsis.AddEdge(u, x, 1.0);
  synopsis.AddEdge(v, y, 1.0);
  // Only the parent edges collapse; children are disjoint.
  EXPECT_EQ(MergeSavings(synopsis, u, v),
            SizeModel::kNodeBytes + 1 * SizeModel::kEdgeBytes);
}

TEST(DeltaTest, MergeSavingsAdjacentPair) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId u = synopsis.AddNode("P", ValueType::kNone, 2.0);
  SynNodeId v = synopsis.AddNode("P", ValueType::kNone, 2.0);
  synopsis.AddEdge(root, u, 2.0);
  synopsis.AddEdge(u, v, 1.0);
  // Before: 2 edges. After: root->w and w->w = 2 edges. Only the node is
  // saved.
  EXPECT_EQ(MergeSavings(synopsis, u, v), SizeModel::kNodeBytes);
}

TEST(DeltaTest, CompressionDeltaZeroForLosslessCompression) {
  GraphSynopsis synopsis;
  synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId u = synopsis.AddNode("Y", ValueType::kNumeric, 4.0);
  synopsis.AddEdge(0, u, 4.0);
  // Uniform adjacent values: merging buckets loses nothing at the
  // boundaries that remain.
  synopsis.node(u).vsumm = ValueSummary::FromNumeric({1, 2, 3, 4}, 8);
  ValueSummary compressed = synopsis.node(u).vsumm.Compressed(1);
  double delta = CompressionDelta(synopsis, u, compressed, DeltaOptions());
  EXPECT_GE(delta, 0.0);
  EXPECT_LT(delta, 1.0);
}

TEST(DeltaTest, CompressionDeltaGrowsWithCoarsening) {
  GraphSynopsis synopsis;
  synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId u = synopsis.AddNode("Y", ValueType::kNumeric, 8.0);
  synopsis.AddEdge(0, u, 8.0);
  synopsis.node(u).vsumm =
      ValueSummary::FromNumeric({1, 1, 1, 50, 90, 90, 95, 100}, 16);
  ValueSummary mild = synopsis.node(u).vsumm.Compressed(1);
  ValueSummary severe = synopsis.node(u).vsumm.Compressed(4);
  DeltaOptions options;
  EXPECT_LE(CompressionDelta(synopsis, u, mild, options),
            CompressionDelta(synopsis, u, severe, options) + 1e-12);
}

TEST(DeltaTest, AtomicPredicateCapBoundsWork) {
  GraphSynopsis synopsis;
  synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId u = synopsis.AddNode("Y", ValueType::kNumeric, 50.0);
  SynNodeId v = synopsis.AddNode("Y", ValueType::kNumeric, 50.0);
  synopsis.AddEdge(0, u, 50.0);
  synopsis.AddEdge(0, v, 50.0);
  std::vector<int64_t> wide;
  for (int64_t i = 0; i < 50; ++i) wide.push_back(i);
  synopsis.node(u).vsumm = ValueSummary::FromNumeric(wide, 64);
  synopsis.node(v).vsumm = ValueSummary::FromNumeric(wide, 64);
  DeltaOptions tight;
  tight.atomic_pred_cap = 4;
  // Identical summaries: still zero under any cap.
  EXPECT_NEAR(MergeDelta(synopsis, u, v, tight), 0.0, 1e-9);
}

}  // namespace
}  // namespace xcluster
