#include "text/dictionary.h"

#include <gtest/gtest.h>

namespace xcluster {
namespace {

TEST(DictionaryTest, InternTextReturnsSortedUniqueTerms) {
  TermDictionary dict;
  TermSet terms = dict.InternText("xml employs a tree model xml");
  EXPECT_EQ(terms.size(), 5u);  // "xml" deduplicated
  for (size_t i = 1; i < terms.size(); ++i) {
    EXPECT_LT(terms[i - 1], terms[i]);
  }
}

TEST(DictionaryTest, InternIsStable) {
  TermDictionary dict;
  TermId a = dict.Intern("synopsis");
  TermId b = dict.Intern("synopsis");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.Get(a), "synopsis");
}

TEST(DictionaryTest, LookupTextDropsUnknownTerms) {
  TermDictionary dict;
  dict.Intern("xml");
  bool all_known = true;
  TermSet terms = dict.LookupText("xml quantum", &all_known);
  EXPECT_EQ(terms.size(), 1u);
  EXPECT_FALSE(all_known);
}

TEST(DictionaryTest, LookupTextAllKnown) {
  TermDictionary dict;
  dict.InternText("alpha beta");
  bool all_known = false;
  TermSet terms = dict.LookupText("beta alpha", &all_known);
  EXPECT_EQ(terms.size(), 2u);
  EXPECT_TRUE(all_known);
}

TEST(DictionaryTest, LookupMissingTerm) {
  TermDictionary dict;
  EXPECT_EQ(dict.Lookup("nothing"), kInvalidSymbol);
}

TEST(DictionaryTest, CaseInsensitiveThroughTokenizer) {
  TermDictionary dict;
  TermSet a = dict.InternText("Tree");
  TermSet b = dict.InternText("tree");
  EXPECT_EQ(a, b);
}

TEST(DictionaryTest, SizeCountsDistinctTerms) {
  TermDictionary dict;
  dict.InternText("a b c a b");
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, NullAllKnownPointerAccepted) {
  TermDictionary dict;
  dict.Intern("x");
  EXPECT_EQ(dict.LookupText("x y").size(), 1u);
}

}  // namespace
}  // namespace xcluster
