#include "xml/document.h"

#include <gtest/gtest.h>

namespace xcluster {
namespace {

TEST(DocumentTest, EmptyDocument) {
  XmlDocument doc;
  EXPECT_EQ(doc.root(), kNoNode);
  EXPECT_EQ(doc.size(), 0u);
  EXPECT_EQ(doc.Depth(), 0u);
}

TEST(DocumentTest, RootCreation) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("site");
  EXPECT_EQ(root, 0u);
  EXPECT_EQ(doc.root(), root);
  EXPECT_EQ(doc.label_name(root), "site");
  EXPECT_EQ(doc.type(root), ValueType::kNone);
  EXPECT_EQ(doc.Depth(), 1u);
}

TEST(DocumentTest, ChildrenPreserveOrder) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  NodeId a = doc.AddChild(root, "a");
  NodeId b = doc.AddChild(root, "b");
  NodeId c = doc.AddChild(root, "a");
  ASSERT_EQ(doc.children(root).size(), 3u);
  EXPECT_EQ(doc.children(root)[0], a);
  EXPECT_EQ(doc.children(root)[1], b);
  EXPECT_EQ(doc.children(root)[2], c);
  EXPECT_EQ(doc.node(a).parent, root);
}

TEST(DocumentTest, SharedLabelsShareSymbols) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  NodeId a = doc.AddChild(root, "item");
  NodeId b = doc.AddChild(root, "item");
  EXPECT_EQ(doc.label(a), doc.label(b));
}

TEST(DocumentTest, NumericValue) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  NodeId year = doc.AddChild(root, "year");
  doc.SetNumeric(year, 2005);
  EXPECT_EQ(doc.type(year), ValueType::kNumeric);
  EXPECT_EQ(doc.node(year).numeric, 2005);
}

TEST(DocumentTest, StringValue) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  NodeId title = doc.AddChild(root, "title");
  doc.SetString(title, "Counting Twigs");
  EXPECT_EQ(doc.type(title), ValueType::kString);
  EXPECT_EQ(doc.node(title).text, "Counting Twigs");
}

TEST(DocumentTest, TextValue) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  NodeId abs = doc.AddChild(root, "abstract");
  doc.SetText(abs, "xml employs a tree model");
  EXPECT_EQ(doc.type(abs), ValueType::kText);
}

TEST(DocumentTest, CountValued) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  NodeId a = doc.AddChild(root, "a");
  NodeId b = doc.AddChild(root, "b");
  doc.AddChild(root, "c");
  doc.SetNumeric(a, 1);
  doc.SetString(b, "x");
  EXPECT_EQ(doc.CountValued(), 2u);
}

TEST(DocumentTest, DepthOfChain) {
  XmlDocument doc;
  NodeId current = doc.CreateRoot("l0");
  for (int i = 1; i < 5; ++i) {
    current = doc.AddChild(current, "l" + std::to_string(i));
  }
  EXPECT_EQ(doc.Depth(), 5u);
}

TEST(DocumentTest, PathOf) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("site");
  NodeId people = doc.AddChild(root, "people");
  NodeId person = doc.AddChild(people, "person");
  EXPECT_EQ(doc.PathOf(root), "/site");
  EXPECT_EQ(doc.PathOf(person), "/site/people/person");
}

TEST(DocumentTest, ValueTypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kNone), "none");
  EXPECT_STREQ(ValueTypeName(ValueType::kNumeric), "numeric");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
  EXPECT_STREQ(ValueTypeName(ValueType::kText), "text");
}

TEST(DocumentTest, MoveSemantics) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  doc.AddChild(root, "a");
  XmlDocument moved = std::move(doc);
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved.label_name(0), "r");
}

}  // namespace
}  // namespace xcluster
