// Regression tests for concurrent use of one XClusterEstimator. The
// descendant-reachability memo (descendant_cache_) used to be an
// unsynchronized mutable map — racing Estimate() calls from two threads
// was undefined behavior. These tests drive descendant-heavy queries from
// many threads at once and are part of the TSan suite in CI.
#include "estimate/estimator.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "query/parser.h"
#include "synopsis/graph.h"

namespace xcluster {
namespace {

TwigQuery MustParse(std::string_view input) {
  Result<TwigQuery> result = ParseTwig(input);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// A deep chain R -> A -> B -> C -> D -> E with side branches, so `//`
/// steps require multi-hop reachability DP (cache-miss heavy on first
/// touch, cache-hit heavy afterwards).
GraphSynopsis MakeDeepSynopsis() {
  GraphSynopsis synopsis;
  SynNodeId r = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId prev = r;
  double count = 4.0;
  for (const char* label : {"A", "B", "C", "D", "E"}) {
    SynNodeId node = synopsis.AddNode(label, ValueType::kNone, count);
    synopsis.AddEdge(prev, node, count);
    SynNodeId side =
        synopsis.AddNode(std::string(label) + "side", ValueType::kNone, 2.0);
    synopsis.AddEdge(node, side, 2.0);
    prev = node;
    count *= 2.0;
  }
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  return synopsis;
}

const std::vector<std::string> kDescendantQueries = {
    "//E",       "//C//E",  "//A//D",     "//B//Eside", "/A//E",
    "//A//Cside", "//D",    "//A//B//C", "//Bside",    "//C//Dside",
};

TEST(EstimatorConcurrencyTest, ParallelDescendantQueriesMatchSerial) {
  GraphSynopsis synopsis = MakeDeepSynopsis();

  // Serial baseline on a fresh estimator (cold cache).
  std::vector<double> expected;
  {
    XClusterEstimator baseline(synopsis);
    for (const std::string& query : kDescendantQueries) {
      expected.push_back(baseline.Estimate(MustParse(query)));
    }
  }

  // One shared estimator, many threads, repeated passes: the first pass
  // races cache fills, later passes race reads against late writers.
  XClusterEstimator shared(synopsis);
  constexpr int kThreads = 8;
  constexpr int kPasses = 25;
  std::vector<std::vector<double>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread starts at a different offset so writers collide.
      for (int pass = 0; pass < kPasses; ++pass) {
        for (size_t i = 0; i < kDescendantQueries.size(); ++i) {
          const size_t index = (i + static_cast<size_t>(t)) %
                               kDescendantQueries.size();
          const double estimate =
              shared.Estimate(MustParse(kDescendantQueries[index]));
          if (pass == 0) continue;  // warm-up
          got[t].push_back(estimate - expected[index]);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    for (double delta : got[t]) {
      // Bit-identical to the cold-cache serial answer.
      EXPECT_EQ(delta, 0.0) << "thread " << t;
    }
  }
}

TEST(EstimatorConcurrencyTest, ExplainIsSafeAlongsideEstimate) {
  GraphSynopsis synopsis = MakeDeepSynopsis();
  XClusterEstimator shared(synopsis);
  const TwigQuery probe = MustParse("//C//E");
  const double expected = shared.Estimate(probe);
  const std::string expected_explanation =
      shared.Explain(probe).ToString();

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(shared.Estimate(probe), expected);
        EXPECT_EQ(shared.Explain(probe).ToString(), expected_explanation);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

}  // namespace
}  // namespace xcluster
