#include "estimate/estimator.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace xcluster {
namespace {

TwigQuery MustParse(std::string_view input) {
  Result<TwigQuery> result = ParseTwig(input);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// The synopsis of Figure 7(a): R -10-> A; A -10-> B -5-> C (C carries a
/// value summary with sigma 0.1 for the test predicate); A -5-> Da -2-> E.
struct Fig7 {
  GraphSynopsis synopsis;
  SynNodeId r, a, b, c, da, e;

  Fig7() {
    r = synopsis.AddNode("R", ValueType::kNone, 1.0);
    a = synopsis.AddNode("A", ValueType::kNone, 10.0);
    b = synopsis.AddNode("B", ValueType::kNone, 100.0);
    c = synopsis.AddNode("C", ValueType::kNumeric, 500.0);
    da = synopsis.AddNode("D", ValueType::kNone, 50.0);
    e = synopsis.AddNode("E", ValueType::kNone, 100.0);
    synopsis.AddEdge(r, a, 10.0);
    synopsis.AddEdge(a, b, 10.0);
    synopsis.AddEdge(b, c, 5.0);
    synopsis.AddEdge(a, da, 5.0);
    synopsis.AddEdge(da, e, 2.0);
    // sigma_C(range(0,0)) = 0.1: values 0..9, one each.
    std::vector<int64_t> values;
    for (int64_t v = 0; v < 10; ++v) values.push_back(v);
    synopsis.node(c).vsumm = ValueSummary::FromNumeric(std::move(values), 16);
    synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  }

  double Estimate(std::string_view twig) {
    XClusterEstimator estimator(synopsis);
    return estimator.Estimate(MustParse(twig));
  }
};

TEST(EstimatorTest, PaperFigure7Example) {
  // Per element of A: 10*5*0.1 = 5 bindings in q2, 5*2 = 10 in q3, so 50
  // tuples; 10 elements of A under the root give 500 (Sec. 5).
  Fig7 f;
  EXPECT_NEAR(f.Estimate("//A[/B/C[range(0,0)]]//E"), 500.0, 1e-6);
}

TEST(EstimatorTest, SingleChildStep) {
  Fig7 f;
  EXPECT_NEAR(f.Estimate("/A"), 10.0, 1e-9);
  EXPECT_NEAR(f.Estimate("/A/B"), 100.0, 1e-9);
  EXPECT_NEAR(f.Estimate("/A/B/C"), 500.0, 1e-9);
}

TEST(EstimatorTest, PathValueIndependenceFormula) {
  // |u| sigma_p(u) count(u, c) chained along the path.
  Fig7 f;
  EXPECT_NEAR(f.Estimate("/A/B/C[range(0,4)]"), 250.0, 1e-9);
}

TEST(EstimatorTest, DescendantReachSumsOverPaths) {
  Fig7 f;
  // //C from the root: only via A/B: 10*10*5 = 500.
  EXPECT_NEAR(f.Estimate("//C"), 500.0, 1e-9);
  // //E: via A/Da: 10*5*2 = 100.
  EXPECT_NEAR(f.Estimate("//E"), 100.0, 1e-9);
}

TEST(EstimatorTest, WildcardMatchesAllChildren) {
  Fig7 f;
  // Children of A: B (10) + D (5) per element, 10 elements of A.
  EXPECT_NEAR(f.Estimate("/A/*"), 150.0, 1e-9);
}

TEST(EstimatorTest, MissingLabelIsZero) {
  Fig7 f;
  EXPECT_EQ(f.Estimate("/Z"), 0.0);
  EXPECT_EQ(f.Estimate("//A/Q"), 0.0);
}

TEST(EstimatorTest, MismatchedPredicateTypeIsZero) {
  Fig7 f;
  EXPECT_EQ(f.Estimate("/A/B/C[contains(x)]"), 0.0);
}

TEST(EstimatorTest, TypeIncompatiblePredicateOnSummarylessNodeIsZero) {
  Fig7 f;
  // B has no value type at all: a range predicate can never hold.
  EXPECT_EQ(f.Estimate("/A/B[range(0,100)]"), 0.0);
}

TEST(EstimatorTest, DefaultSelectivityFallbackOnUnsummarizedCluster) {
  // A NUMERIC cluster without a value summary (not on a summarized path)
  // estimates range predicates with the default-selectivity constant.
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId y = synopsis.AddNode("Y", ValueType::kNumeric, 40.0);
  synopsis.AddEdge(root, y, 40.0);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  EstimateOptions options;
  options.default_selectivity = 0.25;
  XClusterEstimator estimator(synopsis, options);
  EXPECT_NEAR(estimator.Estimate(MustParse("/Y[range(0,10)]")), 10.0, 1e-9);
  // Kind-incompatible predicates still estimate zero.
  EXPECT_EQ(estimator.Estimate(MustParse("/Y[contains(x)]")), 0.0);
}

TEST(EstimatorTest, FtAnyUsesInclusionExclusion) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId t = synopsis.AddNode("T", ValueType::kText, 4.0);
  synopsis.AddEdge(root, t, 4.0);
  auto dict = std::make_shared<TermDictionary>();
  TermId love = dict->Intern("love");
  TermId war = dict->Intern("war");
  synopsis.node(t).vsumm =
      ValueSummary::FromTexts({{love}, {love}, {war}, {}});
  synopsis.set_term_dictionary(dict);
  XClusterEstimator estimator(synopsis);
  // w[love] = 0.5, w[war] = 0.25 -> 4 * (1 - 0.5*0.75) = 2.5.
  EXPECT_NEAR(estimator.Estimate(MustParse("/T[ftany(love,war)]")), 2.5,
              1e-9);
  // Unknown terms drop out of a disjunction.
  EXPECT_NEAR(estimator.Estimate(MustParse("/T[ftany(love,unseen)]")), 2.0,
              1e-9);
}

TEST(EstimatorTest, FtSimilarUsesPoissonBinomial) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId t = synopsis.AddNode("T", ValueType::kText, 8.0);
  synopsis.AddEdge(root, t, 8.0);
  auto dict = std::make_shared<TermDictionary>();
  TermId a = dict->Intern("alpha");
  TermId b = dict->Intern("beta");
  synopsis.node(t).vsumm = ValueSummary::FromTexts(
      {{a, b}, {a, b}, {a}, {a}, {b}, {b}, {}, {}});  // w[a]=w[b]=0.5
  synopsis.set_term_dictionary(dict);
  XClusterEstimator estimator(synopsis);
  // >= 50% of {alpha, beta} = at least 1 match: 8 * 0.75 = 6.
  EXPECT_NEAR(
      estimator.Estimate(MustParse("/T[ftsimilar(50,alpha,beta)]")), 6.0,
      1e-9);
  // 100%: both terms: 8 * 0.25 = 2.
  EXPECT_NEAR(
      estimator.Estimate(MustParse("/T[ftsimilar(100,alpha,beta)]")), 2.0,
      1e-9);
}

TEST(EstimatorTest, UnknownFtTermIsZero) {
  Fig7 f;
  EXPECT_EQ(f.Estimate("//C[ftcontains(neverseen)]"), 0.0);
}

TEST(EstimatorTest, EmptySynopsis) {
  GraphSynopsis synopsis;
  XClusterEstimator estimator(synopsis);
  EXPECT_EQ(estimator.Estimate(TwigQuery()), 0.0);
}

TEST(EstimatorTest, CycleSafeDescendant) {
  // Recursive schema: parlist -0.5-> parlist, parlist -1-> text. The
  // geometric series 1 + 0.5 + 0.25 + ... converges to 2 within the hop
  // bound.
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId parlist = synopsis.AddNode("parlist", ValueType::kNone, 20.0);
  SynNodeId text = synopsis.AddNode("text", ValueType::kNone, 40.0);
  synopsis.AddEdge(root, parlist, 10.0);
  synopsis.AddEdge(parlist, parlist, 0.5);
  synopsis.AddEdge(parlist, text, 1.0);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  XClusterEstimator estimator(synopsis);
  // //text: sum over depths: 10 * (1 + 0.5 + 0.25 + ...) * 1 = 20.
  EXPECT_NEAR(estimator.Estimate(MustParse("//text")), 20.0, 1e-3);
}

TEST(EstimatorTest, HopLimitBoundsDivergentCycles) {
  // A pathological synopsis whose cycle gain is >= 1 must not hang or
  // produce infinity.
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId loop = synopsis.AddNode("L", ValueType::kNone, 10.0);
  synopsis.AddEdge(root, loop, 1.0);
  synopsis.AddEdge(loop, loop, 1.0);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  EstimateOptions options;
  options.max_descendant_hops = 8;
  XClusterEstimator estimator(synopsis, options);
  double estimate = estimator.Estimate(MustParse("//L"));
  EXPECT_NEAR(estimate, 8.0, 1e-9);  // one unit per hop, capped at 8
}

TEST(EstimatorTest, BranchesMultiply) {
  Fig7 f;
  // est(A) = count(A,B) * count(A,D) per element = 10*5; times 10 A's.
  EXPECT_NEAR(f.Estimate("/A[/B]/D"), 500.0, 1e-9);
}

TEST(EstimatorTest, ExplainReportsPerVariableCardinalities) {
  Fig7 f;
  XClusterEstimator estimator(f.synopsis);
  EstimateExplanation explanation =
      estimator.Explain(MustParse("/A/B/C[range(0,4)]"));
  EXPECT_NEAR(explanation.selectivity, 250.0, 1e-9);
  ASSERT_EQ(explanation.vars.size(), 4u);
  EXPECT_NEAR(explanation.vars[0].expected_bindings, 1.0, 1e-9);   // root
  EXPECT_NEAR(explanation.vars[1].expected_bindings, 10.0, 1e-9);  // A
  EXPECT_NEAR(explanation.vars[2].expected_bindings, 100.0, 1e-9); // B
  // C: 500 reached, sigma 0.5.
  EXPECT_NEAR(explanation.vars[3].expected_bindings, 250.0, 1e-9);
  EXPECT_NEAR(explanation.vars[3].predicate_selectivity, 0.5, 1e-9);
  EXPECT_EQ(explanation.vars[3].step, "/C");
  EXPECT_NE(explanation.ToString().find("q3 /C"), std::string::npos);
}

TEST(EstimatorTest, ExplainBranchesDoNotMultiplySiblings) {
  Fig7 f;
  XClusterEstimator estimator(f.synopsis);
  EstimateExplanation explanation =
      estimator.Explain(MustParse("/A[/B]/D"));
  // Per-variable counts: B = 100 reached, D = 50 reached — independent of
  // the tuple count (500).
  ASSERT_EQ(explanation.vars.size(), 4u);
  EXPECT_NEAR(explanation.selectivity, 500.0, 1e-9);
  EXPECT_NEAR(explanation.vars[2].expected_bindings, 100.0, 1e-9);
  EXPECT_NEAR(explanation.vars[3].expected_bindings, 50.0, 1e-9);
}

TEST(EstimatorTest, SelfLoopChildStep) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId p = synopsis.AddNode("p", ValueType::kNone, 30.0);
  synopsis.AddEdge(root, p, 10.0);
  synopsis.AddEdge(p, p, 2.0);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  XClusterEstimator estimator(synopsis);
  EXPECT_NEAR(estimator.Estimate(MustParse("/p/p")), 20.0, 1e-9);
}

}  // namespace
}  // namespace xcluster
