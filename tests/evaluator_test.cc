#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include <memory>

#include "query/parser.h"

namespace xcluster {
namespace {

/// The bibliographic example document of Figure 1 (paper), slightly
/// simplified: authors with papers/books carrying years, titles, keywords,
/// abstracts, forewords.
struct Fixture {
  XmlDocument doc;
  std::shared_ptr<TermDictionary> dict = std::make_shared<TermDictionary>();

  Fixture() {
    NodeId root = doc.CreateRoot("dblp");
    // Author 1 with two papers.
    NodeId a1 = doc.AddChild(root, "author");
    doc.SetString(doc.AddChild(a1, "name"), "ada writer");
    NodeId p1 = doc.AddChild(a1, "paper");
    doc.SetNumeric(doc.AddChild(p1, "year"), 2000);
    doc.SetString(doc.AddChild(p1, "title"), "Counting Twig Matches");
    SetText(doc.AddChild(p1, "keywords"), "xml summary");
    NodeId p2 = doc.AddChild(a1, "paper");
    doc.SetNumeric(doc.AddChild(p2, "year"), 2002);
    doc.SetString(doc.AddChild(p2, "title"), "Holistic Joins");
    SetText(doc.AddChild(p2, "abstract"), "xml employs a tree model");
    // Author 2 with a paper and a book.
    NodeId a2 = doc.AddChild(root, "author");
    doc.SetString(doc.AddChild(a2, "name"), "bob scholar");
    NodeId p3 = doc.AddChild(a2, "paper");
    doc.SetNumeric(doc.AddChild(p3, "year"), 2002);
    doc.SetString(doc.AddChild(p3, "title"), "Database Synopses");
    SetText(doc.AddChild(p3, "abstract"), "synopsis models for xml data");
    NodeId b1 = doc.AddChild(a2, "book");
    doc.SetNumeric(doc.AddChild(b1, "year"), 1999);
    doc.SetString(doc.AddChild(b1, "title"), "Database Systems");
    SetText(doc.AddChild(b1, "foreword"), "database systems have evolved");
  }

  void SetText(NodeId node, std::string_view text) {
    doc.SetText(node, text);
    dict->InternText(text);
  }

  double Eval(std::string_view twig) {
    Result<TwigQuery> query = ParseTwig(twig);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    query.value().ResolveTerms(*dict);
    ExactEvaluator evaluator(doc, dict.get());
    return evaluator.Selectivity(query.value());
  }
};

TEST(EvaluatorTest, LinearChildPath) {
  Fixture f;
  EXPECT_EQ(f.Eval("/author"), 2.0);
  EXPECT_EQ(f.Eval("/author/paper"), 3.0);
  EXPECT_EQ(f.Eval("/author/paper/year"), 3.0);
}

TEST(EvaluatorTest, DescendantAxis) {
  Fixture f;
  EXPECT_EQ(f.Eval("//paper"), 3.0);
  EXPECT_EQ(f.Eval("//year"), 4.0);  // 3 papers + 1 book
  EXPECT_EQ(f.Eval("//author//year"), 4.0);
}

TEST(EvaluatorTest, WildcardStep) {
  Fixture f;
  // Children of author: name, paper, paper / name, paper, book.
  EXPECT_EQ(f.Eval("/author/*"), 6.0);
  EXPECT_EQ(f.Eval("/author/*/title"), 4.0);
}

TEST(EvaluatorTest, BindingTuplesMultiplyAcrossBranches) {
  Fixture f;
  // Binding tuples for //author[/paper]/paper: author1 contributes 2*2
  // (both query vars bind to each paper), author2 contributes 1.
  EXPECT_EQ(f.Eval("//author[/paper]/paper"), 5.0);
}

TEST(EvaluatorTest, RangePredicate) {
  Fixture f;
  EXPECT_EQ(f.Eval("//paper/year[range(2001,2005)]"), 2.0);
  EXPECT_EQ(f.Eval("//paper/year[range(1990,1999)]"), 0.0);
  EXPECT_EQ(f.Eval("//year[range(1999,2000)]"), 2.0);
}

TEST(EvaluatorTest, RangeBoundsInclusive) {
  Fixture f;
  EXPECT_EQ(f.Eval("//year[range(2000,2000)]"), 1.0);
}

TEST(EvaluatorTest, ContainsPredicate) {
  Fixture f;
  EXPECT_EQ(f.Eval("//title[contains(Database)]"), 2.0);
  EXPECT_EQ(f.Eval("//title[contains(Twig)]"), 1.0);
  EXPECT_EQ(f.Eval("//title[contains(zzz)]"), 0.0);
}

TEST(EvaluatorTest, ContainsIsCaseSensitive) {
  Fixture f;
  EXPECT_EQ(f.Eval("//title[contains(database)]"), 0.0);
}

TEST(EvaluatorTest, FtContainsPredicate) {
  Fixture f;
  EXPECT_EQ(f.Eval("//abstract[ftcontains(xml)]"), 2.0);
  EXPECT_EQ(f.Eval("//abstract[ftcontains(xml,tree)]"), 1.0);
  EXPECT_EQ(f.Eval("//abstract[ftcontains(xml,database)]"), 0.0);
}

TEST(EvaluatorTest, FtAnyDisjunction) {
  Fixture f;
  // "tree" in one abstract, "data" in the other -> union = 2.
  EXPECT_EQ(f.Eval("//abstract[ftany(tree,data)]"), 2.0);
  EXPECT_EQ(f.Eval("//abstract[ftany(tree)]"), 1.0);
  // Unknown terms drop out of the disjunction without killing it.
  EXPECT_EQ(f.Eval("//abstract[ftany(xml,unknownterm)]"), 2.0);
  EXPECT_EQ(f.Eval("//abstract[ftany(unknownterm)]"), 0.0);
}

TEST(EvaluatorTest, FtSimilarThresholds) {
  Fixture f;
  // p3 abstract: {synopsis, models, for, xml, data}. Query terms
  // {synopsis, xml, tree}: p3 matches 2/3 (67%), p2 matches 2/3
  // ({xml, tree} of {synopsis, xml, tree} -> 2/3).
  EXPECT_EQ(f.Eval("//abstract[ftsimilar(60,synopsis,xml,tree)]"), 2.0);
  EXPECT_EQ(f.Eval("//abstract[ftsimilar(100,synopsis,xml,tree)]"), 0.0);
  // At 30% one match suffices: both abstracts qualify.
  EXPECT_EQ(f.Eval("//abstract[ftsimilar(30,synopsis,xml,tree)]"), 2.0);
}

TEST(EvaluatorTest, FtSimilarUnknownTermsLowerTheCeiling) {
  Fixture f;
  // Two of three terms unknown: at most 1/3 can match, so 60% required
  // matches (2 of 3) is unsatisfiable.
  EXPECT_EQ(f.Eval("//abstract[ftsimilar(60,xml,qq1,qq2)]"), 0.0);
  EXPECT_EQ(f.Eval("//abstract[ftsimilar(30,xml,qq1,qq2)]"), 2.0);
}

TEST(EvaluatorTest, FtContainsUnknownTermIsZero) {
  Fixture f;
  EXPECT_EQ(f.Eval("//abstract[ftcontains(neverseen)]"), 0.0);
}

TEST(EvaluatorTest, PredicateOnWrongTypeIsZero) {
  Fixture f;
  EXPECT_EQ(f.Eval("//title[range(1,10)]"), 0.0);
  EXPECT_EQ(f.Eval("//year[contains(20)]"), 0.0);
}

TEST(EvaluatorTest, PaperRunningExample) {
  Fixture f;
  // //paper[year > 2000][abstract ftcontains synopsis, xml]/title —
  // only author2's 2002 paper qualifies.
  EXPECT_EQ(f.Eval("//paper[/year[range(2001,9999)]]"
                   "[/abstract[ftcontains(synopsis,xml)]]/title"),
            1.0);
}

TEST(EvaluatorTest, CombinedStructuralAndValueBranches) {
  Fixture f;
  EXPECT_EQ(f.Eval("//author[/book]/paper/year[range(2002,2002)]"), 1.0);
}

TEST(EvaluatorTest, NonexistentLabel) {
  Fixture f;
  EXPECT_EQ(f.Eval("//inproceedings"), 0.0);
}

TEST(EvaluatorTest, EmptyDocument) {
  XmlDocument doc;
  ExactEvaluator evaluator(doc, nullptr);
  TwigQuery query;
  EXPECT_EQ(evaluator.Selectivity(query), 0.0);
}

TEST(EvaluatorTest, EnumerateBindingsMatchesSelectivity) {
  Fixture f;
  ExactEvaluator evaluator(f.doc, f.dict.get());
  const char* queries[] = {
      "/author/paper",
      "//author[/paper]/paper",
      "//paper[/year[range(2001,9999)]]/title",
      "//title[contains(Database)]",
  };
  for (const char* text : queries) {
    Result<TwigQuery> query = ParseTwig(text);
    ASSERT_TRUE(query.ok());
    query.value().ResolveTerms(*f.dict);
    auto bindings = evaluator.EnumerateBindings(query.value(), 0);
    EXPECT_EQ(static_cast<double>(bindings.size()),
              evaluator.Selectivity(query.value()))
        << text;
    // Every tuple is fully assigned and structurally consistent.
    for (const auto& tuple : bindings) {
      ASSERT_EQ(tuple.size(), query.value().size());
      for (NodeId element : tuple) EXPECT_NE(element, kNoNode);
    }
  }
}

TEST(EvaluatorTest, EnumerateBindingsRespectsLimit) {
  Fixture f;
  ExactEvaluator evaluator(f.doc, f.dict.get());
  Result<TwigQuery> query = ParseTwig("//author[/paper]/paper");
  ASSERT_TRUE(query.ok());
  auto bindings = evaluator.EnumerateBindings(query.value(), 2);
  EXPECT_EQ(bindings.size(), 2u);
}

TEST(EvaluatorTest, EnumerateBindingsTupleContents) {
  Fixture f;
  ExactEvaluator evaluator(f.doc, f.dict.get());
  Result<TwigQuery> query = ParseTwig("//book/title");
  ASSERT_TRUE(query.ok());
  auto bindings = evaluator.EnumerateBindings(query.value(), 0);
  ASSERT_EQ(bindings.size(), 1u);
  // Var 1 = book, var 2 = title.
  EXPECT_EQ(f.doc.label_name(bindings[0][1]), "book");
  EXPECT_EQ(f.doc.label_name(bindings[0][2]), "title");
  EXPECT_EQ(f.doc.node(bindings[0][2]).text, "Database Systems");
}

TEST(EvaluatorTest, SatisfiesDirectly) {
  Fixture f;
  // Find a year node.
  NodeId year = kNoNode;
  for (NodeId id = 0; id < f.doc.size(); ++id) {
    if (f.doc.label_name(id) == "year" && f.doc.node(id).numeric == 2000) {
      year = id;
    }
  }
  ASSERT_NE(year, kNoNode);
  ExactEvaluator evaluator(f.doc, f.dict.get());
  EXPECT_TRUE(evaluator.Satisfies(year, ValuePredicate::Range(1999, 2001)));
  EXPECT_FALSE(evaluator.Satisfies(year, ValuePredicate::Range(2001, 2005)));
}

}  // namespace
}  // namespace xcluster
