#include "service/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/telemetry/metrics.h"

namespace xcluster {
namespace {

using telemetry::MonotonicNowNs;

TEST(ExecutorTest, InlineModeRunsOnSubmittingThread) {
  Executor executor;  // num_threads = 0
  EXPECT_EQ(executor.num_threads(), 0u);
  const std::thread::id self = std::this_thread::get_id();
  bool ran = false;
  Status status = executor.Submit([&](const Executor::TaskContext& ctx) {
    EXPECT_EQ(std::this_thread::get_id(), self);
    EXPECT_FALSE(ctx.deadline_expired);
    EXPECT_FALSE(ctx.cancelled);
    ran = true;
  });
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(ran);  // inline: completed before Submit returned
}

TEST(ExecutorTest, PooledTasksAllExecute) {
  ExecutorOptions options;
  options.num_threads = 4;
  options.queue_capacity = 1024;
  Executor executor(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        executor.Submit([&](const Executor::TaskContext&) { ++ran; }).ok());
  }
  executor.Shutdown(true);
  EXPECT_EQ(ran.load(), 500);
  const Executor::Stats stats = executor.stats();
  EXPECT_EQ(stats.submitted, 500u);
  EXPECT_EQ(stats.executed, 500u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ExecutorTest, QueueFullReturnsResourceExhausted) {
  ExecutorOptions options;
  options.num_threads = 1;
  options.queue_capacity = 2;
  Executor executor(options);

  // Block the single worker so the queue backs up deterministically.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool worker_busy = false;
  ASSERT_TRUE(executor
                  .Submit([&](const Executor::TaskContext&) {
                    std::unique_lock<std::mutex> lock(mu);
                    worker_busy = true;
                    cv.notify_all();
                    cv.wait(lock, [&] { return release; });
                  })
                  .ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return worker_busy; });
  }

  // Fill the two queue slots, then overflow.
  ASSERT_TRUE(executor.Submit([](const Executor::TaskContext&) {}).ok());
  ASSERT_TRUE(executor.Submit([](const Executor::TaskContext&) {}).ok());
  Status overflow = executor.Submit([](const Executor::TaskContext&) {});
  EXPECT_EQ(overflow.code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(executor.stats().rejected, 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  executor.Shutdown(true);
  // The rejected task never ran; everything accepted did.
  EXPECT_EQ(executor.stats().executed, 3u);
}

TEST(ExecutorTest, ExpiredDeadlineIsReportedNotDropped) {
  ExecutorOptions options;
  options.num_threads = 1;
  Executor executor(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(executor
                  .Submit([&](const Executor::TaskContext&) {
                    std::unique_lock<std::mutex> lock(mu);
                    cv.wait(lock, [&] { return release; });
                  })
                  .ok());

  // Queued behind the blocker with an already-elapsed deadline.
  std::atomic<bool> expired{false};
  ASSERT_TRUE(executor
                  .Submit(
                      [&](const Executor::TaskContext& ctx) {
                        expired = ctx.deadline_expired;
                      },
                      MonotonicNowNs() - 1)
                  .ok());
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  executor.Shutdown(true);
  EXPECT_TRUE(expired.load());
  EXPECT_EQ(executor.stats().expired, 1u);
}

TEST(ExecutorTest, FutureDeadlineDoesNotExpire) {
  ExecutorOptions options;
  options.num_threads = 2;
  Executor executor(options);
  std::atomic<bool> expired{false};
  ASSERT_TRUE(executor
                  .Submit(
                      [&](const Executor::TaskContext& ctx) {
                        if (ctx.deadline_expired) expired = true;
                      },
                      MonotonicNowNs() + 60'000'000'000ull)
                  .ok());
  executor.Shutdown(true);
  EXPECT_FALSE(expired.load());
}

TEST(ExecutorTest, ShutdownDrainsQueuedTasks) {
  ExecutorOptions options;
  options.num_threads = 2;
  options.queue_capacity = 4096;
  Executor executor(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        executor.Submit([&](const Executor::TaskContext&) { ++ran; }).ok());
  }
  executor.Shutdown(true);  // must not return before every task ran
  EXPECT_EQ(ran.load(), 2000);
  EXPECT_EQ(executor.stats().cancelled, 0u);
}

TEST(ExecutorTest, ShutdownWithoutDrainCancelsButStillInvokes) {
  ExecutorOptions options;
  options.num_threads = 1;
  options.queue_capacity = 4096;
  Executor executor(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool worker_busy = false;
  ASSERT_TRUE(executor
                  .Submit([&](const Executor::TaskContext&) {
                    std::unique_lock<std::mutex> lock(mu);
                    worker_busy = true;
                    cv.notify_all();
                    cv.wait(lock, [&] { return release; });
                  })
                  .ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return worker_busy; });
  }

  std::atomic<int> invoked{0};
  std::atomic<int> cancelled{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(executor
                    .Submit([&](const Executor::TaskContext& ctx) {
                      ++invoked;
                      if (ctx.cancelled) ++cancelled;
                    })
                    .ok());
  }
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  });
  executor.Shutdown(false);
  releaser.join();
  // Every queued task was invoked exactly once, flagged as cancelled —
  // completion-counting callers never hang across shutdown.
  EXPECT_EQ(invoked.load(), 100);
  EXPECT_EQ(cancelled.load(), 100);
}

TEST(ExecutorTest, SubmitAfterShutdownIsRejected) {
  Executor executor(ExecutorOptions{.num_threads = 1, .queue_capacity = 4});
  executor.Shutdown(true);
  Status status = executor.Submit([](const Executor::TaskContext&) {});
  EXPECT_EQ(status.code(), Status::Code::kUnsupported);

  Executor inline_executor;
  inline_executor.Shutdown(true);
  EXPECT_EQ(inline_executor.Submit([](const Executor::TaskContext&) {}).code(),
            Status::Code::kUnsupported);
}

// Many producers racing many workers over a small queue: accepted +
// rejected must account for every submission, and every accepted task
// must run exactly once. (The concurrency suites run under TSan in CI.)
TEST(ExecutorTest, MpmcStress) {
  ExecutorOptions options;
  options.num_threads = 4;
  options.queue_capacity = 64;
  Executor executor(options);

  constexpr int kProducers = 8;
  constexpr int kPerProducer = 500;
  std::atomic<int> ran{0};
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        Status status =
            executor.Submit([&](const Executor::TaskContext&) { ++ran; });
        if (status.ok()) {
          ++accepted;
        } else {
          EXPECT_EQ(status.code(), Status::Code::kResourceExhausted);
          ++rejected;
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  executor.Shutdown(true);

  EXPECT_EQ(accepted + rejected, kProducers * kPerProducer);
  EXPECT_EQ(ran.load(), accepted.load());
  const Executor::Stats stats = executor.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(accepted.load()));
  EXPECT_EQ(stats.rejected, static_cast<uint64_t>(rejected.load()));
  EXPECT_EQ(stats.executed, static_cast<uint64_t>(accepted.load()));
}

// A reader hammering stats() while producers submit tasks (some with
// already-expired deadlines) must only ever observe consistent snapshots:
// the documented invariants hold in every read, and counters are monotone
// across consecutive reads.
TEST(ExecutorTest, StatsSnapshotsAreConsistentAndMonotone) {
  ExecutorOptions options;
  options.num_threads = 4;
  options.queue_capacity = 64;
  Executor executor(options);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread reader([&] {
    Executor::Stats prev;
    while (!stop.load(std::memory_order_acquire)) {
      const Executor::Stats stats = executor.stats();
      if (stats.executed > stats.submitted) ++violations;
      if (stats.expired > stats.executed) ++violations;
      if (stats.cancelled > stats.executed) ++violations;
      if (stats.submitted < prev.submitted || stats.executed < prev.executed ||
          stats.expired < prev.expired || stats.rejected < prev.rejected ||
          stats.cancelled < prev.cancelled) {
        ++violations;
      }
      prev = stats;
    }
  });

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Every third task carries an elapsed deadline so expired_ moves.
        const uint64_t deadline =
            (i % 3 == 0) ? MonotonicNowNs() - 1 : uint64_t{0};
        (void)executor.Submit([](const Executor::TaskContext&) {}, deadline);
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  executor.Shutdown(true);
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(violations.load(), 0);
  const Executor::Stats stats = executor.stats();
  EXPECT_EQ(stats.executed, stats.submitted);
  EXPECT_GT(stats.expired, 0u);
}

}  // namespace
}  // namespace xcluster
