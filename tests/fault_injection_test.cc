// Fault-injection suite for the binary synopsis format: every summary kind
// is round-tripped through hundreds of seeded fault schedules (truncations,
// bit flips, injected I/O errors) on both the read and write paths. The
// contract under fault: the decoder returns a clean non-OK Status — it never
// crashes, never hangs, and never fabricates a success from corrupt bytes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/io/fault_injection.h"
#include "core/serialize.h"
#include "synopsis/graph.h"

namespace xcluster {
namespace {

enum class SummaryCase { kHistogram, kWavelet, kSample, kPst, kTerms };

const SummaryCase kAllCases[] = {SummaryCase::kHistogram,
                                 SummaryCase::kWavelet, SummaryCase::kSample,
                                 SummaryCase::kPst, SummaryCase::kTerms};

const char* CaseName(SummaryCase c) {
  switch (c) {
    case SummaryCase::kHistogram:
      return "histogram";
    case SummaryCase::kWavelet:
      return "wavelet";
    case SummaryCase::kSample:
      return "sample";
    case SummaryCase::kPst:
      return "pst";
    case SummaryCase::kTerms:
      return "terms";
  }
  return "?";
}

ValueSummary MakeSummary(SummaryCase c) {
  ValueSummary vsumm;
  switch (c) {
    case SummaryCase::kHistogram: {
      vsumm.set_type(ValueType::kNumeric);
      std::vector<HistogramBucket> buckets;
      for (int64_t i = 0; i < 12; ++i) {
        buckets.push_back({i * 10, i * 10 + 9, 3.5 * static_cast<double>(i)});
      }
      *vsumm.mutable_histogram() = Histogram::FromBuckets(std::move(buckets));
      break;
    }
    case SummaryCase::kWavelet: {
      vsumm.set_type(ValueType::kNumeric);
      vsumm.set_numeric_kind(NumericSummaryKind::kWavelet);
      std::vector<WaveletSummary::Coefficient> coeffs;
      for (uint32_t i = 0; i < 10; ++i) {
        coeffs.push_back({i * 3, 1.0 / (1.0 + i)});
      }
      *vsumm.mutable_wavelet() =
          WaveletSummary::FromCoefficients(std::move(coeffs), 0, 4, 32, 96.0);
      break;
    }
    case SummaryCase::kSample: {
      vsumm.set_type(ValueType::kNumeric);
      vsumm.set_numeric_kind(NumericSummaryKind::kSample);
      std::vector<int64_t> values;
      for (int64_t i = 0; i < 20; ++i) values.push_back(i * i);
      *vsumm.mutable_sample() =
          SampleSummary::FromParts(std::move(values), 200.0);
      break;
    }
    case SummaryCase::kPst: {
      vsumm.set_type(ValueType::kString);
      std::vector<Pst::DumpNode> dump = {
          {-1, 'a', 10.0}, {0, 'b', 6.0}, {0, 'c', 4.0},
          {1, 'd', 3.0},   {-1, 'x', 2.0},
      };
      *vsumm.mutable_pst() = Pst::FromDump(dump, 12.0, 3);
      break;
    }
    case SummaryCase::kTerms: {
      vsumm.set_type(ValueType::kText);
      std::vector<std::pair<TermId, double>> indexed = {
          {0, 0.8}, {1, 0.5}, {2, 0.25}};
      std::vector<TermId> members = {3, 4, 5, 6};
      *vsumm.mutable_terms() = TermHistogram::FromParts(
          std::move(indexed), std::move(members), 0.1);
      break;
    }
  }
  return vsumm;
}

/// A small synopsis whose value-laden node carries the given summary kind.
GraphSynopsis MakeSynopsis(SummaryCase c) {
  GraphSynopsis synopsis;
  ValueType type = ValueType::kNumeric;
  if (c == SummaryCase::kPst) type = ValueType::kString;
  if (c == SummaryCase::kTerms) type = ValueType::kText;
  SynNodeId root = synopsis.AddNode("root", ValueType::kNone, 1.0);
  SynNodeId mid = synopsis.AddNode("item", ValueType::kNone, 40.0);
  SynNodeId leaf = synopsis.AddNode("value", type, 40.0);
  synopsis.node(leaf).vsumm = MakeSummary(c);
  synopsis.AddEdge(root, mid, 40.0);
  synopsis.AddEdge(mid, leaf, 1.0);
  synopsis.set_root(root);
  return synopsis;
}

class FaultScheduleTest : public ::testing::TestWithParam<SummaryCase> {};

// Read-path schedules: the encoded bytes pass through a FaultInjectingSource
// before decoding. >= 200 seeds per summary kind (1000+ schedules over the
// suite); every decode must terminate with a clean Status.
TEST_P(FaultScheduleTest, DecodeSurvivesSeededReadFaults) {
  const SummaryCase c = GetParam();
  const std::string clean = EncodeSynopsisToString(MakeSynopsis(c));
  ASSERT_FALSE(clean.empty());

  size_t injected = 0;
  size_t rejected = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    FaultOptions options;
    options.seed = seed;
    FaultInjectingSource source(clean, options);
    std::string corrupted(source.Remaining(), '\0');
    Status read = source.Read(corrupted.data(), corrupted.size());

    Result<GraphSynopsis> decoded =
        read.ok() ? DecodeSynopsisBytes(corrupted)
                  : Result<GraphSynopsis>(read);
    if (source.faults_armed() == 0) {
      ASSERT_TRUE(decoded.ok())
          << CaseName(c) << " seed " << seed << " (no faults): "
          << decoded.status().ToString();
    } else {
      ++injected;
      if (!decoded.ok()) ++rejected;
      if (decoded.ok()) {
        // A fault was armed but did not corrupt what the decoder consumed
        // (e.g. a flip in bytes truncated away, or a read error placed past
        // the end). The decode must still be self-consistent.
        EXPECT_EQ(decoded.value().NodeCount(), 3u)
            << CaseName(c) << " seed " << seed;
      }
    }
  }
  // The schedule mix must actually exercise the fault paths.
  EXPECT_GT(injected, 50u) << CaseName(c);
  EXPECT_GT(rejected, 40u) << CaseName(c);
}

// Write-path schedules: the encoder's output passes through a
// FaultInjectingSink (torn writes, in-flight flips, injected write errors).
// Whatever lands in the inner buffer must never crash the decoder.
TEST_P(FaultScheduleTest, DecodeSurvivesSeededWriteFaults) {
  const SummaryCase c = GetParam();
  const GraphSynopsis synopsis = MakeSynopsis(c);
  const size_t encoded_size = EncodeSynopsisToString(synopsis).size();

  size_t write_failed = 0;
  size_t decode_rejected = 0;
  for (uint64_t seed = 1000; seed < 1100; ++seed) {
    FaultOptions options;
    options.seed = seed;
    options.sink_window_bytes = encoded_size;
    std::string stored;
    StringSink inner(&stored);
    FaultInjectingSink sink(&inner, options);
    Status wrote = EncodeSynopsis(synopsis, &sink);
    if (!wrote.ok()) {
      ++write_failed;
      EXPECT_EQ(wrote.code(), Status::Code::kIOError)
          << CaseName(c) << " seed " << seed;
    }

    Result<GraphSynopsis> decoded = DecodeSynopsisBytes(stored);
    if (sink.faults_armed() == 0) {
      ASSERT_TRUE(wrote.ok());
      ASSERT_TRUE(decoded.ok())
          << CaseName(c) << " seed " << seed << ": "
          << decoded.status().ToString();
    } else if (!decoded.ok()) {
      ++decode_rejected;
      EXPECT_NE(decoded.status().code(), Status::Code::kOk);
    }
  }
  EXPECT_GT(write_failed + decode_rejected, 20u) << CaseName(c);
}

// Exhaustive truncation: every prefix of the encoded file either fails
// cleanly or (full length) decodes. No prefix may crash or hang.
TEST_P(FaultScheduleTest, EveryTruncationFailsCleanly) {
  const SummaryCase c = GetParam();
  const std::string clean = EncodeSynopsisToString(MakeSynopsis(c));
  for (size_t len = 0; len < clean.size(); ++len) {
    Result<GraphSynopsis> decoded =
        DecodeSynopsisBytes(std::string_view(clean).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << CaseName(c) << " prefix " << len;
  }
  EXPECT_TRUE(DecodeSynopsisBytes(clean).ok());
}

INSTANTIATE_TEST_SUITE_P(AllSummaryKinds, FaultScheduleTest,
                         ::testing::ValuesIn(kAllCases),
                         [](const ::testing::TestParamInfo<SummaryCase>& info) {
                           return CaseName(info.param);
                         });

}  // namespace
}  // namespace xcluster
