// Bit-identity tests for the flat estimation path: for every query,
// FlatEstimator::Estimate over the compiled plan must return the *same
// double* (EXPECT_EQ, not EXPECT_NEAR) as XClusterEstimator::Estimate over
// the source synopsis. Exercised on hand-built fixtures, on merged
// (budget-built) synopses with dead arena nodes, and across the fig8-style
// generated workload suites for both XMark and IMDB.
#include "estimate/flat_estimator.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "build/builder.h"
#include "data/imdb.h"
#include "data/xmark.h"
#include "estimate/compiled_twig.h"
#include "estimate/estimator.h"
#include "estimate/flat_synopsis.h"
#include "query/parser.h"
#include "synopsis/graph.h"
#include "synopsis/reference.h"
#include "workload/generator.h"

namespace xcluster {
namespace {

TwigQuery MustParse(std::string_view input) {
  Result<TwigQuery> result = ParseTwig(input);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Asserts flat == legacy, bit for bit, for one query.
void ExpectIdentical(const GraphSynopsis& synopsis,
                     const std::string& query) {
  XClusterEstimator legacy(synopsis);
  FlatSynopsis flat(synopsis);
  FlatEstimator estimator(flat);
  const TwigQuery twig = MustParse(query);
  const CompiledTwig plan = CompiledTwig::Compile(twig, flat);
  EXPECT_EQ(estimator.Estimate(plan), legacy.Estimate(twig)) << query;
}

GraphSynopsis MakeFig7() {
  GraphSynopsis synopsis;
  SynNodeId r = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("A", ValueType::kNone, 10.0);
  SynNodeId b = synopsis.AddNode("B", ValueType::kNone, 100.0);
  SynNodeId c = synopsis.AddNode("C", ValueType::kNumeric, 500.0);
  SynNodeId d = synopsis.AddNode("D", ValueType::kNone, 50.0);
  SynNodeId e = synopsis.AddNode("E", ValueType::kNone, 100.0);
  synopsis.AddEdge(r, a, 10.0);
  synopsis.AddEdge(a, b, 10.0);
  synopsis.AddEdge(b, c, 5.0);
  synopsis.AddEdge(a, d, 5.0);
  synopsis.AddEdge(d, e, 2.0);
  std::vector<int64_t> values;
  for (int64_t v = 0; v < 10; ++v) values.push_back(v);
  synopsis.node(c).vsumm = ValueSummary::FromNumeric(std::move(values), 16);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  return synopsis;
}

TEST(FlatSynopsisTest, PreservesNodesEdgesAndArenaOrder) {
  GraphSynopsis synopsis = MakeFig7();
  FlatSynopsis flat(synopsis);
  EXPECT_EQ(flat.num_nodes(), 6u);
  EXPECT_EQ(flat.num_edges(), 5u);
  EXPECT_EQ(flat.root(), flat.flat_of(synopsis.root()));
  // Alive nodes are numbered in arena order.
  for (FlatNodeId f = 0; f + 1 < flat.num_nodes(); ++f) {
    EXPECT_LT(flat.syn_of(f), flat.syn_of(f + 1));
  }
  // Counts match, and value summaries are owned copies of the arena
  // node's (same type/kind, never a pointer into the source graph).
  for (FlatNodeId f = 0; f < flat.num_nodes(); ++f) {
    const SynNode& node = synopsis.node(flat.syn_of(f));
    EXPECT_EQ(flat.count(f), node.count);
    EXPECT_EQ(flat.label(f), node.label);
    if (node.vsumm.empty()) {
      EXPECT_EQ(flat.vsumm(f), nullptr);
    } else {
      ASSERT_NE(flat.vsumm(f), nullptr);
      EXPECT_NE(flat.vsumm(f), &node.vsumm);
      EXPECT_EQ(flat.vsumm(f)->type(), node.vsumm.type());
    }
  }
  EXPECT_FALSE(flat.mapped());
  EXPECT_GT(flat.MemoryBytes(), 0u);
}

TEST(FlatSynopsisTest, SurvivesSourceGraphDestruction) {
  // Regression for the old lifetime hazard: value-summary pointers and the
  // label pool used to reference the source GraphSynopsis. The compiled
  // form is now self-contained, so estimating after the source graph is
  // destroyed must work — and stay bit-identical to estimating before.
  auto synopsis = std::make_unique<GraphSynopsis>(MakeFig7());
  XClusterEstimator legacy(*synopsis);
  const TwigQuery twig = MustParse("//A[/B/C[range(0,4)]]//E");
  const double expected = legacy.Estimate(twig);

  FlatSynopsis flat(*synopsis);
  const CompiledTwig plan = CompiledTwig::Compile(twig, flat);
  synopsis.reset();  // the flat view must not reference the graph

  FlatEstimator estimator(flat);
  EXPECT_EQ(estimator.Estimate(plan), expected);
  EXPECT_NE(flat.LookupLabel("A"), kInvalidSymbol);
  size_t begin = 0, end = 0;
  flat.LabelRun(flat.root(), flat.LookupLabel("A"), &begin, &end);
  EXPECT_EQ(end - begin, 1u);
}

TEST(FlatSynopsisTest, LabelRunFindsExactlyTheLabeledChildren)
{
  GraphSynopsis synopsis = MakeFig7();
  FlatSynopsis flat(synopsis);
  const FlatNodeId a = flat.flat_of(1);  // node "A": children B and D
  size_t begin = 0, end = 0;
  flat.LabelRun(a, flat.LookupLabel("B"), &begin, &end);
  ASSERT_EQ(end - begin, 1u);
  EXPECT_EQ(flat.label(flat.sorted_edge_target(begin)),
            flat.LookupLabel("B"));
  flat.LabelRun(a, flat.LookupLabel("E"), &begin, &end);
  EXPECT_EQ(begin, end);  // E is not a child of A
  EXPECT_EQ(flat.LookupLabel("nosuchtag"), kInvalidSymbol);
}

TEST(FlatEstimatorTest, Fig7QueriesBitIdentical) {
  GraphSynopsis synopsis = MakeFig7();
  for (const char* query :
       {"//A[/B/C[range(0,0)]]//E", "/A", "/A/B", "/A/B/C", "//C", "//E",
        "/A/*", "//*", "/A/B/C[range(0,4)]", "/A[/B]/D", "/Z", "//A/Q",
        "/A/B[range(0,100)]", "/A/B/C[contains(x)]"}) {
    ExpectIdentical(synopsis, query);
  }
}

TEST(FlatEstimatorTest, CyclicSynopsisBitIdentical) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId parlist = synopsis.AddNode("parlist", ValueType::kNone, 20.0);
  SynNodeId text = synopsis.AddNode("text", ValueType::kNone, 40.0);
  synopsis.AddEdge(root, parlist, 10.0);
  synopsis.AddEdge(parlist, parlist, 0.5);
  synopsis.AddEdge(parlist, text, 1.0);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  for (const char* query : {"//text", "//parlist", "//parlist//text",
                            "/parlist/parlist", "//*"}) {
    ExpectIdentical(synopsis, query);
  }
}

TEST(FlatEstimatorTest, EmptySynopsisAndEmptyPlan) {
  GraphSynopsis synopsis;
  FlatSynopsis flat(synopsis);
  EXPECT_EQ(flat.num_nodes(), 0u);
  EXPECT_EQ(flat.root(), kNoFlatNode);
  FlatEstimator estimator(flat);
  EXPECT_EQ(estimator.Estimate(CompiledTwig()), 0.0);
}

/// Asserts the legacy and flat EXPLAIN breakdowns agree exactly — doubles
/// with EXPECT_EQ, not EXPECT_NEAR. Legacy Explain walks per-variable
/// masses in sorted node order precisely so this holds.
void ExpectExplainIdentical(const GraphSynopsis& synopsis,
                            const std::string& query) {
  XClusterEstimator legacy(synopsis);
  FlatSynopsis flat(synopsis);
  FlatEstimator estimator(flat);
  const TwigQuery twig = MustParse(query);
  const EstimateExplanation from_legacy = legacy.Explain(twig);
  const EstimateExplanation from_flat =
      estimator.Explain(CompiledTwig::Compile(twig, flat));
  EXPECT_EQ(from_flat.selectivity, from_legacy.selectivity) << query;
  ASSERT_EQ(from_flat.vars.size(), from_legacy.vars.size()) << query;
  for (size_t v = 0; v < from_flat.vars.size(); ++v) {
    EXPECT_EQ(from_flat.vars[v].expected_bindings,
              from_legacy.vars[v].expected_bindings)
        << query << " var " << v;
    EXPECT_EQ(from_flat.vars[v].predicate_selectivity,
              from_legacy.vars[v].predicate_selectivity)
        << query << " var " << v;
    EXPECT_EQ(from_flat.vars[v].step, from_legacy.vars[v].step);
  }
  EXPECT_EQ(from_flat.ToString(), from_legacy.ToString()) << query;
}

TEST(FlatEstimatorTest, ExplainBitIdenticalToLegacy) {
  GraphSynopsis fig7 = MakeFig7();
  for (const char* query :
       {"//A[/B/C[range(0,0)]]//E", "/A/B/C[range(0,4)]", "//C", "/A/*",
        "//*", "/A[/B]/D", "/Z"}) {
    ExpectExplainIdentical(fig7, query);
  }

  GraphSynopsis cyclic;
  SynNodeId root = cyclic.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId parlist = cyclic.AddNode("parlist", ValueType::kNone, 20.0);
  SynNodeId text = cyclic.AddNode("text", ValueType::kNone, 40.0);
  cyclic.AddEdge(root, parlist, 10.0);
  cyclic.AddEdge(parlist, parlist, 0.5);
  cyclic.AddEdge(parlist, text, 1.0);
  cyclic.set_term_dictionary(std::make_shared<TermDictionary>());
  for (const char* query :
       {"//text", "//parlist//text", "/parlist/parlist", "//*"}) {
    ExpectExplainIdentical(cyclic, query);
  }
}

TEST(FlatEstimatorTest, ExplainSelectivityMatchesEstimate) {
  GraphSynopsis synopsis = MakeFig7();
  FlatSynopsis flat(synopsis);
  FlatEstimator estimator(flat);
  XClusterEstimator legacy(synopsis);
  const TwigQuery twig = MustParse("/A/B/C[range(0,4)]");
  const CompiledTwig plan = CompiledTwig::Compile(twig, flat);
  EstimateExplanation explanation = estimator.Explain(plan);
  EXPECT_EQ(explanation.selectivity, legacy.Estimate(twig));
  ASSERT_EQ(explanation.vars.size(), 4u);
  EXPECT_NEAR(explanation.vars[3].expected_bindings, 250.0, 1e-9);
  EXPECT_EQ(explanation.vars[3].step, "/C");
}

/// Full pipeline comparison on a generated data set: reference synopsis
/// plus a budget-built (merged — i.e. containing dead arena nodes)
/// synopsis, across a generated fig8-style workload.
void RunWorkloadSuite(const GeneratedDataset& dataset, size_t num_queries) {
  ReferenceOptions ref_options;
  ref_options.value_paths = dataset.value_paths;
  GraphSynopsis reference = BuildReferenceSynopsis(dataset.doc, ref_options);
  WorkloadOptions wl_options;
  wl_options.num_queries = num_queries;
  Workload workload = GenerateWorkload(dataset.doc, reference, wl_options);
  ASSERT_GT(workload.queries.size(), 0u);

  BuildOptions build_options;
  build_options.structural_budget = 4 * 1024;
  build_options.value_budget = 16 * 1024;
  GraphSynopsis merged = XClusterBuild(reference, build_options, nullptr);

  for (const GraphSynopsis* synopsis : {&reference, &merged}) {
    XClusterEstimator legacy(*synopsis);
    FlatSynopsis flat(*synopsis);
    FlatEstimator estimator(flat);
    for (const WorkloadQuery& query : workload.queries) {
      const CompiledTwig plan = CompiledTwig::Compile(query.query, flat);
      EXPECT_EQ(estimator.Estimate(plan), legacy.Estimate(query.query));
      // EXPLAIN breakdowns must agree exactly too (legacy walks nodes in
      // sorted order specifically to make this comparison exact).
      const EstimateExplanation flat_explain = estimator.Explain(plan);
      const EstimateExplanation legacy_explain = legacy.Explain(query.query);
      EXPECT_EQ(flat_explain.selectivity, legacy_explain.selectivity);
      EXPECT_EQ(flat_explain.ToString(), legacy_explain.ToString());
    }
  }
}

TEST(FlatEstimatorTest, XMarkWorkloadSuiteBitIdentical) {
  XMarkOptions options;
  options.scale = 0.05;
  RunWorkloadSuite(GenerateXMark(options), 150);
}

TEST(FlatEstimatorTest, ImdbWorkloadSuiteBitIdentical) {
  ImdbOptions options;
  options.scale = 0.05;
  RunWorkloadSuite(GenerateImdb(options), 150);
}

TEST(FlatEstimatorTest, BoundedCacheDoesNotChangeEstimates) {
  GraphSynopsis synopsis = MakeFig7();
  FlatSynopsis flat(synopsis);
  EstimateOptions tiny;
  tiny.reach_cache_capacity = 1;
  tiny.reach_cache_shards = 1;
  FlatEstimator thrashing(flat, tiny);
  FlatEstimator roomy(flat);
  for (const char* query : {"//C", "//E", "//C", "//E", "//*"}) {
    const CompiledTwig plan = CompiledTwig::Compile(MustParse(query), flat);
    EXPECT_EQ(thrashing.Estimate(plan), roomy.Estimate(plan)) << query;
  }
  EXPECT_LE(thrashing.reach_cache().size(), 1u);
}

}  // namespace
}  // namespace xcluster
