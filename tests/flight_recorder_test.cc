// FlightRecorder: the bounded ring of per-batch completion records, its
// JSON/text dumps, and the EstimationService integration — every
// EstimateBatch leaves a record (including shed and not-found batches)
// and slow batches append to the structured slow-query log.

#include "service/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/telemetry/trace.h"
#include "service/service.h"

namespace xcluster {
namespace {

FlightRecord MakeRecord(uint64_t trace_id, uint64_t wall_ns) {
  FlightRecord record;
  record.trace_id = trace_id;
  record.collection = "books";
  record.lane = Lane::kInteractive;
  record.queries = 4;
  record.ok = 4;
  record.wall_ns = wall_ns;
  record.queue_ns = wall_ns / 10;
  record.service_ns = wall_ns / 2;
  record.bytes = 128;
  return record;
}

TEST(FlightRecorderTest, RetainsNewestUpToCapacity) {
  FlightRecorder recorder(3);
  EXPECT_EQ(recorder.capacity(), 3u);
  for (uint64_t i = 1; i <= 7; ++i) {
    recorder.Record(MakeRecord(i, i * 1000));
  }
  EXPECT_EQ(recorder.total_recorded(), 7u);
  const std::vector<FlightRecord> window = recorder.Snapshot();
  ASSERT_EQ(window.size(), 3u);
  // Oldest → newest within the retained window.
  EXPECT_EQ(window[0].trace_id, 5u);
  EXPECT_EQ(window[1].trace_id, 6u);
  EXPECT_EQ(window[2].trace_id, 7u);
  // A bounded snapshot returns only the newest records.
  const std::vector<FlightRecord> newest = recorder.Snapshot(2);
  ASSERT_EQ(newest.size(), 2u);
  EXPECT_EQ(newest[0].trace_id, 6u);
  EXPECT_EQ(newest[1].trace_id, 7u);
}

TEST(FlightRecorderTest, ToJsonParsesAndCarriesFields) {
  FlightRecorder recorder(8);
  FlightRecord record = MakeRecord(0xbeef, 123456);
  record.status = FlightStatus::kPartialError;
  record.ok = 3;
  recorder.Record(record);

  Result<JsonValue> parsed = ParseJson(recorder.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* records = parsed.value().Find("flight_records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->items().size(), 1u);
  const JsonValue& item = records->items()[0];
  EXPECT_EQ(item.Find("trace_id")->as_string(), telemetry::TraceIdHex(0xbeef));
  EXPECT_EQ(item.Find("collection")->as_string(), "books");
  EXPECT_EQ(item.Find("lane")->as_string(), "interactive");
  EXPECT_EQ(item.Find("status")->as_string(), "partial_error");
  EXPECT_DOUBLE_EQ(item.Find("queries")->as_number(), 4.0);
  EXPECT_DOUBLE_EQ(item.Find("ok")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(item.Find("wall_ns")->as_number(), 123456.0);
  EXPECT_DOUBLE_EQ(parsed.value().Find("capacity")->as_number(), 8.0);
  EXPECT_DOUBLE_EQ(parsed.value().Find("recorded")->as_number(), 1.0);
}

TEST(FlightRecorderTest, ToTextIsNewestFirst) {
  FlightRecorder recorder(4);
  recorder.Record(MakeRecord(0xaaaa, 1000));
  recorder.Record(MakeRecord(0xbbbb, 2000));
  const std::string text = recorder.ToText();
  const size_t newest = text.find(telemetry::TraceIdHex(0xbbbb));
  const size_t older = text.find(telemetry::TraceIdHex(0xaaaa));
  ASSERT_NE(newest, std::string::npos);
  ASSERT_NE(older, std::string::npos);
  EXPECT_LT(newest, older);
}

TEST(FlightStatusTest, NamesAreStable) {
  EXPECT_STREQ(FlightStatusName(FlightStatus::kOk), "ok");
  EXPECT_STREQ(FlightStatusName(FlightStatus::kPartialError), "partial_error");
  EXPECT_STREQ(FlightStatusName(FlightStatus::kNotFound), "not_found");
  EXPECT_STREQ(FlightStatusName(FlightStatus::kShedQuota), "shed_quota");
  EXPECT_STREQ(FlightStatusName(FlightStatus::kShedDeadline),
               "shed_deadline");
  EXPECT_STREQ(FlightStatusName(FlightStatus::kShedOther), "shed_other");
  EXPECT_STREQ(FlightStatusName(FlightStatus::kShutdown), "shutdown");
}

/// Tiny two-node synopsis so service batches do real work.
XCluster MakeFixture() {
  GraphSynopsis synopsis;
  SynNodeId r = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("A", ValueType::kNone, 10.0);
  synopsis.AddEdge(r, a, 10.0);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  return XCluster(std::move(synopsis));
}

TEST(ServiceFlightTest, EveryBatchLeavesARecord) {
  ServiceOptions options;
  options.executor.num_threads = 0;  // inline: deterministic, no workers
  options.flight_recorder_capacity = 16;
  EstimationService service(options);
  service.store().Install("books", MakeFixture());

  BatchOptions batch_options;
  batch_options.trace.trace_id = 0x77;
  batch_options.trace.sampled = false;
  BatchResult batch =
      service.EstimateBatch("books", {"/A", "bad["}, batch_options);
  ASSERT_EQ(batch.results.size(), 2u);

  // Unknown collections still record (status not_found).
  service.EstimateBatch("missing", {"/A"});

  const std::vector<FlightRecord> records = service.flight().Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, 0x77u);
  EXPECT_EQ(records[0].collection, "books");
  EXPECT_EQ(records[0].queries, 2u);
  EXPECT_EQ(records[0].ok, 1u);
  EXPECT_EQ(records[0].status, FlightStatus::kPartialError);
  EXPECT_GT(records[0].wall_ns, 0u);
  EXPECT_GT(records[0].service_ns, 0u);
  EXPECT_EQ(records[1].collection, "missing");
  EXPECT_EQ(records[1].status, FlightStatus::kNotFound);
}

TEST(ServiceFlightTest, ShedBatchesClassifyAsQuota) {
  ServiceOptions options;
  options.executor.num_threads = 0;
  EstimationService service(options);
  service.store().Install("books", MakeFixture());
  // One query of burst and a negligible refill: the second batch sheds.
  service.admission().SetQuota("books", /*rate_per_sec=*/1e-6, /*burst=*/1.0);

  service.EstimateBatch("books", {"/A"});
  BatchResult shed = service.EstimateBatch("books", {"/A"});
  ASSERT_FALSE(shed.admission.ok());

  const std::vector<FlightRecord> records = service.flight().Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].status, FlightStatus::kOk);
  EXPECT_EQ(records[1].status, FlightStatus::kShedQuota);
  EXPECT_EQ(records[1].ok, 0u);
  EXPECT_GT(records[1].retry_after_ms, 0u);
}

TEST(ServiceFlightTest, SlowQueryLogAppendsJsonLines) {
  const std::string log_path =
      ::testing::TempDir() + "/xcluster_slow_query_test.log";
  std::remove(log_path.c_str());
  {
    ServiceOptions options;
    options.executor.num_threads = 0;
    options.slow_query_ns = 1;  // everything is "slow"
    options.slow_query_log_path = log_path;
    EstimationService service(options);
    service.store().Install("books", MakeFixture());
    BatchOptions batch_options;
    batch_options.trace.trace_id = 0x5105;
    service.EstimateBatch("books", {"/A", "/A"}, batch_options);
    service.EstimateBatch("books", {"/A"});
  }
  std::ifstream in(log_path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    Result<JsonValue> parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_NE(parsed.value().Find("trace_id"), nullptr);
    EXPECT_NE(parsed.value().Find("wall_us"), nullptr);
    EXPECT_EQ(parsed.value().Find("collection")->as_string(), "books");
    if (lines == 0) {
      EXPECT_EQ(parsed.value().Find("trace_id")->as_string(),
                telemetry::TraceIdHex(0x5105));
      EXPECT_DOUBLE_EQ(parsed.value().Find("queries")->as_number(), 2.0);
    }
    ++lines;
  }
  ASSERT_EQ(lines, 2u);
  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace xcluster
