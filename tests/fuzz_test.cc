// Robustness "fuzz-lite" tests: malformed and randomly mutated inputs to
// the XML parser and the twig-query parser must produce Status errors (or
// parse successfully) — never crash, hang, or corrupt state.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "query/parser.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xcluster {
namespace {

class XmlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlFuzzTest, MutatedDocumentsNeverCrash) {
  Rng rng(GetParam());
  const std::string seed_doc =
      "<site><people><person id=\"p0\"><name>ada</name>"
      "<age>30</age></person></people>"
      "<regions><europe><item><name>gold &amp; silver</name>"
      "<desc><![CDATA[5 < 6]]></desc></item></europe></regions></site>";
  XmlParser parser;
  for (int round = 0; round < 300; ++round) {
    std::string mutated = seed_doc;
    size_t mutations = 1 + rng.Uniform(6);
    for (size_t m = 0; m < mutations; ++m) {
      if (mutated.empty()) break;
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(4)) {
        case 0:  // flip to a random byte
          mutated[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:  // delete
          mutated.erase(pos, 1 + rng.Uniform(5));
          break;
        case 2:  // duplicate a slice
          mutated.insert(pos, mutated.substr(pos, rng.Uniform(8)));
          break;
        case 3:  // inject syntax characters
          mutated.insert(pos, "<>&\"[]/");
          break;
      }
    }
    XmlDocument doc;
    Status status = parser.Parse(mutated, &doc);
    if (status.ok()) {
      // A successful parse must produce a usable tree.
      XmlWriter writer;
      EXPECT_GE(doc.size(), 1u);
      writer.ToString(doc);
    }
  }
}

TEST_P(XmlFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam() ^ 0xfeed);
  XmlParser parser;
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    size_t length = rng.Uniform(200);
    for (size_t i = 0; i < length; ++i) {
      garbage += static_cast<char>(rng.Uniform(256));
    }
    XmlDocument doc;
    parser.Parse(garbage, &doc);  // outcome irrelevant; must not crash
  }
}

class QueryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryFuzzTest, MutatedQueriesNeverCrash) {
  Rng rng(GetParam());
  const std::string seed_query =
      "//paper[/year[range(2001,9999)]]"
      "[/abstract[ftcontains(synopsis,xml)]][ftsimilar(50,a,b)]"
      "/title[contains(\"Tree Models\")]";
  for (int round = 0; round < 500; ++round) {
    std::string mutated = seed_query;
    size_t mutations = 1 + rng.Uniform(5);
    for (size_t m = 0; m < mutations; ++m) {
      if (mutated.empty()) break;
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.Uniform(4));
          break;
        case 2:
          mutated.insert(pos, std::string(1, "[]()/,\"*"[rng.Uniform(8)]));
          break;
      }
    }
    Result<TwigQuery> result = ParseTwig(mutated);
    if (result.ok()) {
      // Parsed queries must render and re-parse.
      EXPECT_TRUE(ParseTwig(result.value().ToString()).ok())
          << mutated << " -> " << result.value().ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzzTest, ::testing::Values(1, 2, 3));
INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzzTest, ::testing::Values(4, 5, 6));

}  // namespace
}  // namespace xcluster
