#include "synopsis/graph.h"

#include <gtest/gtest.h>

#include "synopsis/size_model.h"

namespace xcluster {
namespace {

/// Builds the structure of Figure 3-style synopses for merge tests:
/// root R -> u (count cu), root R -> v (count cv), u -> c, v -> c.
struct Diamond {
  GraphSynopsis synopsis;
  SynNodeId root;
  SynNodeId u;
  SynNodeId v;
  SynNodeId c;
};

Diamond MakeDiamond(double cu, double cv, double uc, double vc) {
  Diamond d;
  d.root = d.synopsis.AddNode("R", ValueType::kNone, 1.0);
  d.u = d.synopsis.AddNode("A", ValueType::kNone, cu);
  d.v = d.synopsis.AddNode("A", ValueType::kNone, cv);
  d.c = d.synopsis.AddNode("C", ValueType::kNone, cu * uc + cv * vc);
  d.synopsis.AddEdge(d.root, d.u, cu);
  d.synopsis.AddEdge(d.root, d.v, cv);
  d.synopsis.AddEdge(d.u, d.c, uc);
  d.synopsis.AddEdge(d.v, d.c, vc);
  return d;
}

TEST(GraphTest, AddNodeAndEdgeBasics) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId child = synopsis.AddNode("A", ValueType::kNumeric, 10.0);
  synopsis.AddEdge(root, child, 10.0);
  EXPECT_EQ(synopsis.root(), root);
  EXPECT_EQ(synopsis.NodeCount(), 2u);
  EXPECT_EQ(synopsis.EdgeCount(), 1u);
  EXPECT_EQ(synopsis.EdgeCount(root, child), 10.0);
  EXPECT_EQ(synopsis.EdgeCount(child, root), 0.0);
  ASSERT_EQ(synopsis.node(child).parents.size(), 1u);
  EXPECT_EQ(synopsis.node(child).parents[0], root);
}

TEST(GraphTest, LabelsInterned) {
  GraphSynopsis synopsis;
  SynNodeId a = synopsis.AddNode("item", ValueType::kNone, 1.0);
  SynNodeId b = synopsis.AddNode("item", ValueType::kNone, 2.0);
  EXPECT_EQ(synopsis.node(a).label, synopsis.node(b).label);
}

TEST(GraphTest, StructuralBytesFollowSizeModel) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("A", ValueType::kNone, 5.0);
  synopsis.AddEdge(root, a, 5.0);
  EXPECT_EQ(synopsis.StructuralBytes(),
            2 * SizeModel::kNodeBytes + 1 * SizeModel::kEdgeBytes);
}

TEST(GraphTest, MergeCountsAreSummed) {
  Diamond d = MakeDiamond(4.0, 6.0, 2.0, 3.0);
  SynNodeId w = d.synopsis.MergeNodes(d.u, d.v);
  EXPECT_EQ(d.synopsis.node(w).count, 10.0);
  EXPECT_FALSE(d.synopsis.node(d.u).alive);
  EXPECT_FALSE(d.synopsis.node(d.v).alive);
  EXPECT_EQ(d.synopsis.NodeCount(), 3u);
}

TEST(GraphTest, MergeChildCountIsWeightedAverage) {
  // count(w, c) = (|u| count(u,c) + |v| count(v,c)) / |w|
  //            = (4*2 + 6*3) / 10 = 2.6
  Diamond d = MakeDiamond(4.0, 6.0, 2.0, 3.0);
  SynNodeId w = d.synopsis.MergeNodes(d.u, d.v);
  EXPECT_NEAR(d.synopsis.EdgeCount(w, d.c), 2.6, 1e-12);
}

TEST(GraphTest, MergeParentCountIsSum) {
  // count(p, w) = count(p, u) + count(p, v) = 4 + 6 = 10.
  Diamond d = MakeDiamond(4.0, 6.0, 2.0, 3.0);
  SynNodeId w = d.synopsis.MergeNodes(d.u, d.v);
  EXPECT_NEAR(d.synopsis.EdgeCount(d.root, w), 10.0, 1e-12);
  // The root has exactly one outgoing edge now.
  EXPECT_EQ(d.synopsis.node(d.root).children.size(), 1u);
}

TEST(GraphTest, MergeRewiresParentLinks) {
  Diamond d = MakeDiamond(1.0, 1.0, 1.0, 1.0);
  SynNodeId w = d.synopsis.MergeNodes(d.u, d.v);
  const auto& parents = d.synopsis.node(d.c).parents;
  ASSERT_EQ(parents.size(), 1u);
  EXPECT_EQ(parents[0], w);
  ASSERT_EQ(d.synopsis.node(w).parents.size(), 1u);
  EXPECT_EQ(d.synopsis.node(w).parents[0], d.root);
}

TEST(GraphTest, MergeDisjointChildrenKeepsBoth) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId u = synopsis.AddNode("A", ValueType::kNone, 2.0);
  SynNodeId v = synopsis.AddNode("A", ValueType::kNone, 2.0);
  SynNodeId x = synopsis.AddNode("X", ValueType::kNone, 4.0);
  SynNodeId y = synopsis.AddNode("Y", ValueType::kNone, 6.0);
  synopsis.AddEdge(root, u, 2.0);
  synopsis.AddEdge(root, v, 2.0);
  synopsis.AddEdge(u, x, 2.0);
  synopsis.AddEdge(v, y, 3.0);
  SynNodeId w = synopsis.MergeNodes(u, v);
  // count(w, x) = (2*2 + 2*0)/4 = 1; count(w, y) = (2*0 + 2*3)/4 = 1.5.
  EXPECT_NEAR(synopsis.EdgeCount(w, x), 1.0, 1e-12);
  EXPECT_NEAR(synopsis.EdgeCount(w, y), 1.5, 1e-12);
}

TEST(GraphTest, MergeAdjacentNodesCreatesSelfLoop) {
  // u -> v with matching labels (recursive schema): merging yields a
  // self loop on w.
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId u = synopsis.AddNode("P", ValueType::kNone, 2.0);
  SynNodeId v = synopsis.AddNode("P", ValueType::kNone, 4.0);
  synopsis.AddEdge(root, u, 2.0);
  synopsis.AddEdge(u, v, 2.0);
  SynNodeId w = synopsis.MergeNodes(u, v);
  // count(w, w) = (|u|*count(u,v) + |v|*0) / |w| = (2*2)/6.
  EXPECT_NEAR(synopsis.EdgeCount(w, w), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(synopsis.NodeCount(), 2u);
}

TEST(GraphTest, MergePreservesExpectedChildPopulation) {
  // Invariant: |w| * count(w, c) = |u| count(u,c) + |v| count(v,c) —
  // the expected number of c-children across the merged extent.
  Diamond d = MakeDiamond(3.0, 9.0, 5.0, 1.0);
  double expected = 3.0 * 5.0 + 9.0 * 1.0;
  SynNodeId w = d.synopsis.MergeNodes(d.u, d.v);
  EXPECT_NEAR(d.synopsis.node(w).count * d.synopsis.EdgeCount(w, d.c),
              expected, 1e-9);
}

TEST(GraphTest, MergeFusesValueSummaries) {
  GraphSynopsis synopsis;
  synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId u = synopsis.AddNode("Y", ValueType::kNumeric, 2.0);
  SynNodeId v = synopsis.AddNode("Y", ValueType::kNumeric, 2.0);
  synopsis.AddEdge(0, u, 2.0);
  synopsis.AddEdge(0, v, 2.0);
  synopsis.node(u).vsumm = ValueSummary::FromNumeric({1, 2}, 8);
  synopsis.node(v).vsumm = ValueSummary::FromNumeric({3, 4}, 8);
  SynNodeId w = synopsis.MergeNodes(u, v);
  EXPECT_EQ(synopsis.node(w).vsumm.type(), ValueType::kNumeric);
  EXPECT_NEAR(synopsis.node(w).vsumm.histogram().total(), 4.0, 1e-9);
}

TEST(GraphTest, MergeUpdatesRootWhenRootMerged) {
  GraphSynopsis synopsis;
  SynNodeId r1 = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId r2 = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId w = synopsis.MergeNodes(r1, r2);
  EXPECT_EQ(synopsis.root(), w);
}

TEST(GraphTest, MergeBumpsNeighborVersions) {
  Diamond d = MakeDiamond(1.0, 1.0, 1.0, 1.0);
  uint32_t root_version = d.synopsis.node(d.root).version;
  uint32_t c_version = d.synopsis.node(d.c).version;
  d.synopsis.MergeNodes(d.u, d.v);
  EXPECT_GT(d.synopsis.node(d.root).version, root_version);
  EXPECT_GT(d.synopsis.node(d.c).version, c_version);
}

TEST(GraphTest, ComputeLevels) {
  Diamond d = MakeDiamond(1.0, 1.0, 1.0, 1.0);
  std::vector<uint32_t> levels = d.synopsis.ComputeLevels();
  EXPECT_EQ(levels[d.c], 0u);
  EXPECT_EQ(levels[d.u], 1u);
  EXPECT_EQ(levels[d.v], 1u);
  EXPECT_EQ(levels[d.root], 2u);
}

TEST(GraphTest, ComputeLevelsWithCycle) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("A", ValueType::kNone, 2.0);
  SynNodeId leaf = synopsis.AddNode("L", ValueType::kNone, 2.0);
  synopsis.AddEdge(root, a, 2.0);
  synopsis.AddEdge(a, a, 0.5);  // self loop
  synopsis.AddEdge(a, leaf, 1.0);
  std::vector<uint32_t> levels = synopsis.ComputeLevels();
  EXPECT_EQ(levels[leaf], 0u);
  EXPECT_EQ(levels[a], 1u);
  EXPECT_EQ(levels[root], 2u);
}

TEST(GraphTest, CompactRemapsIds) {
  Diamond d = MakeDiamond(2.0, 2.0, 1.0, 1.0);
  SynNodeId w = d.synopsis.MergeNodes(d.u, d.v);
  double w_to_c = d.synopsis.EdgeCount(w, d.c);
  std::vector<SynNodeId> remap = d.synopsis.Compact();
  EXPECT_EQ(d.synopsis.NodeCount(), 3u);
  EXPECT_EQ(d.synopsis.arena_size(), 3u);
  EXPECT_EQ(remap[d.u], kNoSynNode);
  SynNodeId new_w = remap[w];
  SynNodeId new_c = remap[d.c];
  EXPECT_NEAR(d.synopsis.EdgeCount(new_w, new_c), w_to_c, 1e-12);
  EXPECT_EQ(d.synopsis.root(), remap[d.root]);
}

TEST(GraphTest, AliveNodesSkipsDead) {
  Diamond d = MakeDiamond(1.0, 1.0, 1.0, 1.0);
  d.synopsis.MergeNodes(d.u, d.v);
  std::vector<SynNodeId> alive = d.synopsis.AliveNodes();
  EXPECT_EQ(alive.size(), 3u);
  for (SynNodeId id : alive) {
    EXPECT_TRUE(d.synopsis.node(id).alive);
  }
}

TEST(GraphTest, ValueBytesAndNodeCount) {
  GraphSynopsis synopsis;
  synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId y = synopsis.AddNode("Y", ValueType::kNumeric, 3.0);
  synopsis.node(y).vsumm = ValueSummary::FromNumeric({1, 2, 3}, 8);
  EXPECT_EQ(synopsis.ValueNodeCount(), 1u);
  EXPECT_EQ(synopsis.ValueBytes(), synopsis.node(y).vsumm.SizeBytes());
}

TEST(GraphTest, DebugStringListsAliveNodes) {
  Diamond d = MakeDiamond(1.0, 1.0, 1.0, 1.0);
  std::string dump = d.synopsis.DebugString();
  EXPECT_NE(dump.find("R(1)"), std::string::npos);
  EXPECT_NE(dump.find("A(1)"), std::string::npos);
}

}  // namespace
}  // namespace xcluster
