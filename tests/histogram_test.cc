#include "summaries/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace xcluster {
namespace {

std::vector<int64_t> MakeValues(std::initializer_list<int64_t> values) {
  return std::vector<int64_t>(values);
}

TEST(HistogramTest, EmptyInput) {
  Histogram hist = Histogram::Build({}, 16);
  EXPECT_EQ(hist.total(), 0.0);
  EXPECT_EQ(hist.bucket_count(), 0u);
  EXPECT_EQ(hist.SizeBytes(), 0u);
  EXPECT_EQ(hist.EstimateRange(0, 100), 0.0);
  EXPECT_EQ(hist.Selectivity(0, 100), 0.0);
}

TEST(HistogramTest, DetailedBuildOneBucketPerDistinctValue) {
  Histogram hist = Histogram::Build(MakeValues({5, 1, 5, 3, 1, 1}), 16);
  EXPECT_EQ(hist.bucket_count(), 3u);
  EXPECT_EQ(hist.total(), 6.0);
  EXPECT_DOUBLE_EQ(hist.EstimateRange(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(hist.EstimateRange(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(hist.EstimateRange(5, 5), 2.0);
}

TEST(HistogramTest, EquiDepthWhenOverBudget) {
  std::vector<int64_t> values;
  for (int64_t v = 0; v < 100; ++v) values.push_back(v);
  Histogram hist = Histogram::Build(std::move(values), 10);
  EXPECT_EQ(hist.bucket_count(), 10u);
  EXPECT_DOUBLE_EQ(hist.total(), 100.0);
  // Roughly equal mass per bucket.
  for (const HistogramBucket& bucket : hist.buckets()) {
    EXPECT_NEAR(bucket.count, 10.0, 1.0);
  }
}

TEST(HistogramTest, EquiDepthKeepsDuplicatesTogether) {
  std::vector<int64_t> values(50, 7);  // heavy duplicate
  for (int64_t v = 0; v < 50; ++v) values.push_back(100 + v);
  Histogram hist = Histogram::Build(std::move(values), 5);
  // The value 7 must land in exactly one bucket.
  double direct = hist.EstimateRange(7, 7);
  EXPECT_GE(direct, 49.0);
}

TEST(HistogramTest, EstimateFullDomainIsTotal) {
  Histogram hist = Histogram::Build(MakeValues({2, 4, 6, 8}), 2);
  EXPECT_NEAR(hist.EstimateRange(hist.domain_lo(), hist.domain_hi()),
              hist.total(), 1e-9);
}

TEST(HistogramTest, EstimateOutsideDomainIsZero) {
  Histogram hist = Histogram::Build(MakeValues({10, 20}), 4);
  EXPECT_EQ(hist.EstimateRange(30, 40), 0.0);
  EXPECT_EQ(hist.EstimateRange(-5, 5), 0.0);
}

TEST(HistogramTest, InvertedRangeIsZero) {
  Histogram hist = Histogram::Build(MakeValues({1, 2, 3}), 4);
  EXPECT_EQ(hist.EstimateRange(3, 1), 0.0);
}

TEST(HistogramTest, PartialOverlapUsesUniformity) {
  // One bucket [0, 9] with 10 values; querying [0, 4] should give ~5.
  std::vector<int64_t> values;
  for (int64_t v = 0; v < 10; ++v) values.push_back(v);
  Histogram hist = Histogram::Build(std::move(values), 1);
  ASSERT_EQ(hist.bucket_count(), 1u);
  EXPECT_NEAR(hist.EstimateRange(0, 4), 5.0, 1e-9);
}

TEST(HistogramTest, SelectivityNormalized) {
  Histogram hist = Histogram::Build(MakeValues({1, 1, 2, 3}), 8);
  EXPECT_NEAR(hist.Selectivity(1, 1), 0.5, 1e-9);
  EXPECT_NEAR(hist.Selectivity(hist.domain_lo(), hist.domain_hi()), 1.0, 1e-9);
}

TEST(HistogramTest, MergePreservesTotal) {
  Histogram a = Histogram::Build(MakeValues({1, 2, 3}), 8);
  Histogram b = Histogram::Build(MakeValues({2, 3, 4, 5}), 8);
  Histogram merged = Histogram::Merge(a, b);
  EXPECT_NEAR(merged.total(), 7.0, 1e-9);
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a = Histogram::Build(MakeValues({1, 2}), 8);
  Histogram merged = Histogram::Merge(a, Histogram());
  EXPECT_NEAR(merged.total(), a.total(), 1e-9);
  EXPECT_EQ(merged.bucket_count(), a.bucket_count());
}

TEST(HistogramTest, MergeOfDetailedHistogramsIsExact) {
  Histogram a = Histogram::Build(MakeValues({1, 1, 5}), 8);
  Histogram b = Histogram::Build(MakeValues({1, 5, 9}), 8);
  Histogram merged = Histogram::Merge(a, b);
  EXPECT_NEAR(merged.EstimateRange(1, 1), 3.0, 1e-9);
  EXPECT_NEAR(merged.EstimateRange(5, 5), 2.0, 1e-9);
  EXPECT_NEAR(merged.EstimateRange(9, 9), 1.0, 1e-9);
}

TEST(HistogramTest, MergeAlignmentSplitsProportionally) {
  // a: single bucket [0, 9] count 10; b: single value 100.
  std::vector<int64_t> values;
  for (int64_t v = 0; v < 10; ++v) values.push_back(v);
  Histogram a = Histogram::Build(std::move(values), 1);
  Histogram b = Histogram::Build(MakeValues({100}), 1);
  Histogram merged = Histogram::Merge(a, b);
  EXPECT_NEAR(merged.EstimateRange(0, 4), 5.0, 1e-9);
  EXPECT_NEAR(merged.EstimateRange(100, 100), 1.0, 1e-9);
}

TEST(HistogramTest, CompressReducesBuckets) {
  Histogram hist = Histogram::Build(MakeValues({1, 2, 3, 4, 5}), 8);
  ASSERT_EQ(hist.bucket_count(), 5u);
  hist.Compress(2);
  EXPECT_EQ(hist.bucket_count(), 3u);
  EXPECT_NEAR(hist.total(), 5.0, 1e-9);
}

TEST(HistogramTest, CompressToOneBucketAndStop) {
  Histogram hist = Histogram::Build(MakeValues({1, 2, 3}), 8);
  hist.Compress(10);
  EXPECT_EQ(hist.bucket_count(), 1u);
  EXPECT_FALSE(hist.CanCompress());
  hist.Compress(1);  // no-op
  EXPECT_EQ(hist.bucket_count(), 1u);
}

TEST(HistogramTest, CompressMergesMostSimilarNeighbors) {
  // Values: 1 and 2 have identical frequencies; 100 is far away with a
  // different frequency. The first merge must pick (1, 2).
  Histogram hist =
      Histogram::Build(MakeValues({1, 2, 100, 100, 100, 100}), 8);
  hist.Compress(1);
  ASSERT_EQ(hist.bucket_count(), 2u);
  EXPECT_EQ(hist.buckets()[0].lo, 1);
  EXPECT_EQ(hist.buckets()[0].hi, 2);
  EXPECT_NEAR(hist.buckets()[0].count, 2.0, 1e-9);
}

TEST(HistogramTest, CompressedCopyLeavesOriginalIntact) {
  Histogram hist = Histogram::Build(MakeValues({1, 2, 3, 4}), 8);
  Histogram compressed = hist.Compressed(2);
  EXPECT_EQ(hist.bucket_count(), 4u);
  EXPECT_EQ(compressed.bucket_count(), 2u);
}

TEST(HistogramTest, VOptimalRecoversStepFunction) {
  // Two flat regions: the optimal 2-bucket partition splits exactly at the
  // step.
  std::vector<int64_t> values;
  for (int64_t v = 0; v < 10; ++v) values.push_back(v);          // freq 1
  for (int64_t v = 10; v < 20; ++v) {
    for (int rep = 0; rep < 5; ++rep) values.push_back(v);       // freq 5
  }
  Histogram detailed = Histogram::Build(std::move(values), 64);
  Histogram voptimal = detailed.VOptimal(2);
  ASSERT_EQ(voptimal.bucket_count(), 2u);
  EXPECT_EQ(voptimal.buckets()[0].hi, 9);
  EXPECT_EQ(voptimal.buckets()[1].lo, 10);
  EXPECT_NEAR(voptimal.total(), detailed.total(), 1e-9);
}

TEST(HistogramTest, VOptimalIdentityWhenBudgetSuffices) {
  Histogram hist = Histogram::Build(MakeValues({1, 2, 3}), 8);
  Histogram same = hist.VOptimal(5);
  EXPECT_EQ(same.bucket_count(), hist.bucket_count());
}

TEST(HistogramTest, VOptimalNeverWorseThanGreedyOnSse) {
  // Compare sum-squared prefix estimation error against the detailed
  // distribution: the DP must be at least as good as greedy merging.
  Rng rng(77);
  std::vector<int64_t> values;
  for (int i = 0; i < 400; ++i) {
    values.push_back(static_cast<int64_t>(rng.Uniform(40)) *
                     (rng.Bernoulli(0.3) ? 3 : 1));
  }
  Histogram detailed = Histogram::Build(std::move(values), 128);
  const size_t target = 8;
  Histogram greedy = detailed.Compressed(detailed.bucket_count() - target);
  Histogram voptimal = detailed.VOptimal(target);

  auto sse = [&](const Histogram& h) {
    double total = 0.0;
    for (int64_t x = detailed.domain_lo(); x <= detailed.domain_hi(); ++x) {
      double truth = detailed.EstimateRange(x, x);
      double diff = h.EstimateRange(x, x) - truth;
      total += diff * diff;
    }
    return total;
  };
  EXPECT_LE(sse(voptimal), sse(greedy) + 1e-6);
}

TEST(HistogramTest, BoundariesMatchBuckets) {
  Histogram hist = Histogram::Build(MakeValues({3, 7, 11}), 8);
  std::vector<int64_t> bounds = hist.Boundaries();
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds[0], 3);
  EXPECT_EQ(bounds[2], 11);
}

TEST(HistogramTest, SizeBytesFormula) {
  Histogram hist = Histogram::Build(MakeValues({1, 2, 3}), 8);
  EXPECT_EQ(hist.SizeBytes(), 4u + 3u * 8u);
}

TEST(HistogramTest, FromBucketsRoundTrip) {
  Histogram hist = Histogram::Build(MakeValues({1, 5, 5, 9}), 8);
  Histogram rebuilt = Histogram::FromBuckets(
      std::vector<HistogramBucket>(hist.buckets()));
  EXPECT_EQ(rebuilt.total(), hist.total());
  EXPECT_NEAR(rebuilt.EstimateRange(5, 5), hist.EstimateRange(5, 5), 1e-12);
}

TEST(HistogramTest, NegativeValuesSupported) {
  Histogram hist = Histogram::Build(MakeValues({-10, -5, 0, 5}), 8);
  EXPECT_NEAR(hist.EstimateRange(-10, -5), 2.0, 1e-9);
  EXPECT_EQ(hist.domain_lo(), -10);
}

/// Property sweep: for random inputs, merging preserves totals and
/// full-domain estimates; compression preserves totals.
class HistogramPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramPropertyTest, MergeAndCompressInvariants) {
  Rng rng(GetParam());
  auto random_values = [&](size_t n, int64_t domain) {
    std::vector<int64_t> values;
    for (size_t i = 0; i < n; ++i) {
      values.push_back(static_cast<int64_t>(rng.Uniform(domain)));
    }
    return values;
  };
  Histogram a = Histogram::Build(random_values(200, 50), 16);
  Histogram b = Histogram::Build(random_values(300, 80), 16);
  Histogram merged = Histogram::Merge(a, b);
  EXPECT_NEAR(merged.total(), 500.0, 1e-6);
  EXPECT_NEAR(merged.EstimateRange(merged.domain_lo(), merged.domain_hi()),
              500.0, 1e-6);

  // Prefix-range estimates of the merged histogram equal the sum of the
  // inputs' estimates (alignment is lossless at shared boundaries).
  for (int64_t h : merged.Boundaries()) {
    double split = a.EstimateRange(a.domain_lo(), h) +
                   b.EstimateRange(b.domain_lo(), h);
    EXPECT_NEAR(merged.EstimateRange(merged.domain_lo(), h), split, 1e-6);
  }

  Histogram compressed = merged.Compressed(merged.bucket_count() / 2);
  EXPECT_NEAR(compressed.total(), 500.0, 1e-6);
  EXPECT_LE(compressed.SizeBytes(), merged.SizeBytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace xcluster
