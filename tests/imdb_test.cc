#include "data/imdb.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "synopsis/reference.h"

namespace xcluster {
namespace {

ImdbOptions SmallOptions() {
  ImdbOptions options;
  options.scale = 0.05;
  return options;
}

TEST(ImdbTest, GeneratesNonEmptyDocument) {
  GeneratedDataset dataset = GenerateImdb(SmallOptions());
  EXPECT_EQ(dataset.name, "IMDB");
  EXPECT_GT(dataset.doc.size(), 500u);
  EXPECT_GT(dataset.doc.CountValued(), 200u);
}

TEST(ImdbTest, DeterministicForSeed) {
  GeneratedDataset a = GenerateImdb(SmallOptions());
  GeneratedDataset b = GenerateImdb(SmallOptions());
  EXPECT_EQ(a.doc.size(), b.doc.size());
}

TEST(ImdbTest, RootLabelAndCollections) {
  GeneratedDataset dataset = GenerateImdb(SmallOptions());
  const XmlDocument& doc = dataset.doc;
  EXPECT_EQ(doc.label_name(doc.root()), "imdb");
  std::map<std::string, size_t> kinds;
  for (NodeId child : doc.children(doc.root())) {
    ++kinds[doc.label_name(child)];
  }
  EXPECT_GT(kinds["movie"], 10u);
  EXPECT_GT(kinds["series"], 2u);
  EXPECT_GT(kinds["actor"], 10u);
  EXPECT_GT(kinds["director"], 2u);
}

TEST(ImdbTest, ValuePathsExistInDocument) {
  GeneratedDataset dataset = GenerateImdb(SmallOptions());
  EXPECT_EQ(dataset.value_paths.size(), 8u);
  std::set<std::string> doc_paths;
  for (NodeId id = 0; id < dataset.doc.size(); ++id) {
    if (dataset.doc.type(id) != ValueType::kNone) {
      doc_paths.insert(dataset.doc.PathOf(id));
    }
  }
  for (const std::string& path : dataset.value_paths) {
    EXPECT_TRUE(doc_paths.count(path)) << path;
  }
}

TEST(ImdbTest, YearsSpanBothEras) {
  GeneratedDataset dataset = GenerateImdb(SmallOptions());
  const XmlDocument& doc = dataset.doc;
  bool old_era = false;
  bool modern = false;
  for (NodeId id = 0; id < dataset.doc.size(); ++id) {
    if (doc.label_name(id) != "year" ||
        doc.type(id) != ValueType::kNumeric) {
      continue;
    }
    if (doc.node(id).numeric < 1950) old_era = true;
    if (doc.node(id).numeric > 1985) modern = true;
  }
  EXPECT_TRUE(old_era);
  EXPECT_TRUE(modern);
}

TEST(ImdbTest, EraCorrelations) {
  // Old movies (year < 1955) never carry keywords; modern movies
  // (year > 1975) mostly do — the planted structure-value correlation.
  ImdbOptions options;
  options.scale = 0.2;
  GeneratedDataset dataset = GenerateImdb(options);
  const XmlDocument& doc = dataset.doc;
  size_t old_with_keywords = 0;
  size_t old_total = 0;
  size_t modern_with_keywords = 0;
  size_t modern_total = 0;
  for (NodeId id = 0; id < doc.size(); ++id) {
    if (doc.label_name(id) != "movie") continue;
    int64_t year = 0;
    bool keywords = false;
    for (NodeId child : doc.children(id)) {
      if (doc.label_name(child) == "year") year = doc.node(child).numeric;
      if (doc.label_name(child) == "keywords") keywords = true;
    }
    if (year < 1955) {
      ++old_total;
      if (keywords) ++old_with_keywords;
    } else if (year > 1990) {
      ++modern_total;
      if (keywords) ++modern_with_keywords;
    }
  }
  ASSERT_GT(old_total, 0u);
  ASSERT_GT(modern_total, 0u);
  EXPECT_EQ(old_with_keywords, 0u);
  EXPECT_GT(static_cast<double>(modern_with_keywords) /
                static_cast<double>(modern_total),
            0.8);
}

TEST(ImdbTest, TitleLabelSharedAcrossPaths) {
  // Movie, series, and episode titles all use the "title" label so that
  // tag-level clustering mixes their distributions.
  GeneratedDataset dataset = GenerateImdb(SmallOptions());
  std::set<std::string> title_paths;
  for (NodeId id = 0; id < dataset.doc.size(); ++id) {
    if (dataset.doc.label_name(id) == "title") {
      title_paths.insert(dataset.doc.PathOf(id));
    }
  }
  EXPECT_GE(title_paths.size(), 3u);
}

TEST(ImdbTest, AllThreeValueTypesPresent) {
  GeneratedDataset dataset = GenerateImdb(SmallOptions());
  std::map<ValueType, size_t> counts;
  for (NodeId id = 0; id < dataset.doc.size(); ++id) {
    ++counts[dataset.doc.type(id)];
  }
  EXPECT_GT(counts[ValueType::kNumeric], 20u);
  EXPECT_GT(counts[ValueType::kString], 50u);
  EXPECT_GT(counts[ValueType::kText], 20u);
}

TEST(ImdbTest, ReferenceSynopsisHasEightValueClusters) {
  GeneratedDataset dataset = GenerateImdb(SmallOptions());
  ReferenceOptions options;
  options.value_paths = dataset.value_paths;
  GraphSynopsis synopsis = BuildReferenceSynopsis(dataset.doc, options);
  EXPECT_EQ(synopsis.ValueNodeCount(), 8u);
}

TEST(ImdbTest, RatingsWithinBounds) {
  GeneratedDataset dataset = GenerateImdb(SmallOptions());
  const XmlDocument& doc = dataset.doc;
  for (NodeId id = 0; id < doc.size(); ++id) {
    if (doc.label_name(id) != "rating") continue;
    EXPECT_GE(doc.node(id).numeric, 1);
    EXPECT_LE(doc.node(id).numeric, 100);
  }
}

}  // namespace
}  // namespace xcluster
