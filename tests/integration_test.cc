#include <gtest/gtest.h>

#include "build/builder.h"
#include "data/imdb.h"
#include "data/xmark.h"
#include "estimate/estimator.h"
#include "eval/evaluator.h"
#include "synopsis/reference.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace xcluster {
namespace {

/// End-to-end checks tying generation, reference construction, workload
/// sampling, XClusterBuild, estimation, and the error metric together.
class IntegrationTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      XMarkOptions options;
      options.scale = 0.1;
      dataset_ = GenerateXMark(options);
    } else {
      ImdbOptions options;
      options.scale = 0.1;
      dataset_ = GenerateImdb(options);
    }
    ReferenceOptions ref_options;
    ref_options.value_paths = dataset_.value_paths;
    reference_ = BuildReferenceSynopsis(dataset_.doc, ref_options);
    WorkloadOptions wl_options;
    wl_options.num_queries = 150;
    workload_ = GenerateWorkload(dataset_.doc, reference_, wl_options);
  }

  std::vector<double> Estimates(const GraphSynopsis& synopsis) {
    XClusterEstimator estimator(synopsis);
    std::vector<double> estimates;
    estimates.reserve(workload_.queries.size());
    for (const WorkloadQuery& q : workload_.queries) {
      estimates.push_back(estimator.Estimate(q.query));
    }
    return estimates;
  }

  GeneratedDataset dataset_;
  GraphSynopsis reference_;
  Workload workload_;
};

TEST_P(IntegrationTest, ReferenceEstimatesStructuralQueriesExactly) {
  // Count-stability + unique incoming paths make reference estimates of
  // purely structural twigs exact (up to floating-point noise).
  XClusterEstimator estimator(reference_);
  for (const WorkloadQuery& q : workload_.queries) {
    if (q.pred_class != ValueType::kNone) continue;
    double estimate = estimator.Estimate(q.query);
    EXPECT_NEAR(estimate, q.true_selectivity,
                1e-6 * (1.0 + q.true_selectivity))
        << q.query.ToString();
  }
}

TEST_P(IntegrationTest, ReferenceIsAccurateOverall) {
  ErrorReport report = EvaluateErrors(workload_, Estimates(reference_));
  EXPECT_LT(report.overall.avg_rel_error, 0.15) << dataset_.name;
}

TEST_P(IntegrationTest, CompressedSynopsisStaysReasonable) {
  BuildOptions options;
  options.structural_budget = reference_.StructuralBytes() / 3;
  options.value_budget = reference_.ValueBytes() / 3;
  GraphSynopsis synopsis = XClusterBuild(reference_, options, nullptr);
  ErrorReport report = EvaluateErrors(workload_, Estimates(synopsis));
  EXPECT_LT(report.overall.avg_rel_error, 0.5) << dataset_.name;
}

TEST_P(IntegrationTest, ErrorDecreasesWithStructuralBudget) {
  BuildOptions tiny;
  tiny.structural_budget = 0;
  tiny.value_budget = reference_.ValueBytes() / 4;
  GraphSynopsis coarse = XClusterBuild(reference_, tiny, nullptr);

  BuildOptions large;
  large.structural_budget = reference_.StructuralBytes();
  large.value_budget = reference_.ValueBytes() / 4;
  GraphSynopsis fine = XClusterBuild(reference_, large, nullptr);

  ErrorReport coarse_report = EvaluateErrors(workload_, Estimates(coarse));
  ErrorReport fine_report = EvaluateErrors(workload_, Estimates(fine));
  EXPECT_LE(fine_report.overall.avg_rel_error,
            coarse_report.overall.avg_rel_error + 0.02)
      << dataset_.name;
}

TEST_P(IntegrationTest, NegativeWorkloadEstimatesNearZero) {
  WorkloadOptions options;
  options.num_queries = 60;
  options.positive = false;
  Workload negative = GenerateWorkload(dataset_.doc, reference_, options);
  ASSERT_GT(negative.queries.size(), 10u);

  BuildOptions build;
  build.structural_budget = 4096;
  build.value_budget = 16384;
  GraphSynopsis synopsis = XClusterBuild(reference_, build, nullptr);
  XClusterEstimator estimator(synopsis);
  double total_estimate = 0.0;
  for (const WorkloadQuery& q : negative.queries) {
    total_estimate += estimator.Estimate(q.query);
  }
  EXPECT_LT(total_estimate / static_cast<double>(negative.queries.size()),
            1.0)
      << dataset_.name;
}

TEST_P(IntegrationTest, DeltaGuidedBeatsRandomMerging) {
  BuildOptions guided;
  guided.structural_budget = reference_.StructuralBytes() / 8;
  guided.value_budget = reference_.ValueBytes() / 4;
  GraphSynopsis guided_syn = XClusterBuild(reference_, guided, nullptr);

  BuildOptions random = guided;
  random.policy = MergePolicy::kRandom;
  // Average over a few seeds to avoid flakiness.
  double random_error = 0.0;
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    random.seed = seed;
    GraphSynopsis random_syn = XClusterBuild(reference_, random, nullptr);
    random_error +=
        EvaluateErrors(workload_, Estimates(random_syn)).overall.avg_rel_error;
  }
  random_error /= 3.0;
  double guided_error =
      EvaluateErrors(workload_, Estimates(guided_syn)).overall.avg_rel_error;
  EXPECT_LT(guided_error, random_error + 0.02) << dataset_.name;
}

INSTANTIATE_TEST_SUITE_P(Datasets, IntegrationTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "XMark" : "IMDB";
                         });

}  // namespace
}  // namespace xcluster
