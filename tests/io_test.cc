#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "common/io/bytes.h"
#include "common/io/fault_injection.h"
#include "common/io/file_io.h"

namespace xcluster {
namespace {

TEST(BytesTest, FixedWidthRoundTrip) {
  std::string buf;
  StringSink sink(&buf);
  PutFixed8(&sink, 0xab);
  PutFixed32(&sink, 0xdeadbeefu);
  PutFixed64(&sink, 0x0123456789abcdefull);
  PutDouble(&sink, 3.14159);
  PutDouble(&sink, -0.0);

  StringSource src(buf);
  uint8_t a = 0;
  uint32_t b = 0;
  uint64_t c = 0;
  double d = 0.0;
  double e = 1.0;
  ASSERT_TRUE(GetFixed8(&src, &a).ok());
  ASSERT_TRUE(GetFixed32(&src, &b).ok());
  ASSERT_TRUE(GetFixed64(&src, &c).ok());
  ASSERT_TRUE(GetDouble(&src, &d).ok());
  ASSERT_TRUE(GetDouble(&src, &e).ok());
  EXPECT_EQ(a, 0xab);
  EXPECT_EQ(b, 0xdeadbeefu);
  EXPECT_EQ(c, 0x0123456789abcdefull);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(e, 0.0);
  EXPECT_TRUE(std::signbit(e));
  EXPECT_EQ(src.Remaining(), 0u);
}

TEST(BytesTest, FixedEncodingIsLittleEndian) {
  std::string buf;
  StringSink sink(&buf);
  PutFixed32(&sink, 0x04030201u);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[1], 2);
  EXPECT_EQ(buf[2], 3);
  EXPECT_EQ(buf[3], 4);
}

TEST(BytesTest, VarintRoundTrip) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             300,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             std::numeric_limits<uint64_t>::max()};
  std::string buf;
  StringSink sink(&buf);
  for (uint64_t v : values) PutVarint64(&sink, v);
  StringSource src(buf);
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&src, &got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(src.Remaining(), 0u);
}

TEST(BytesTest, TruncatedVarintFails) {
  std::string buf;
  StringSink sink(&buf);
  PutVarint64(&sink, 1ull << 40);
  buf.resize(buf.size() - 1);
  StringSource src(buf);
  uint64_t v = 0;
  EXPECT_EQ(GetVarint64(&src, &v).code(), Status::Code::kCorruption);
}

TEST(BytesTest, LengthPrefixedRoundTrip) {
  std::string buf;
  StringSink sink(&buf);
  PutLengthPrefixed(&sink, "hello");
  PutLengthPrefixed(&sink, "");
  PutLengthPrefixed(&sink, std::string(1000, 'x'));
  StringSource src(buf);
  std::string s;
  ASSERT_TRUE(GetLengthPrefixed(&src, &s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&src, &s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(GetLengthPrefixed(&src, &s).ok());
  EXPECT_EQ(s, std::string(1000, 'x'));
}

TEST(BytesTest, LengthPrefixWithHugeLengthIsRejectedBeforeAllocating) {
  std::string buf;
  StringSink sink(&buf);
  PutVarint64(&sink, std::numeric_limits<uint64_t>::max());
  sink.Append("short");
  StringSource src(buf);
  std::string s;
  EXPECT_EQ(GetLengthPrefixed(&src, &s).code(), Status::Code::kCorruption);
}

TEST(BytesTest, ReadPastEndFails) {
  StringSource src("ab");
  char out[4];
  EXPECT_EQ(src.Read(out, 4).code(), Status::Code::kCorruption);
}

TEST(BytesTest, CheckCountRespectsBudget) {
  StringSource src(std::string(100, 'x'));
  EXPECT_TRUE(CheckCount(10, 10, src, "elem").ok());
  EXPECT_TRUE(CheckCount(100, 1, src, "elem").ok());
  EXPECT_EQ(CheckCount(101, 1, src, "elem").code(),
            Status::Code::kCorruption);
  EXPECT_EQ(CheckCount(11, 10, src, "elem").code(),
            Status::Code::kCorruption);
  // A count that would overflow count * elem_bytes must still be rejected.
  EXPECT_EQ(
      CheckCount(std::numeric_limits<uint64_t>::max(), 8, src, "elem").code(),
      Status::Code::kCorruption);
}

TEST(BoundedReaderTest, CapsReads) {
  StringSource inner("abcdefghij");
  BoundedReader bounded(&inner, 4);
  EXPECT_EQ(bounded.Remaining(), 4u);
  char out[8];
  ASSERT_TRUE(bounded.Read(out, 3).ok());
  EXPECT_EQ(bounded.Remaining(), 1u);
  EXPECT_EQ(bounded.Read(out, 2).code(), Status::Code::kCorruption);
  ASSERT_TRUE(bounded.Read(out, 1).ok());
  EXPECT_EQ(bounded.Remaining(), 0u);
  // The inner source is only advanced by what the bounded reader consumed.
  EXPECT_EQ(inner.Remaining(), 6u);
}

TEST(BoundedReaderTest, LimitClampedToInnerRemaining) {
  StringSource inner("abc");
  BoundedReader bounded(&inner, 100);
  EXPECT_EQ(bounded.Remaining(), 3u);
}

TEST(BoundedReaderTest, SkipHonorsLimit) {
  StringSource inner("abcdefghij");
  BoundedReader bounded(&inner, 4);
  ASSERT_TRUE(bounded.Skip(4).ok());
  EXPECT_EQ(bounded.Skip(1).code(), Status::Code::kCorruption);
}

TEST(FileIoTest, AtomicWriteThenRead) {
  const std::string path = testing::TempDir() + "/io_test_atomic.bin";
  const std::string payload = "payload \0 with NUL and \xff bytes";
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), payload);
}

TEST(FileIoTest, AtomicWriteReplacesExisting) {
  const std::string path = testing::TempDir() + "/io_test_replace.bin";
  ASSERT_TRUE(WriteFileAtomic(path, "old contents").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "new").ok());
  Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "new");
}

TEST(FileIoTest, MissingFileIsIOError) {
  Result<std::string> read = ReadFileToString("/nonexistent/file.bin");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), Status::Code::kIOError);
}

TEST(FileIoTest, WriteToBadDirectoryFails) {
  EXPECT_EQ(WriteFileAtomic("/nonexistent/dir/file.bin", "x").code(),
            Status::Code::kIOError);
}

TEST(FaultInjectionTest, DeterministicGivenSeed) {
  const std::string data(4096, 'q');
  FaultOptions options;
  options.seed = 42;
  FaultInjectingSource a(data, options);
  FaultInjectingSource b(data, options);
  EXPECT_EQ(a.faults_armed(), b.faults_armed());
  EXPECT_EQ(a.fault_description(), b.fault_description());
  std::string ra(a.Remaining(), '\0');
  std::string rb(b.Remaining(), '\0');
  Status sa = a.Read(ra.data(), ra.size());
  Status sb = b.Read(rb.data(), rb.size());
  EXPECT_EQ(sa.ToString(), sb.ToString());
  EXPECT_EQ(ra, rb);
}

TEST(FaultInjectionTest, NoFaultsMeansPerfectPassthrough) {
  const std::string data = "precious bytes";
  FaultOptions options;
  options.truncate_probability = 0.0;
  options.bit_flip_probability = 0.0;
  options.io_error_probability = 0.0;
  FaultInjectingSource source(data, options);
  EXPECT_EQ(source.faults_armed(), 0u);
  std::string out(data.size(), '\0');
  ASSERT_TRUE(source.Read(out.data(), out.size()).ok());
  EXPECT_EQ(out, data);
}

TEST(FaultInjectionTest, SomeSeedsInjectFaults) {
  const std::string data(1024, 'z');
  size_t with_faults = 0;
  for (uint64_t seed = 0; seed < 100; ++seed) {
    FaultOptions options;
    options.seed = seed;
    FaultInjectingSource source(data, options);
    if (source.faults_armed() > 0) ++with_faults;
  }
  // Default rates arm a fault in well over a third of schedules.
  EXPECT_GT(with_faults, 30u);
  EXPECT_LT(with_faults, 100u);  // and some schedules stay clean
}

TEST(FaultInjectionTest, SinkNoFaultsPassesThrough) {
  std::string out;
  StringSink inner(&out);
  FaultOptions options;
  options.truncate_probability = 0.0;
  options.bit_flip_probability = 0.0;
  options.io_error_probability = 0.0;
  FaultInjectingSink sink(&inner, options);
  EXPECT_EQ(sink.faults_armed(), 0u);
  ASSERT_TRUE(sink.Append("hello ").ok());
  ASSERT_TRUE(sink.Append("world").ok());
  EXPECT_EQ(out, "hello world");
}

TEST(FaultInjectionTest, SinkTruncationDropsTail) {
  // Find a seed whose schedule truncates early, and check the sink reports
  // success while the inner sink holds fewer bytes (a torn write).
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    FaultOptions options;
    options.seed = seed;
    options.truncate_probability = 1.0;
    options.bit_flip_probability = 0.0;
    options.io_error_probability = 0.0;
    std::string out;
    StringSink inner(&out);
    FaultInjectingSink sink(&inner, options);
    std::string payload(64 * 1024, 'p');
    if (!sink.Append(payload).ok()) continue;
    if (out.size() < payload.size()) {
      EXPECT_EQ(sink.BytesWritten(), payload.size());
      return;
    }
  }
  FAIL() << "no schedule truncated a 64 KiB write";
}

}  // namespace
}  // namespace xcluster
