#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "common/json.h"

namespace xcluster {
namespace {

TEST(JsonParseTest, ParsesScalars) {
  ASSERT_TRUE(ParseJson("null").ok());
  EXPECT_TRUE(ParseJson("null").value().is_null());
  EXPECT_EQ(ParseJson("true").value().as_bool(), true);
  EXPECT_EQ(ParseJson("false").value().as_bool(), false);
  EXPECT_DOUBLE_EQ(ParseJson("42").value().as_number(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-3.25e2").value().as_number(), -325.0);
  EXPECT_EQ(ParseJson("\"hi\"").value().as_string(), "hi");
}

TEST(JsonParseTest, ParsesNestedContainers) {
  Result<JsonValue> parsed =
      ParseJson("{\"a\": [1, 2, {\"b\": null}], \"c\": \"x\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* a = parsed.value().Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[1].as_number(), 2.0);
  ASSERT_NE(a->items()[2].Find("b"), nullptr);
  EXPECT_TRUE(a->items()[2].Find("b")->is_null());
}

TEST(JsonParseTest, DecodesEscapes) {
  Result<JsonValue> parsed = ParseJson("\"a\\n\\t\\\"\\\\\\u0041\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().as_string(), "a\n\t\"\\A");
}

TEST(JsonParseTest, DecodesNonAsciiUnicodeEscape) {
  Result<JsonValue> parsed = ParseJson("\"\\u00e9\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().as_string(), "\xc3\xa9");  // UTF-8 for e-acute
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("1 trailing").ok());
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonDumpTest, RoundTripsThroughParse) {
  JsonValue object = JsonValue::Object();
  object.members()["name"] = JsonValue::String("x\"y\n");
  object.members()["count"] = JsonValue::Number(3);
  object.members()["ratio"] = JsonValue::Number(0.125);
  JsonValue array = JsonValue::Array();
  array.items().push_back(JsonValue::Bool(true));
  array.items().push_back(JsonValue());
  object.members()["list"] = std::move(array);

  const std::string compact = object.Dump();
  const std::string pretty = object.Dump(2);
  Result<JsonValue> reparsed_compact = ParseJson(compact);
  Result<JsonValue> reparsed_pretty = ParseJson(pretty);
  ASSERT_TRUE(reparsed_compact.ok()) << compact;
  ASSERT_TRUE(reparsed_pretty.ok()) << pretty;
  EXPECT_EQ(reparsed_compact.value().Dump(), compact);
  EXPECT_EQ(reparsed_pretty.value().Dump(), compact);
}

TEST(JsonDumpTest, ObjectKeysAreSorted) {
  JsonValue object = JsonValue::Object();
  object.members()["zebra"] = JsonValue::Number(1);
  object.members()["apple"] = JsonValue::Number(2);
  const std::string dumped = object.Dump();
  EXPECT_LT(dumped.find("apple"), dumped.find("zebra"));
}

TEST(JsonDumpTest, IntegersHaveNoFraction) {
  EXPECT_EQ(JsonValue::Number(1851).Dump(), "1851");
  EXPECT_EQ(JsonValue::Number(-3).Dump(), "-3");
  EXPECT_EQ(JsonNumberToString(0.0), "0");
}

TEST(JsonEscapeTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01""b")), "a\\u0001b");
}

}  // namespace
}  // namespace xcluster
