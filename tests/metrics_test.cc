#include "workload/metrics.h"

#include <gtest/gtest.h>

namespace xcluster {
namespace {

WorkloadQuery MakeQuery(double truth, ValueType cls) {
  WorkloadQuery query;
  query.true_selectivity = truth;
  query.pred_class = cls;
  return query;
}

Workload MakeWorkload(std::vector<std::pair<double, ValueType>> specs) {
  Workload workload;
  for (const auto& [truth, cls] : specs) {
    workload.queries.push_back(MakeQuery(truth, cls));
  }
  return workload;
}

TEST(MetricsTest, ClassNames) {
  EXPECT_EQ(ClassName(ValueType::kNone), "Struct");
  EXPECT_EQ(ClassName(ValueType::kNumeric), "Numeric");
  EXPECT_EQ(ClassName(ValueType::kString), "String");
  EXPECT_EQ(ClassName(ValueType::kText), "Text");
}

TEST(MetricsTest, SanityBoundTenPercentile) {
  Workload workload;
  for (double c = 1.0; c <= 100.0; c += 1.0) {
    workload.queries.push_back(MakeQuery(c, ValueType::kNone));
  }
  // 10th percentile of 1..100.
  EXPECT_NEAR(SanityBound(workload, 0.10), 11.0, 1.0);
  EXPECT_NEAR(SanityBound(workload, 0.50), 51.0, 1.0);
}

TEST(MetricsTest, SanityBoundEmptyWorkload) {
  EXPECT_EQ(SanityBound(Workload{}), 0.0);
}

TEST(MetricsTest, PerfectEstimatesGiveZeroError) {
  Workload workload = MakeWorkload({{10, ValueType::kNone},
                                    {20, ValueType::kNumeric},
                                    {30, ValueType::kText}});
  ErrorReport report = EvaluateErrors(workload, {10.0, 20.0, 30.0});
  EXPECT_EQ(report.overall.count, 3u);
  EXPECT_DOUBLE_EQ(report.overall.avg_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(report.overall.avg_abs_error, 0.0);
}

TEST(MetricsTest, RelativeErrorFormula) {
  Workload workload = MakeWorkload({{100, ValueType::kNone}});
  ErrorReport report = EvaluateErrors(workload, {50.0}, /*sanity=*/10.0);
  // |100 - 50| / max(100, 10) = 0.5.
  EXPECT_NEAR(report.overall.avg_rel_error, 0.5, 1e-12);
  EXPECT_NEAR(report.overall.avg_abs_error, 50.0, 1e-12);
}

TEST(MetricsTest, SanityBoundCapsLowCountBlowup) {
  // True count 1, estimate 21: without the bound the relative error would
  // be 20; with sanity 10 it is 2.
  Workload workload = MakeWorkload({{1, ValueType::kNone}});
  ErrorReport report = EvaluateErrors(workload, {21.0}, /*sanity=*/10.0);
  EXPECT_NEAR(report.overall.avg_rel_error, 2.0, 1e-12);
}

TEST(MetricsTest, PerClassBreakdown) {
  Workload workload = MakeWorkload({{10, ValueType::kNone},
                                    {10, ValueType::kNumeric},
                                    {10, ValueType::kNumeric}});
  ErrorReport report = EvaluateErrors(workload, {10.0, 5.0, 15.0}, 1.0);
  EXPECT_EQ(report.by_class["Struct"].count, 1u);
  EXPECT_DOUBLE_EQ(report.by_class["Struct"].avg_rel_error, 0.0);
  EXPECT_EQ(report.by_class["Numeric"].count, 2u);
  EXPECT_NEAR(report.by_class["Numeric"].avg_rel_error, 0.5, 1e-12);
  EXPECT_NEAR(report.by_class["Numeric"].avg_abs_error, 5.0, 1e-12);
}

TEST(MetricsTest, AverageTrueSelectivity) {
  Workload workload = MakeWorkload({{10, ValueType::kNone},
                                    {30, ValueType::kNone}});
  ErrorReport report = EvaluateErrors(workload, {10.0, 30.0}, 1.0);
  EXPECT_NEAR(report.overall.avg_true, 20.0, 1e-12);
}

TEST(MetricsTest, DefaultSanityIsComputed) {
  Workload workload;
  for (double c = 1.0; c <= 50.0; c += 1.0) {
    workload.queries.push_back(MakeQuery(c, ValueType::kNone));
  }
  std::vector<double> estimates(50, 25.0);
  ErrorReport report = EvaluateErrors(workload, estimates);
  EXPECT_GT(report.sanity_bound, 1.0);
  EXPECT_LT(report.sanity_bound, 10.0);
}

TEST(MetricsTest, LowCountRestriction) {
  Workload workload = MakeWorkload({{2, ValueType::kText},
                                    {500, ValueType::kText},
                                    {3, ValueType::kNumeric}});
  std::vector<double> estimates = {4.0, 450.0, 3.0};
  // Sanity bound defaults to max(1, 10-percentile) = 2.
  ErrorReport low = EvaluateLowCountErrors(workload, estimates);
  // Only queries with truth < sanity participate; with bound 2, none of
  // truth >= 2 qualify... bound is the 10th percentile = 2, so only
  // nothing. Use an explicit check on counts instead.
  EXPECT_LE(low.overall.count, workload.queries.size());
  for (const auto& [name, stats] : low.by_class) {
    EXPECT_LE(stats.count, 2u);
  }
}

TEST(MetricsTest, MismatchedEstimateLengthIsSafe) {
  Workload workload = MakeWorkload({{10, ValueType::kNone},
                                    {20, ValueType::kNone}});
  ErrorReport report = EvaluateErrors(workload, {10.0}, 1.0);
  EXPECT_EQ(report.overall.count, 1u);
}

}  // namespace
}  // namespace xcluster
