#include "net/client.h"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cmath>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "service/service.h"

namespace xcluster {
namespace net {
namespace {

/// A hand-rolled one-connection server for misbehaving-peer scenarios the
/// real NetServer would never produce. `script` runs with the accepted fd.
class FakeServer {
 public:
  explicit FakeServer(std::function<void(int fd)> script) {
    Result<ScopedFd> listener = TcpListen("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    listen_fd_ = std::move(listener).value();
    Result<uint16_t> port = LocalPort(listen_fd_.get());
    EXPECT_TRUE(port.ok());
    port_ = port.value();
    // Capture the fd by value: the destructor Reset()s listen_fd_ to kick
    // the thread out of accept, which must not race the member read.
    thread_ = std::thread([listen = listen_fd_.get(),
                           script = std::move(script)] {
      const int fd = ::accept(listen, nullptr, nullptr);
      if (fd < 0) return;
      ScopedFd conn(fd);
      script(conn.get());
    });
  }

  ~FakeServer() {
    listen_fd_.Reset();
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return port_; }

 private:
  ScopedFd listen_fd_;
  uint16_t port_ = 0;
  std::thread thread_;
};

/// Reads until `n` bytes arrived or the peer closed (ignores content).
void DrainBytes(int fd, size_t n) {
  char chunk[4096];
  size_t total = 0;
  while (total < n) {
    size_t got = 0;
    if (!ReadSome(fd, chunk, std::min(sizeof(chunk), n - total), &got).ok() ||
        got == 0) {
      return;
    }
    total += got;
  }
}

size_t HelloWireSize() {
  Frame hello;
  hello.type = FrameType::kHello;
  hello.payload = EncodeHello(HelloRequest{});
  std::string wire;
  EncodeFrame(hello, &wire);
  return wire.size();
}

TEST(NetClientTest, ConnectionRefusedCarriesStrerrorContext) {
  // Grab an ephemeral port, then close the listener so nothing is there.
  uint16_t port = 0;
  {
    Result<ScopedFd> listener = TcpListen("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    Result<uint16_t> bound = LocalPort(listener.value().get());
    ASSERT_TRUE(bound.ok());
    port = bound.value();
  }
  Result<NetClient> client = NetClient::Connect("127.0.0.1", port);
  ASSERT_FALSE(client.ok());
  EXPECT_NE(client.status().ToString().find("connect"), std::string::npos)
      << client.status().ToString();
}

TEST(NetClientTest, GarbageServerFailsTheHandshakeNotTheProcess) {
  FakeServer server([](int fd) {
    const std::string banner = "HTTP/1.1 400 Bad Request\r\n\r\n";
    (void)WriteAll(fd, banner.data(), banner.size());
    DrainBytes(fd, HelloWireSize());
  });
  Result<NetClient> client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_FALSE(client.ok());
  // "HTTP" read as a length prefix is absurdly large — rejected before
  // the client buffers it.
  EXPECT_EQ(client.status().code(), Status::Code::kCorruption)
      << client.status().ToString();
}

TEST(NetClientTest, SilentServerHitsTheRecvTimeout) {
  FakeServer server([](int fd) {
    DrainBytes(fd, HelloWireSize());  // swallow the hello, answer nothing
    char parting;
    size_t got = 0;
    (void)ReadSome(fd, &parting, 1, &got);  // wait for the client to give up
  });
  NetClientOptions options;
  options.recv_timeout_ms = 100;
  Result<NetClient> client =
      NetClient::Connect("127.0.0.1", server.port(), options);
  ASSERT_FALSE(client.ok());
  EXPECT_NE(client.status().ToString().find("timed out"), std::string::npos)
      << client.status().ToString();
}

TEST(NetClientTest, ServerClosingMidFrameIsReportedAsSuch) {
  FakeServer server([](int fd) {
    DrainBytes(fd, HelloWireSize());
    // First bytes of a valid hello ack, then close.
    Frame ack;
    ack.type = FrameType::kHelloAck;
    ack.payload = EncodeHelloAck(kProtocolMaxVersion);
    std::string wire;
    EncodeFrame(ack, &wire);
    (void)WriteAll(fd, wire.data(), wire.size() / 2);
  });
  Result<NetClient> client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_FALSE(client.ok());
  EXPECT_NE(client.status().ToString().find("mid-frame"), std::string::npos)
      << client.status().ToString();
}

TEST(NetClientTest, VersionNegotiationRejectsDisjointRanges) {
  HelloRequest future;
  future.min_version = kProtocolMaxVersion + 1;
  future.max_version = kProtocolMaxVersion + 3;
  Result<uint32_t> negotiated = NegotiateVersion(future);
  ASSERT_FALSE(negotiated.ok());
  EXPECT_EQ(negotiated.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(negotiated.status().ToString().find("no common protocol"),
            std::string::npos)
      << negotiated.status().ToString();

  // Overlapping ranges settle on the highest shared version.
  HelloRequest wide;
  wide.min_version = 0;
  wide.max_version = 100;
  negotiated = NegotiateVersion(wide);
  ASSERT_TRUE(negotiated.ok());
  EXPECT_EQ(negotiated.value(), kProtocolMaxVersion);
}

TEST(NetClientTest, HelloRejectsForeignMagic) {
  std::string payload = EncodeHello(HelloRequest{});
  payload[0] = 'Y';
  Result<HelloRequest> decoded = DecodeHello(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("magic"), std::string::npos)
      << decoded.status().ToString();

  // Inverted version range is rejected even with good magic.
  HelloRequest inverted;
  inverted.min_version = 3;
  inverted.max_version = 1;
  decoded = DecodeHello(EncodeHello(inverted));
  ASSERT_FALSE(decoded.ok());
}

TEST(NetClientTest, BatchRequestRoundTripsThroughTheCodec) {
  BatchRequestFrame request;
  request.collection = "books";
  request.options.deadline_ns = 1500000;
  request.options.explain = true;
  request.queries = {"/A", "//A[range(1,9)]/B", std::string(2048, 'q'), ""};

  Result<BatchRequestFrame> decoded =
      DecodeBatchRequest(EncodeBatchRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().collection, "books");
  EXPECT_EQ(decoded.value().options.deadline_ns, 1500000u);
  EXPECT_TRUE(decoded.value().options.explain);
  EXPECT_EQ(decoded.value().queries, request.queries);
}

TEST(NetClientTest, BatchRequestCountBeyondPayloadIsRejectedBeforeReserve) {
  BatchRequestFrame request;
  request.collection = "books";
  request.queries = {"/A"};
  std::string payload = EncodeBatchRequest(request);
  // The varint query count sits right after collection (len-prefixed) +
  // deadline (8) + explain (1). Overwrite count=1 with a huge varint by
  // rebuilding: declare 2^40 queries with no bodies behind them.
  BatchRequestFrame empty;
  empty.collection = "books";
  std::string forged = EncodeBatchRequest(empty);
  forged.pop_back();                       // drop count=0
  for (int i = 0; i < 5; ++i) forged.push_back('\xff');
  forged.push_back('\x3f');                // varint: large count
  Result<BatchRequestFrame> decoded = DecodeBatchRequest(forged);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), Status::Code::kCorruption)
      << decoded.status().ToString();
}

TEST(NetClientTest, BatchReplyPreservesEstimateBitPatterns) {
  BatchResult batch;
  QueryResult fine;
  fine.status = Status::OK();
  fine.estimate = 0.1 + 0.2;  // 0.30000000000000004 — exact bits must survive
  fine.latency_ns = 12345;
  fine.explanation = "line one\nline two";
  QueryResult tiny;
  tiny.status = Status::OK();
  tiny.estimate = 5e-324;  // smallest subnormal
  QueryResult failed;
  failed.status = Status::InvalidArgument("bad query");
  batch.results = {fine, tiny, failed};
  batch.stats.ok = 2;
  batch.stats.failed = 1;
  batch.stats.wall_ns = 777;
  batch.stats.p50_latency_ns = 10;
  batch.stats.p95_latency_ns = 20;
  batch.stats.max_latency_ns = 30;

  Result<BatchReplyFrame> decoded =
      DecodeBatchReply(EncodeBatchReply(batch, /*explain=*/true));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const BatchReplyFrame& reply = decoded.value();
  ASSERT_EQ(reply.items.size(), 3u);
  EXPECT_TRUE(reply.items[0].ok);
  EXPECT_EQ(reply.items[0].estimate, 0.1 + 0.2);
  EXPECT_EQ(reply.items[0].latency_ns, 12345u);
  EXPECT_EQ(reply.items[0].explanation, "line one\nline two");
  EXPECT_EQ(reply.items[1].estimate, 5e-324);
  EXPECT_FALSE(reply.items[2].ok);
  EXPECT_EQ(reply.items[2].error, failed.status.ToString());
  EXPECT_EQ(reply.stats.ok, 2u);
  EXPECT_EQ(reply.stats.failed, 1u);
  EXPECT_EQ(reply.stats.wall_ns, 777u);
  EXPECT_EQ(reply.stats.max_latency_ns, 30u);

  // Trailing garbage after a well-formed reply is corruption, not slack.
  std::string padded = EncodeBatchReply(batch, true) + "zz";
  EXPECT_FALSE(DecodeBatchReply(padded).ok());
}

TEST(NetClientTest, FormatBatchReplyMatchesHarnessShape) {
  BatchResult batch;
  QueryResult one;
  one.status = Status::OK();
  one.estimate = 150.0;
  one.latency_ns = 42000;
  batch.results = {one};
  batch.stats.ok = 1;
  Result<BatchReplyFrame> reply =
      DecodeBatchReply(EncodeBatchReply(batch, false));
  ASSERT_TRUE(reply.ok());
  const std::string text = FormatBatchReply(reply.value(), false);
  EXPECT_EQ(text.rfind("ok batch n=1 ok=1 err=0 us=", 0), 0u) << text;
  EXPECT_NE(text.find("\n0 ok 150 us=42\n"), std::string::npos) << text;
}

TEST(NetClientTest, ParseHostPortAcceptsValidAndRejectsJunk) {
  Result<HostPort> parsed = ParseHostPort("127.0.0.1:8080");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().host, "127.0.0.1");
  EXPECT_EQ(parsed.value().port, 8080);

  EXPECT_FALSE(ParseHostPort("no-port-here").ok());
  EXPECT_FALSE(ParseHostPort("host:notanumber").ok());
  EXPECT_FALSE(ParseHostPort("host:99999").ok());
  EXPECT_FALSE(ParseHostPort(":1234").ok());
}

}  // namespace
}  // namespace net
}  // namespace xcluster
