#include "net/frame.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/io/bytes.h"
#include "common/io/crc32c.h"
#include "common/rng.h"

namespace xcluster {
namespace net {
namespace {

Frame MakeFrame(FrameType type, std::string payload, uint8_t flags = 0) {
  Frame frame;
  frame.type = type;
  frame.flags = flags;
  frame.payload = std::move(payload);
  return frame;
}

std::string Encode(const Frame& frame) {
  std::string wire;
  EncodeFrame(frame, &wire);
  return wire;
}

/// Feeds `wire` and expects exactly one clean frame out.
Frame DecodeOne(const std::string& wire) {
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame frame;
  bool have_frame = false;
  Status status = decoder.Next(&frame, &have_frame);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(have_frame);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  return frame;
}

TEST(NetFrameTest, EmptyPayloadRoundTrips) {
  Frame decoded = DecodeOne(Encode(MakeFrame(FrameType::kGoodbye, "")));
  EXPECT_EQ(decoded.type, FrameType::kGoodbye);
  EXPECT_EQ(decoded.flags, 0);
  EXPECT_TRUE(decoded.payload.empty());
}

TEST(NetFrameTest, RoundTripPropertyOverRandomPayloads) {
  // Random payloads (arbitrary bytes, length 0..4096) across all frame
  // types, encoded back-to-back and fed to one decoder in random-sized
  // chunks — the stream must reassemble to exactly the input sequence.
  Rng rng(20260805);
  std::vector<Frame> frames;
  std::string wire;
  for (int i = 0; i < 64; ++i) {
    std::string payload(rng.Uniform(4097), '\0');
    for (char& byte : payload) {
      byte = static_cast<char>(rng.Uniform(256));
    }
    const FrameType type = static_cast<FrameType>(1 + rng.Uniform(8));
    frames.push_back(
        MakeFrame(type, std::move(payload),
                  static_cast<uint8_t>(rng.Uniform(256))));
    EncodeFrame(frames.back(), &wire);
  }

  FrameDecoder decoder;
  size_t offset = 0;
  size_t decoded_count = 0;
  while (decoded_count < frames.size()) {
    if (offset < wire.size()) {
      const size_t chunk = 1 + rng.Uniform(1500);
      const size_t n = std::min(chunk, wire.size() - offset);
      decoder.Feed(wire.data() + offset, n);
      offset += n;
    }
    for (;;) {
      Frame frame;
      bool have_frame = false;
      ASSERT_TRUE(decoder.Next(&frame, &have_frame).ok());
      if (!have_frame) break;
      ASSERT_LT(decoded_count, frames.size());
      EXPECT_EQ(frame.type, frames[decoded_count].type);
      EXPECT_EQ(frame.flags, frames[decoded_count].flags);
      EXPECT_EQ(frame.payload, frames[decoded_count].payload);
      ++decoded_count;
    }
    ASSERT_TRUE(offset < wire.size() || decoded_count == frames.size())
        << "decoder stalled with the full stream fed";
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(NetFrameTest, EveryBitFlipIsRejectedOrStalls) {
  // The CRC covers the length field and the payload, so no single-bit
  // corruption may ever yield a decoded frame. Two outcomes are legal:
  // Corruption (CRC/reserved/type/length checks) or a stall (a flip that
  // grows the length field makes the decoder wait for bytes that never
  // come) — never a successful decode.
  const std::string wire =
      Encode(MakeFrame(FrameType::kCommand, "estimate db //movie/title"));
  for (size_t bit = 0; bit < wire.size() * 8; ++bit) {
    std::string corrupt = wire;
    corrupt[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(corrupt[bit / 8]) ^ (1u << (bit % 8)));
    FrameDecoder decoder;
    decoder.Feed(corrupt.data(), corrupt.size());
    Frame frame;
    bool have_frame = false;
    Status status = decoder.Next(&frame, &have_frame);
    EXPECT_FALSE(status.ok() && have_frame)
        << "bit " << bit << " flipped yet a frame decoded";
  }
}

TEST(NetFrameTest, TruncationAtEveryByteOffsetStallsCleanly) {
  const std::string wire =
      Encode(MakeFrame(FrameType::kResponse, "ok estimate 150 us=12\n"));
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(wire.data(), cut);
    Frame frame;
    bool have_frame = false;
    Status status = decoder.Next(&frame, &have_frame);
    ASSERT_TRUE(status.ok()) << "cut at " << cut << ": " << status.ToString();
    EXPECT_FALSE(have_frame) << "cut at " << cut;
    EXPECT_EQ(decoder.buffered_bytes(), cut);  // mid-frame close is visible

    // The remainder completes the frame: truncation loses nothing.
    decoder.Feed(wire.data() + cut, wire.size() - cut);
    ASSERT_TRUE(decoder.Next(&frame, &have_frame).ok());
    ASSERT_TRUE(have_frame) << "cut at " << cut;
    EXPECT_EQ(frame.payload, "ok estimate 150 us=12\n");
  }
}

TEST(NetFrameTest, OversizedFrameRejectedFromHeaderAlone) {
  FrameDecoder decoder(/*max_payload_bytes=*/1024);
  // Hand the decoder just the 4-byte length prefix declaring 2 MiB: it must
  // reject from the declared length, before any payload is buffered.
  std::string prefix;
  StringSink sink(&prefix);
  PutFixed32(&sink, 2u << 20);
  decoder.Feed(prefix.data(), prefix.size());
  Frame frame;
  bool have_frame = false;
  Status status = decoder.Next(&frame, &have_frame);
  EXPECT_TRUE(status.code() == Status::Code::kCorruption) << status.ToString();
  EXPECT_NE(status.ToString().find("exceeds"), std::string::npos)
      << status.ToString();
  EXPECT_FALSE(have_frame);

  // Poisoned: even a valid frame is refused afterwards.
  const std::string good = Encode(MakeFrame(FrameType::kHello, "x"));
  decoder.Feed(good.data(), good.size());
  EXPECT_TRUE(decoder.Next(&frame, &have_frame).code() == Status::Code::kCorruption);
}

TEST(NetFrameTest, NonzeroReservedFieldIsCorruption) {
  // Craft a frame with reserved bytes set and a *valid* CRC over them, to
  // exercise the reserved-field check itself rather than the CRC.
  const std::string payload = "payload";
  std::string wire;
  StringSink sink(&wire);
  PutFixed32(&sink, static_cast<uint32_t>(payload.size()));
  PutFixed8(&sink, static_cast<uint8_t>(FrameType::kCommand));
  PutFixed8(&sink, 0);  // flags
  PutFixed8(&sink, 1);  // reserved, deliberately nonzero
  PutFixed8(&sink, 0);
  uint32_t crc = crc32c::Value(wire.data(), 8);
  crc = crc32c::Extend(crc, payload.data(), payload.size());
  PutFixed32(&sink, crc32c::Mask(crc));
  sink.Append(payload);

  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame frame;
  bool have_frame = false;
  Status status = decoder.Next(&frame, &have_frame);
  EXPECT_TRUE(status.code() == Status::Code::kCorruption) << status.ToString();
  EXPECT_NE(status.ToString().find("reserved"), std::string::npos)
      << status.ToString();
}

TEST(NetFrameTest, UnknownFrameTypeIsCorruption) {
  const std::string wire =
      Encode(MakeFrame(static_cast<FrameType>(99), "mystery"));
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame frame;
  bool have_frame = false;
  Status status = decoder.Next(&frame, &have_frame);
  EXPECT_TRUE(status.code() == Status::Code::kCorruption) << status.ToString();
  EXPECT_NE(status.ToString().find("unknown frame type"), std::string::npos)
      << status.ToString();
}

TEST(NetFrameTest, BufferedBytesTracksConsumedPrefix) {
  const std::string first = Encode(MakeFrame(FrameType::kHello, "a"));
  const std::string second = Encode(MakeFrame(FrameType::kGoodbye, "bb"));
  FrameDecoder decoder;
  decoder.Feed(first.data(), first.size());
  decoder.Feed(second.data(), second.size() - 1);  // hold back one byte

  Frame frame;
  bool have_frame = false;
  ASSERT_TRUE(decoder.Next(&frame, &have_frame).ok());
  ASSERT_TRUE(have_frame);
  EXPECT_EQ(frame.payload, "a");
  // The incomplete second frame is still pending — that is exactly the
  // "peer vanished mid-frame" signal the server counts.
  EXPECT_EQ(decoder.buffered_bytes(), second.size() - 1);

  decoder.Feed(second.data() + second.size() - 1, 1);
  ASSERT_TRUE(decoder.Next(&frame, &have_frame).ok());
  ASSERT_TRUE(have_frame);
  EXPECT_EQ(frame.payload, "bb");
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace net
}  // namespace xcluster
