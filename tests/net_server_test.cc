#include "net/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "service/harness.h"
#include "service/service.h"

namespace xcluster {
namespace net {
namespace {

XCluster MakeFixture() {
  GraphSynopsis synopsis;
  SynNodeId r = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("A", ValueType::kNone, 10.0);
  SynNodeId b = synopsis.AddNode("B", ValueType::kNone, 100.0);
  synopsis.AddEdge(r, a, 10.0);
  synopsis.AddEdge(a, b, 10.0);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  return XCluster(std::move(synopsis));
}

/// Spins (up to ~5s) until `done` holds; the event loop runs on its own
/// thread, so observable effects of a disconnect are eventually-consistent.
bool WaitFor(const std::function<bool()>& done) {
  for (int i = 0; i < 5000; ++i) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

class NetServerTest : public ::testing::Test {
 protected:
  NetServerTest() {
    ServiceOptions options;
    options.executor.num_threads = 2;
    service_ = std::make_unique<EstimationService>(options);
    service_->store().Install("books", MakeFixture());
  }

  /// Starts a loopback server with the given options (host/port forced).
  void StartServer(NetServerOptions options = {}) {
    options.host = "127.0.0.1";
    options.port = 0;
    server_ = std::make_unique<NetServer>(service_.get(), options);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  NetClient ConnectOrDie() {
    Result<NetClient> client = NetClient::Connect("127.0.0.1",
                                                  server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::unique_ptr<EstimationService> service_;
  std::unique_ptr<NetServer> server_;
};

TEST_F(NetServerTest, CommandRoundTripMatchesStdioResponses) {
  StartServer();
  NetClient client = ConnectOrDie();
  EXPECT_EQ(client.negotiated_version(), kProtocolMaxVersion);

  Result<std::string> reply = client.Command("estimate books /A");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().rfind("ok estimate 10 us=", 0), 0u)
      << reply.value();

  reply = client.Command("list");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().rfind("ok list 1\n", 0), 0u) << reply.value();

  reply = client.Command("estimate missing /A");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().rfind("err NotFound", 0), 0u) << reply.value();

  // The text `batch` command needs follow-up lines, which frames don't
  // have; the transport directs callers to the packed batch frame.
  reply = client.Command("batch books 2");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().rfind("err batch requires", 0), 0u)
      << reply.value();

  EXPECT_TRUE(client.Close().ok());
  EXPECT_TRUE(WaitFor([&] { return server_->active_connections() == 0; }));
}

TEST_F(NetServerTest, BatchFrameIsBitIdenticalToInProcessRun) {
  StartServer();
  std::vector<std::string> queries = {"/A", "/A/B", "][broken", "/A"};
  // In-process reference run on an identical second service, so the
  // remote run's plan/reach caches start equally cold.
  EstimationService reference;
  reference.store().Install("books", MakeFixture());
  BatchResult expected = reference.EstimateBatch("books", queries, {});

  NetClient client = ConnectOrDie();
  Result<BatchReplyFrame> reply = client.Batch("books", queries, {});
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.value().items.size(), expected.results.size());
  for (size_t i = 0; i < expected.results.size(); ++i) {
    const BatchReplyItem& item = reply.value().items[i];
    EXPECT_EQ(item.ok, expected.results[i].status.ok()) << i;
    if (item.ok) {
      // PutDouble ships the IEEE-754 bit pattern, so exact equality is
      // the contract, not an approximation.
      EXPECT_EQ(item.estimate, expected.results[i].estimate) << i;
    } else {
      EXPECT_EQ(item.error, expected.results[i].status.ToString()) << i;
    }
  }
  EXPECT_EQ(reply.value().stats.ok, expected.stats.ok);
  EXPECT_EQ(reply.value().stats.failed, expected.stats.failed);
}

TEST_F(NetServerTest, BatchEstimatesAreWorkerCountInvariant) {
  StartServer();
  std::vector<std::string> queries;
  for (int i = 0; i < 200; ++i) {
    queries.push_back(i % 2 == 0 ? "/A" : "/A/B");
  }
  NetClient client = ConnectOrDie();
  Result<BatchReplyFrame> serial = client.Batch("books", queries, {});
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  ServiceOptions wide;
  wide.executor.num_threads = 8;
  EstimationService wide_service(wide);
  wide_service.store().Install("books", MakeFixture());
  NetServerOptions net_options;
  net_options.host = "127.0.0.1";
  NetServer wide_server(&wide_service, net_options);
  ASSERT_TRUE(wide_server.Start().ok());
  Result<NetClient> wide_client =
      NetClient::Connect("127.0.0.1", wide_server.port());
  ASSERT_TRUE(wide_client.ok());
  Result<BatchReplyFrame> parallel =
      wide_client.value().Batch("books", queries, {});
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ASSERT_EQ(parallel.value().items.size(), serial.value().items.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(parallel.value().items[i].estimate,
              serial.value().items[i].estimate)
        << queries[i];
  }
}

TEST_F(NetServerTest, OversizedFrameRejectedWithErrorFrame) {
  NetServerOptions options;
  options.max_frame_bytes = 1024;
  StartServer(options);
  NetClient client = ConnectOrDie();

  Result<std::string> reply =
      client.Command("estimate books " + std::string(4096, 'x'));
  EXPECT_FALSE(reply.ok());
  EXPECT_NE(reply.status().ToString().find("exceeds"), std::string::npos)
      << reply.status().ToString();

  NetServer::Stats stats = server_->stats();
  EXPECT_GE(stats.protocol_errors, 1u);
  EXPECT_TRUE(WaitFor([&] { return server_->active_connections() == 0; }));
}

TEST_F(NetServerTest, MidFrameDisconnectIsCountedAndReleasesConnection) {
  StartServer();
  {
    Result<ScopedFd> raw = TcpConnect("127.0.0.1", server_->port());
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    ASSERT_TRUE(WaitFor([&] { return server_->active_connections() == 1; }));

    // First half of a legitimate hello frame, then vanish.
    Frame hello;
    hello.type = FrameType::kHello;
    hello.payload = EncodeHello(HelloRequest{});
    std::string wire;
    EncodeFrame(hello, &wire);
    ASSERT_TRUE(
        WriteAll(raw.value().get(), wire.data(), wire.size() / 2).ok());
    // Let the server observe the partial frame before the close.
    ASSERT_TRUE(WaitFor([&] { return server_->stats().bytes_rx > 0; }));
  }  // ScopedFd closes the socket mid-frame

  EXPECT_TRUE(WaitFor(
      [&] { return server_->stats().midframe_disconnects == 1; }));
  EXPECT_TRUE(WaitFor([&] { return server_->active_connections() == 0; }));
}

TEST_F(NetServerTest, GarbageBeforeHelloGetsProtocolError) {
  StartServer();
  Result<ScopedFd> raw = TcpConnect("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());
  // A valid frame of the wrong type: command before hello.
  Frame premature;
  premature.type = FrameType::kCommand;
  premature.payload = "estimate books /A";
  std::string wire;
  EncodeFrame(premature, &wire);
  ASSERT_TRUE(WriteAll(raw.value().get(), wire.data(), wire.size()).ok());

  // The error frame comes back, then the server closes.
  FrameDecoder decoder;
  char chunk[4096];
  Frame reply;
  bool have_frame = false;
  while (!have_frame) {
    size_t got = 0;
    ASSERT_TRUE(ReadSome(raw.value().get(), chunk, sizeof(chunk), &got).ok());
    ASSERT_GT(got, 0u) << "server closed before sending the error frame";
    decoder.Feed(chunk, got);
    ASSERT_TRUE(decoder.Next(&reply, &have_frame).ok());
  }
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_NE(reply.payload.find("expected hello"), std::string::npos)
      << reply.payload;
  EXPECT_TRUE(WaitFor([&] { return server_->active_connections() == 0; }));
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(NetServerTest, ConnectionCapShedsWithCapacityError) {
  NetServerOptions options;
  options.max_connections = 2;
  StartServer(options);

  NetClient first = ConnectOrDie();
  NetClient second = ConnectOrDie();
  ASSERT_TRUE(WaitFor([&] { return server_->active_connections() == 2; }));

  Result<NetClient> third = NetClient::Connect("127.0.0.1", server_->port());
  EXPECT_FALSE(third.ok());
  EXPECT_NE(third.status().ToString().find("connection capacity"),
            std::string::npos)
      << third.status().ToString();
  EXPECT_TRUE(WaitFor([&] { return server_->stats().rejected == 1; }));

  // The admitted connections keep working while the cap sheds the third.
  Result<std::string> reply = first.Command("estimate books /A");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().rfind("ok estimate", 0), 0u);

  // Releasing one slot re-opens admission.
  EXPECT_TRUE(second.Close().ok());
  ASSERT_TRUE(WaitFor([&] { return server_->active_connections() == 1; }));
  Result<NetClient> fourth = NetClient::Connect("127.0.0.1", server_->port());
  EXPECT_TRUE(fourth.ok()) << fourth.status().ToString();
}

TEST_F(NetServerTest, QuitCommandClosesTheConnection) {
  StartServer();
  NetClient client = ConnectOrDie();
  Result<std::string> reply = client.Command("quit");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value(), "ok bye\n");
  EXPECT_TRUE(WaitFor([&] { return server_->active_connections() == 0; }));
}

TEST_F(NetServerTest, DrainFinishesInFlightConnectionsAndStops) {
  StartServer();
  NetClient client = ConnectOrDie();
  ASSERT_TRUE(WaitFor([&] { return server_->active_connections() == 1; }));

  server_->RequestDrain();
  server_->AwaitTermination();
  EXPECT_EQ(server_->active_connections(), 0u);

  // Drained server no longer accepts.
  Result<NetClient> late = NetClient::Connect("127.0.0.1", server_->port());
  EXPECT_FALSE(late.ok());
}

TEST_F(NetServerTest, DrainViaWakePipeByte) {
  StartServer();
  // What a SIGTERM handler does: one write(2) on the drain fd.
  const char byte = 1;
  ASSERT_EQ(::write(server_->drain_fd(), &byte, 1), 1);
  server_->AwaitTermination();
  EXPECT_EQ(server_->active_connections(), 0u);
}

TEST_F(NetServerTest, FaultSuiteLeavesNoConnectionBehind) {
  NetServerOptions options;
  options.max_frame_bytes = 4096;
  StartServer(options);

  // 1. Abrupt close with no traffic at all.
  { auto raw = TcpConnect("127.0.0.1", server_->port()); }
  // 2. Mid-frame disconnect.
  {
    auto raw = TcpConnect("127.0.0.1", server_->port());
    ASSERT_TRUE(raw.ok());
    Frame hello;
    hello.type = FrameType::kHello;
    hello.payload = EncodeHello(HelloRequest{});
    std::string wire;
    EncodeFrame(hello, &wire);
    ASSERT_TRUE(WriteAll(raw.value().get(), wire.data(), 5).ok());
    ASSERT_TRUE(WaitFor([&] { return server_->stats().bytes_rx >= 5; }));
  }
  // 3. Oversized frame.
  {
    Result<NetClient> client =
        NetClient::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok());
    Result<std::string> reply =
        client.value().Command(std::string(1 << 20, 'x'));
    EXPECT_FALSE(reply.ok());
  }
  // 4. Pure garbage bytes.
  {
    auto raw = TcpConnect("127.0.0.1", server_->port());
    ASSERT_TRUE(raw.ok());
    const std::string garbage = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(
        WriteAll(raw.value().get(), garbage.data(), garbage.size()).ok());
    // "GET " decodes as a huge length: the server answers with an error
    // frame and closes; we just vanish without reading it.
  }
  // 5. A well-behaved client, to prove service continues.
  {
    NetClient client = ConnectOrDie();
    Result<std::string> reply = client.Command("estimate books /A/B");
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply.value().rfind("ok estimate 100 us=", 0), 0u)
        << reply.value();
  }

  EXPECT_TRUE(WaitFor([&] { return server_->active_connections() == 0; }))
      << "leaked connections: " << server_->active_connections();
  NetServer::Stats stats = server_->stats();
  EXPECT_GE(stats.midframe_disconnects, 1u);
  EXPECT_GE(stats.protocol_errors, 1u);
  EXPECT_GE(stats.accepted, 5u);
}

}  // namespace
}  // namespace net
}  // namespace xcluster
