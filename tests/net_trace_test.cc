// Protocol-v3 observability over a real socket: trace-context propagation
// from client through the server into the flight ring and span recorder,
// the trailing trace-id echo, the typed kStats/kFlight frames, and strict
// v1/v2 interop (old peers never see any v3 bytes).

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/io/bytes.h"
#include "common/json.h"
#include "common/telemetry/telemetry.h"
#include "common/telemetry/trace.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "service/service.h"

namespace xcluster {
namespace net {
namespace {

XCluster MakeFixture() {
  GraphSynopsis synopsis;
  SynNodeId r = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("A", ValueType::kNone, 10.0);
  SynNodeId b = synopsis.AddNode("B", ValueType::kNone, 100.0);
  synopsis.AddEdge(r, a, 10.0);
  synopsis.AddEdge(a, b, 10.0);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  return XCluster(std::move(synopsis));
}

/// A frame client pinned to an arbitrary protocol version — simulates an
/// old (v1/v2) peer talking to a new server.
class PinnedClient {
 public:
  static void Connect(uint16_t port, uint32_t max_version,
                      std::unique_ptr<PinnedClient>* out) {
    Result<ScopedFd> fd = TcpConnect("127.0.0.1", port, 2000);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    auto client = std::unique_ptr<PinnedClient>(
        new PinnedClient(std::move(fd).value()));
    HelloRequest hello;
    hello.min_version = kProtocolMinVersion;
    hello.max_version = max_version;
    ASSERT_TRUE(client->Send(FrameType::kHello, EncodeHello(hello)).ok());
    Frame ack;
    ASSERT_TRUE(client->Read(&ack).ok());
    ASSERT_EQ(ack.type, FrameType::kHelloAck);
    Result<uint32_t> version = DecodeHelloAck(ack.payload);
    ASSERT_TRUE(version.ok());
    client->version_ = version.value();
    *out = std::move(client);
  }

  Status Send(FrameType type, const std::string& payload) {
    Frame frame;
    frame.type = type;
    frame.payload = payload;
    std::string wire;
    EncodeFrame(frame, &wire);
    return WriteAll(fd_.get(), wire.data(), wire.size());
  }

  Status Read(Frame* frame) {
    for (;;) {
      bool have_frame = false;
      XC_RETURN_IF_ERROR(decoder_.Next(frame, &have_frame));
      if (have_frame) return Status::OK();
      char chunk[4096];
      size_t got = 0;
      XC_RETURN_IF_ERROR(ReadSome(fd_.get(), chunk, sizeof(chunk), &got));
      if (got == 0) return Status::IOError("server closed the connection");
      decoder_.Feed(chunk, got);
    }
  }

  uint32_t version() const { return version_; }

 private:
  explicit PinnedClient(ScopedFd fd) : fd_(std::move(fd)) {}

  ScopedFd fd_;
  FrameDecoder decoder_{kDefaultMaxPayloadBytes};
  uint32_t version_ = 0;
};

class NetTraceTest : public ::testing::Test {
 protected:
  NetTraceTest() {
    ServiceOptions options;
    options.executor.num_threads = 2;
    options.flight_recorder_capacity = 64;
    service_ = std::make_unique<EstimationService>(options);
    service_->store().Install("books", MakeFixture());
  }

  void StartServer(double trace_sample = 0.0) {
    NetServerOptions options;
    options.host = "127.0.0.1";
    options.port = 0;
    options.trace_sample = trace_sample;
    server_ = std::make_unique<NetServer>(service_.get(), options);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  NetClient ConnectOrDie() {
    Result<NetClient> client =
        NetClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::unique_ptr<EstimationService> service_;
  std::unique_ptr<NetServer> server_;
};

TEST_F(NetTraceTest, ClientTraceIdReachesFlightRingAndEchoesBack) {
  StartServer();
  NetClient client = ConnectOrDie();
  ASSERT_GE(client.negotiated_version(), kProtocolVersionTrace);

  BatchOptions options;
  options.trace.trace_id = 0x1122334455667788ull;
  options.trace.sampled = false;
  Result<BatchReplyFrame> reply =
      client.Batch("books", {"/A", "/A/B"}, options);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().trace_id, 0x1122334455667788ull);
  EXPECT_EQ(client.last_trace_id(), 0x1122334455667788ull);

  const std::vector<FlightRecord> records = service_->flight().Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].trace_id, 0x1122334455667788ull);
  EXPECT_EQ(records[0].queries, 2u);
  EXPECT_EQ(records[0].status, FlightStatus::kOk);
  EXPECT_GT(records[0].bytes, 0u);  // wire size of the request frame
}

TEST_F(NetTraceTest, ServerAssignsTraceIdWhenClientSendsNone) {
  StartServer();
  NetClient client = ConnectOrDie();
  Result<BatchReplyFrame> reply = client.Batch("books", {"/A"});
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_NE(reply.value().trace_id, 0u);
  const std::vector<FlightRecord> records = service_->flight().Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].trace_id, reply.value().trace_id);
}

// Span *recording* is instrumentation and compiles out with telemetry;
// everything else in this file (trace ids, echoes, flight records, typed
// frames) is product behavior and runs in both configurations.
#if XCLUSTER_TELEMETRY_ENABLED
TEST_F(NetTraceTest, SampledBatchRecordsSpansCarryingTheTraceId) {
  telemetry::TraceRecorder recorder(1024);
  telemetry::TraceRecorder* previous = telemetry::GlobalTraceRecorder();
  telemetry::InstallGlobalTraceRecorder(&recorder);
  StartServer(/*trace_sample=*/1.0);
  {
    NetClient client = ConnectOrDie();
    BatchOptions options;
    options.trace.trace_id = 0xabcdef01ull;
    options.trace.sampled = true;
    Result<BatchReplyFrame> reply = client.Batch("books", {"/A"}, options);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }
  server_->Stop();  // all request spans closed before we snapshot
  telemetry::InstallGlobalTraceRecorder(previous);

  std::set<std::string> names;
  for (const telemetry::TraceRecorder::Event& event :
       recorder.SnapshotEvents()) {
    if (event.trace_id == 0xabcdef01ull) names.insert(event.name);
  }
  // The request's path across layers: socket dispatch, admission,
  // executor task, lane-group estimation (batches run the vectorized
  // engine by default, so the estimation span is the group DP rather
  // than the scalar per-query service.query span).
  EXPECT_TRUE(names.count("net.batch")) << names.size() << " span names";
  EXPECT_TRUE(names.count("admission.admit"));
  EXPECT_TRUE(names.count("executor.task"));
  EXPECT_TRUE(names.count("estimate.batch_group"));
}
#endif  // XCLUSTER_TELEMETRY_ENABLED

TEST_F(NetTraceTest, V2PeerBatchHasNoTrailingEchoAndStillRecords) {
  StartServer();
  std::unique_ptr<PinnedClient> peer;
  ASSERT_NO_FATAL_FAILURE(
      PinnedClient::Connect(server_->port(), kProtocolVersionQos, &peer));
  ASSERT_EQ(peer->version(), kProtocolVersionQos);

  BatchRequestFrame request;
  request.collection = "books";
  request.queries = {"/A"};
  ASSERT_TRUE(peer->Send(FrameType::kBatch,
                         EncodeBatchRequest(request, peer->version()))
                  .ok());
  Frame reply;
  ASSERT_TRUE(peer->Read(&reply).ok());
  ASSERT_EQ(reply.type, FrameType::kBatchReply);
  Result<BatchReplyFrame> decoded = DecodeBatchReply(reply.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // No v3 echo for a v2 peer — the payload ends exactly where v2 says.
  EXPECT_EQ(decoded.value().trace_id, 0u);
  // The server still minted an id so the batch is findable in the ring.
  const std::vector<FlightRecord> records = service_->flight().Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_NE(records[0].trace_id, 0u);
}

TEST_F(NetTraceTest, ObservabilityFramesRejectedBelowV3) {
  StartServer();
  std::unique_ptr<PinnedClient> peer;
  ASSERT_NO_FATAL_FAILURE(
      PinnedClient::Connect(server_->port(), kProtocolVersionQos, &peer));

  ASSERT_TRUE(peer->Send(FrameType::kStats,
                         EncodeStatsRequest(StatsFormat::kPrometheus))
                  .ok());
  Frame reply;
  ASSERT_TRUE(peer->Read(&reply).ok());
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_NE(reply.payload.find("protocol v3"), std::string::npos)
      << reply.payload;
}

TEST_F(NetTraceTest, StatsScrapeAndFlightDumpRoundTrip) {
  StartServer();
  NetClient client = ConnectOrDie();
  Result<BatchReplyFrame> reply = client.Batch("books", {"/A"});
  ASSERT_TRUE(reply.ok());

  Result<std::string> prom = client.StatsScrape(StatsFormat::kPrometheus);
  ASSERT_TRUE(prom.ok()) << prom.status().ToString();
  EXPECT_NE(prom.value().find("# TYPE"), std::string::npos);

  Result<std::string> json = client.StatsScrape(StatsFormat::kJson);
  ASSERT_TRUE(json.ok());
  EXPECT_TRUE(ParseJson(json.value()).ok());

  Result<std::string> flight = client.FlightDump();
  ASSERT_TRUE(flight.ok()) << flight.status().ToString();
  Result<JsonValue> parsed = ParseJson(flight.value());
  ASSERT_TRUE(parsed.ok());
  const JsonValue* records = parsed.value().Find("flight_records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->items().size(), 1u);
  EXPECT_EQ(records->items()[0].Find("trace_id")->as_string(),
            telemetry::TraceIdHex(reply.value().trace_id));
}

TEST(BatchRequestCodecTest, UnknownFlagBitsAreRejected) {
  std::string payload;
  StringSink sink(&payload);
  PutLengthPrefixed(&sink, "books");
  PutFixed64(&sink, 0);   // deadline
  PutFixed8(&sink, 8);    // bit3 is undefined in every protocol version
  PutVarint64(&sink, 0);  // no queries
  Result<BatchRequestFrame> decoded = DecodeBatchRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("unknown flags"),
            std::string::npos);
}

TEST(BatchRequestCodecTest, TraceFlagWithZeroIdIsRejected) {
  std::string payload;
  StringSink sink(&payload);
  PutLengthPrefixed(&sink, "books");
  PutFixed64(&sink, 0);  // deadline
  PutFixed8(&sink, 4);   // trace present...
  PutFixed64(&sink, 0);  // ...but id 0
  PutFixed8(&sink, 1);
  PutVarint64(&sink, 0);
  Result<BatchRequestFrame> decoded = DecodeBatchRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("zero id"), std::string::npos);
}

TEST(BatchRequestCodecTest, TraceContextRoundTripsAtV3Only) {
  BatchRequestFrame request;
  request.collection = "books";
  request.options.trace.trace_id = 0xfeed;
  request.options.trace.sampled = true;
  request.queries = {"/A"};

  Result<BatchRequestFrame> v3 =
      DecodeBatchRequest(EncodeBatchRequest(request, kProtocolVersionTrace));
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3.value().options.trace.trace_id, 0xfeedu);
  EXPECT_TRUE(v3.value().options.trace.sampled);

  // Encoding for a v2 peer silently drops the context (correctness never
  // depends on it), and the resulting bytes decode with no trace fields.
  Result<BatchRequestFrame> v2 =
      DecodeBatchRequest(EncodeBatchRequest(request, kProtocolVersionQos));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value().options.trace.trace_id, 0u);
}

}  // namespace
}  // namespace net
}  // namespace xcluster
