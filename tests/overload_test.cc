// Overload and fault scenarios for the QoS-enabled serving stack: flash
// crowds, quota exhaustion, slow consumers, and the client retry contract,
// driven against live in-process services and socket servers. The
// scenario shapes mirror scripts/chaos_smoke.sh; these are the
// deterministic in-process versions that run under ASan/TSan in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/telemetry/metrics.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "service/admission.h"
#include "service/service.h"

namespace xcluster {
namespace net {
namespace {

using telemetry::MonotonicNowNs;

XCluster MakeFixture() {
  GraphSynopsis synopsis;
  SynNodeId r = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("A", ValueType::kNone, 10.0);
  SynNodeId b = synopsis.AddNode("B", ValueType::kNone, 100.0);
  synopsis.AddEdge(r, a, 10.0);
  synopsis.AddEdge(a, b, 10.0);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  return XCluster(std::move(synopsis));
}

bool WaitFor(const std::function<bool()>& done) {
  for (int i = 0; i < 5000; ++i) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

// Flash crowd: three bulk floods hammer a quota-limited collection while
// an interactive caller issues point batches against an unlimited one.
// The interactive lane must see zero sheds and bounded latency; the bulk
// lane must be shed and then succeed within its bounded retry budget.
TEST(OverloadTest, FlashCrowdShedsBulkButNotInteractive) {
  ServiceOptions options;
  options.executor.num_threads = 8;
  options.executor.queue_capacity = 1024;
  EstimationService service(options);
  service.store().Install("books", MakeFixture());
  service.store().Install("bulkdata", MakeFixture());
  service.admission().SetQuota("bulkdata", /*rate_per_sec=*/100.0,
                               /*burst=*/16.0);

  constexpr int kFloodThreads = 3;
  constexpr int kBulkBatch = 16;
  std::atomic<int> bulk_sheds{0};
  std::atomic<int> bulk_successes_after_shed{0};
  std::atomic<bool> flood_failed{false};
  std::vector<std::thread> flood;
  flood.reserve(kFloodThreads);
  for (int t = 0; t < kFloodThreads; ++t) {
    flood.emplace_back([&] {
      const std::vector<std::string> queries(kBulkBatch, "/A");
      BatchOptions bulk;
      bulk.lane = Lane::kBulk;
      bool was_shed = false;
      // Bounded retry loop: every flood thread must land one batch after
      // being shed, honoring the server's retry-after hint.
      for (int attempt = 0; attempt < 100; ++attempt) {
        BatchResult batch = service.EstimateBatch("bulkdata", queries, bulk);
        if (batch.admission.ok()) {
          if (was_shed) {
            ++bulk_successes_after_shed;
            return;
          }
          continue;  // admitted before any shed: flood again
        }
        EXPECT_EQ(batch.admission.code(), Status::Code::kUnavailable);
        EXPECT_GT(batch.retry_after_ms, 0u);
        was_shed = true;
        ++bulk_sheds;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(batch.retry_after_ms));
      }
      flood_failed = true;  // never recovered within the retry budget
    });
  }

  // Interactive point batches, issued concurrently with the flood.
  constexpr int kInteractiveBatches = 100;
  std::vector<uint64_t> wall_ns;
  wall_ns.reserve(kInteractiveBatches);
  const std::vector<std::string> point = {"/A", "/A/B", "/A", "/A/B"};
  for (int i = 0; i < kInteractiveBatches; ++i) {
    const uint64_t begin = MonotonicNowNs();
    BatchResult batch = service.EstimateBatch("books", point, BatchOptions{});
    wall_ns.push_back(MonotonicNowNs() - begin);
    ASSERT_TRUE(batch.admission.ok()) << batch.admission.ToString();
    EXPECT_EQ(batch.stats.ok, point.size());
  }
  for (std::thread& thread : flood) thread.join();

  EXPECT_FALSE(flood_failed.load())
      << "a shed bulk client never recovered within its retry budget";
  EXPECT_GT(bulk_sheds.load(), 0);
  EXPECT_EQ(bulk_successes_after_shed.load(), kFloodThreads);

  std::sort(wall_ns.begin(), wall_ns.end());
  const uint64_t p99 = wall_ns[wall_ns.size() * 99 / 100];
  EXPECT_LT(p99, uint64_t{1'000'000'000}) << "interactive p99 " << p99
                                          << "ns under flood";

  const AdmissionController::Stats stats = service.admission().stats();
  EXPECT_EQ(stats.lane_shed[static_cast<size_t>(Lane::kInteractive)], 0u);
  EXPECT_GT(stats.lane_shed[static_cast<size_t>(Lane::kBulk)], 0u);
  EXPECT_GT(stats.shed_quota, 0u);
}

// Quota exhaustion and recovery: a shed batch reports Unavailable on every
// slot plus the batch-level retry-after hint, and the same batch succeeds
// once the hinted wait has refilled the bucket.
TEST(OverloadTest, QuotaShedCarriesRetryAfterAndRecovers) {
  ServiceOptions options;
  options.executor.num_threads = 2;
  EstimationService service(options);
  service.store().Install("books", MakeFixture());
  service.admission().SetQuota("books", /*rate_per_sec=*/200.0,
                               /*burst=*/4.0);

  const std::vector<std::string> queries = {"/A", "/A/B", "/A", "/A/B"};
  BatchResult first = service.EstimateBatch("books", queries, BatchOptions{});
  ASSERT_TRUE(first.admission.ok()) << first.admission.ToString();
  EXPECT_EQ(first.stats.ok, queries.size());

  BatchResult shed = service.EstimateBatch("books", queries, BatchOptions{});
  ASSERT_FALSE(shed.admission.ok());
  EXPECT_EQ(shed.admission.code(), Status::Code::kUnavailable);
  EXPECT_GT(shed.retry_after_ms, 0u);
  ASSERT_EQ(shed.results.size(), queries.size());
  for (const QueryResult& result : shed.results) {
    EXPECT_EQ(result.status.code(), Status::Code::kUnavailable);
  }
  // Nothing reached the workers: the batch was refused as a unit.
  EXPECT_EQ(shed.stats.ok, 0u);

  std::this_thread::sleep_for(
      std::chrono::milliseconds(shed.retry_after_ms + 5));
  BatchResult retried =
      service.EstimateBatch("books", queries, BatchOptions{});
  EXPECT_TRUE(retried.admission.ok()) << retried.admission.ToString();
  EXPECT_EQ(retried.stats.ok, queries.size());
}

// Fail-fast satellite: a batch whose deadline has already elapsed marks
// every remaining query deadline_expired up front — no task dispatch, no
// estimator work.
TEST(OverloadTest, ExpiredBatchFailsFastWithoutDispatch) {
  ServiceOptions options;
  options.executor.num_threads = 2;
  EstimationService service(options);
  service.store().Install("books", MakeFixture());

  const uint64_t dispatched_before = service.admission().stats().dispatched;
  BatchOptions expired;
  expired.deadline_ns = 1;  // relative: expires 1ns after the batch starts
  const std::vector<std::string> queries(64, "/A");
  BatchResult batch = service.EstimateBatch("books", queries, expired);
  EXPECT_TRUE(batch.admission.ok());  // cold EWMA: not shed, just expired
  EXPECT_EQ(batch.stats.ok, 0u);
  EXPECT_EQ(batch.stats.failed, queries.size());
  for (const QueryResult& result : batch.results) {
    EXPECT_EQ(result.status.code(), Status::Code::kDeadlineExceeded);
  }
  // The fail-fast path must not have fed the scheduler at all.
  EXPECT_EQ(service.admission().stats().dispatched, dispatched_before);
}

// Client retry contract over a live socket: a v2 client whose batch is
// shed receives the typed kShed frame (connection stays open), backs off
// per the server hint, and succeeds within its attempt budget.
TEST(OverloadTest, ShedBatchRetriesOverSocketAndSucceeds) {
  ServiceOptions options;
  options.executor.num_threads = 2;
  EstimationService service(options);
  service.store().Install("books", MakeFixture());
  service.admission().SetQuota("books", /*rate_per_sec=*/100.0,
                               /*burst=*/4.0);

  NetServerOptions net_options;
  net_options.host = "127.0.0.1";
  NetServer server(&service, net_options);
  ASSERT_TRUE(server.Start().ok());

  NetClientOptions client_options;
  client_options.retry.max_attempts = 10;
  client_options.retry.initial_backoff_ms = 5;
  Result<NetClient> client =
      NetClient::Connect("127.0.0.1", server.port(), client_options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_GE(client.value().negotiated_version(), kProtocolVersionQos);

  const std::vector<std::string> queries = {"/A", "/A/B", "/A", "/A/B"};
  Result<BatchReplyFrame> first = client.value().Batch("books", queries, {});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(client.value().last_attempts(), 1);

  // Bucket drained: this batch is shed at least once, then admitted after
  // the hinted refill wait. The same connection carries all attempts.
  Result<BatchReplyFrame> second = client.value().Batch("books", queries, {});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(client.value().last_attempts(), 1);
  EXPECT_EQ(second.value().stats.ok, queries.size());
  EXPECT_GE(server.stats().sheds, 1u);

  // With retries disabled the shed surfaces as Unavailable + hint.
  NetClientOptions no_retry;
  Result<NetClient> impatient =
      NetClient::Connect("127.0.0.1", server.port(), no_retry);
  ASSERT_TRUE(impatient.ok());
  Result<BatchReplyFrame> refused =
      impatient.value().Batch("books", queries, {});
  if (!refused.ok()) {
    EXPECT_EQ(refused.status().code(), Status::Code::kUnavailable);
    EXPECT_GT(impatient.value().last_retry_after_ms(), 0u);
    // The kShed frame does not close the connection: the same client can
    // keep issuing commands.
    Result<std::string> still_alive =
        impatient.value().Command("estimate books /A");
    EXPECT_TRUE(still_alive.ok()) << still_alive.status().ToString();
  }
}

// Version fallback: a v1 peer never sees the kShed frame — the shed comes
// back as a plain kError frame, exactly what a v1 client can parse.
TEST(OverloadTest, V1PeerGetsErrorFrameInsteadOfShed) {
  ServiceOptions options;
  EstimationService service(options);
  service.store().Install("books", MakeFixture());
  service.admission().SetQuota("books", /*rate_per_sec=*/1.0, /*burst=*/1.0);

  NetServerOptions net_options;
  net_options.host = "127.0.0.1";
  NetServer server(&service, net_options);
  ASSERT_TRUE(server.Start().ok());

  Result<ScopedFd> raw = TcpConnect("127.0.0.1", server.port());
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  const int fd = raw.value().get();

  auto send_frame = [&](FrameType type, const std::string& payload) {
    Frame frame;
    frame.type = type;
    frame.payload = payload;
    std::string wire;
    EncodeFrame(frame, &wire);
    ASSERT_TRUE(WriteAll(fd, wire.data(), wire.size()).ok());
  };
  FrameDecoder decoder;
  auto read_frame = [&](Frame* frame) {
    bool have_frame = false;
    char chunk[4096];
    while (!have_frame) {
      ASSERT_TRUE(decoder.Next(frame, &have_frame).ok());
      if (have_frame) return;
      size_t got = 0;
      ASSERT_TRUE(ReadSome(fd, chunk, sizeof(chunk), &got).ok());
      ASSERT_GT(got, 0u) << "server closed early";
      decoder.Feed(chunk, got);
    }
  };

  // Handshake capped at v1.
  HelloRequest hello;
  hello.max_version = 1;
  send_frame(FrameType::kHello, EncodeHello(hello));
  Frame ack;
  read_frame(&ack);
  ASSERT_EQ(ack.type, FrameType::kHelloAck);
  Result<uint32_t> version = DecodeHelloAck(ack.payload);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(version.value(), 1u);

  // Drain the one-token bucket, then trigger a shed as a v1 peer.
  BatchRequestFrame request;
  request.collection = "books";
  request.queries = {"/A"};
  send_frame(FrameType::kBatch, EncodeBatchRequest(request, version.value()));
  Frame reply;
  read_frame(&reply);
  ASSERT_EQ(reply.type, FrameType::kBatchReply);

  send_frame(FrameType::kBatch, EncodeBatchRequest(request, version.value()));
  read_frame(&reply);
  EXPECT_EQ(reply.type, FrameType::kError) << "v1 peer must never see kShed";
  EXPECT_NE(reply.payload.find("Unavailable"), std::string::npos)
      << reply.payload;
}

// Slow consumer: a client that floods requests but never reads its
// responses trips the write-buffer cap and is disconnected, while a
// well-behaved client on the same server keeps getting answers.
TEST(OverloadTest, SlowConsumerIsDisconnectedOthersUnaffected) {
  ServiceOptions options;
  options.executor.num_threads = 2;
  EstimationService service(options);
  service.store().Install("books", MakeFixture());

  NetServerOptions net_options;
  net_options.host = "127.0.0.1";
  net_options.max_write_buffer_bytes = 64 * 1024;
  NetServer server(&service, net_options);
  ASSERT_TRUE(server.Start().ok());

  Result<ScopedFd> slow = TcpConnect("127.0.0.1", server.port());
  ASSERT_TRUE(slow.ok());
  const int fd = slow.value().get();
  {
    Frame hello;
    hello.type = FrameType::kHello;
    hello.payload = EncodeHello(HelloRequest{});
    std::string wire;
    EncodeFrame(hello, &wire);
    ASSERT_TRUE(WriteAll(fd, wire.data(), wire.size()).ok());
  }
  // Never read the ack or anything else; blast commands whose responses
  // echo a large token, so the per-connection outbuf outruns the cap no
  // matter how much the kernel socket buffers absorb.
  const std::string big_command(48 * 1024, 'z');
  Frame flood;
  flood.type = FrameType::kCommand;
  flood.payload = big_command;
  std::string wire;
  EncodeFrame(flood, &wire);
  bool write_failed = false;
  for (int i = 0; i < 256 && !write_failed; ++i) {
    // Once the server disconnects us mid-flood the write fails; that is
    // the expected outcome, not an error.
    write_failed = !WriteAll(fd, wire.data(), wire.size()).ok();
  }
  EXPECT_TRUE(
      WaitFor([&] { return server.stats().write_overflows >= 1; }))
      << "slow consumer was never disconnected";

  // Service continues for a client that reads its responses.
  Result<NetClient> healthy = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  Result<std::string> reply = healthy.value().Command("estimate books /A");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().rfind("ok estimate 10 us=", 0), 0u);
  EXPECT_TRUE(WaitFor([&] { return server.active_connections() <= 1; }));
}

// Connect timeout satellite: a connect() against a non-routable address
// returns DeadlineExceeded within the configured budget instead of
// hanging for the kernel's SYN-retry cycle.
TEST(OverloadTest, ConnectTimeoutSurfacesAsDeadlineExceeded) {
  NetClientOptions options;
  options.connect_timeout_ms = 200;
  const uint64_t begin = MonotonicNowNs();
  // TEST-NET-1 (192.0.2.0/24) is reserved and never routable.
  Result<NetClient> client = NetClient::Connect("192.0.2.1", 9, options);
  const uint64_t elapsed_ms = (MonotonicNowNs() - begin) / 1'000'000;
  ASSERT_FALSE(client.ok());
  // Some sandboxes refuse the route immediately (EACCES/ENETUNREACH →
  // IOError); where the packet black-holes, the poll timeout must fire.
  if (client.status().code() == Status::Code::kDeadlineExceeded) {
    EXPECT_NE(client.status().ToString().find("timed out"),
              std::string::npos);
    EXPECT_LT(elapsed_ms, 5000u) << "timeout did not bound the connect";
  }
}

// Determinism gate: estimates with QoS enabled (admission on by default,
// bulk lane, quotas installed) are bit-identical between a 1-worker and an
// 8-worker service.
TEST(OverloadTest, EstimatesAreBitIdenticalAcrossWorkersWithQosEnabled) {
  std::vector<std::string> queries;
  for (int i = 0; i < 200; ++i) {
    queries.push_back(i % 2 == 0 ? "/A" : "/A/B");
  }

  auto run = [&](size_t workers) {
    ServiceOptions options;
    options.executor.num_threads = workers;
    EstimationService service(options);
    service.store().Install("books", MakeFixture());
    service.admission().SetQuota("books", 1e9, 1e9);  // present, never sheds
    BatchOptions bulk;
    bulk.lane = Lane::kBulk;
    return service.EstimateBatch("books", queries, bulk);
  };

  BatchResult serial = run(1);
  BatchResult parallel = run(8);
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  EXPECT_EQ(serial.stats.ok, queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(serial.results[i].status.ok());
    ASSERT_TRUE(parallel.results[i].status.ok());
    // Bit-for-bit, not approximately: the QoS layer reorders scheduling,
    // never arithmetic.
    EXPECT_EQ(serial.results[i].estimate, parallel.results[i].estimate)
        << queries[i];
  }
}

}  // namespace
}  // namespace net
}  // namespace xcluster
