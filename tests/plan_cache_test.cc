// Tests for the compiled-plan cache: unit-level LRU behavior plus the
// serving-layer property it exists for — plans are keyed by snapshot
// generation, so hot-swapping a collection invalidates its cached plans
// naturally and estimates immediately reflect the new synopsis.
#include "estimate/plan_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "estimate/compiled_twig.h"
#include "service/service.h"
#include "synopsis/graph.h"

namespace xcluster {
namespace {

std::shared_ptr<const CompiledTwig> EmptyPlan() {
  return std::make_shared<const CompiledTwig>();
}

TEST(PlanCacheTest, NormalizeQueryTrimsOuterWhitespace) {
  EXPECT_EQ(PlanCache::NormalizeQuery("  //a/b \t"), "//a/b");
  EXPECT_EQ(PlanCache::NormalizeQuery("//a/b"), "//a/b");
  EXPECT_EQ(PlanCache::NormalizeQuery(" \t "), "");
  // Interior whitespace is the parser's business, not the cache key's.
  EXPECT_EQ(PlanCache::NormalizeQuery(" //a[range(1, 2)] "),
            "//a[range(1, 2)]");
}

TEST(PlanCacheTest, GetPutHitMissCounters) {
  PlanCache cache(PlanCache::Options{16, 1});
  EXPECT_EQ(cache.Get(1, "//a"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  auto plan = EmptyPlan();
  cache.Put(1, "//a", plan);
  EXPECT_EQ(cache.Get(1, "//a"), plan);
  EXPECT_EQ(cache.hits(), 1u);

  // Different generation, same text: distinct key.
  EXPECT_EQ(cache.Get(2, "//a"), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, FirstWriterWinsAndLruEvicts) {
  PlanCache cache(PlanCache::Options{2, 1});
  auto first = EmptyPlan();
  cache.Put(1, "//a", first);
  cache.Put(1, "//a", EmptyPlan());  // racing duplicate loses
  EXPECT_EQ(cache.Get(1, "//a"), first);

  cache.Put(1, "//b", EmptyPlan());
  cache.Get(1, "//a");               // refresh: //b becomes LRU
  cache.Put(1, "//c", EmptyPlan());  // evicts //b
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Get(1, "//b"), nullptr);
  EXPECT_NE(cache.Get(1, "//a"), nullptr);
}

TEST(PlanCacheTest, ZeroCapacityDisablesCaching) {
  PlanCache cache(PlanCache::Options{0, 4});
  cache.Put(1, "//a", EmptyPlan());
  EXPECT_EQ(cache.Get(1, "//a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

/// A one-path synopsis R -> A with a configurable A count, so two installs
/// under the same name are distinguishable through the estimate.
XCluster MakeFixture(double a_count) {
  GraphSynopsis synopsis;
  SynNodeId r = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("A", ValueType::kNone, a_count);
  synopsis.AddEdge(r, a, a_count);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  return XCluster(std::move(synopsis));
}

TEST(PlanCacheServiceTest, RepeatedQueriesHitThePlanCache) {
  ServiceOptions options;
  options.executor.num_threads = 0;
  EstimationService service(options);
  service.store().Install("col", MakeFixture(10.0));

  for (int i = 0; i < 5; ++i) {
    QueryResult result = service.EstimateOne("col", "/A");
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.estimate, 10.0);
  }
  EXPECT_EQ(service.plan_cache().misses(), 1u);
  EXPECT_EQ(service.plan_cache().hits(), 4u);
  EXPECT_EQ(service.plan_cache().size(), 1u);

  // Whitespace variants normalize onto the same plan.
  QueryResult padded = service.EstimateOne("col", "  /A ");
  ASSERT_TRUE(padded.status.ok());
  EXPECT_EQ(service.plan_cache().hits(), 5u);
}

TEST(PlanCacheServiceTest, HotSwapInvalidatesCachedPlans) {
  ServiceOptions options;
  options.executor.num_threads = 0;
  EstimationService service(options);
  service.store().Install("col", MakeFixture(10.0));

  QueryResult before = service.EstimateOne("col", "/A");
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.estimate, 10.0);
  EXPECT_EQ(service.plan_cache().misses(), 1u);

  // Hot swap: same name, new synopsis, new generation. The cached plan
  // must not be reused (its key carries the old generation).
  service.store().Install("col", MakeFixture(25.0));
  QueryResult after = service.EstimateOne("col", "/A");
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.estimate, 25.0);
  EXPECT_EQ(service.plan_cache().misses(), 2u);

  // Both generations' plans coexist until the old one ages out.
  EXPECT_EQ(service.plan_cache().size(), 2u);
}

TEST(PlanCacheServiceTest, ParseErrorsAreNotCached) {
  ServiceOptions options;
  options.executor.num_threads = 0;
  EstimationService service(options);
  service.store().Install("col", MakeFixture(10.0));

  for (int i = 0; i < 3; ++i) {
    QueryResult result = service.EstimateOne("col", "][broken");
    EXPECT_EQ(result.status.code(), Status::Code::kInvalidArgument);
  }
  EXPECT_EQ(service.plan_cache().size(), 0u);
  EXPECT_EQ(service.plan_cache().hits(), 0u);
}

TEST(PlanCacheServiceTest, BatchSharesPlansAcrossWorkers) {
  ServiceOptions options;
  options.executor.num_threads = 4;
  EstimationService service(options);
  service.store().Install("col", MakeFixture(10.0));

  std::vector<std::string> queries(64, "/A");
  BatchResult batch = service.EstimateBatch("col", queries);
  EXPECT_EQ(batch.stats.ok, queries.size());
  for (const QueryResult& result : batch.results) {
    EXPECT_EQ(result.estimate, 10.0);
  }
  // Exactly one plan exists; racing compiles may each have missed, but
  // hits + misses account for every lookup and at most a handful missed.
  EXPECT_EQ(service.plan_cache().size(), 1u);
  EXPECT_EQ(service.plan_cache().hits() + service.plan_cache().misses(),
            queries.size());
  EXPECT_GE(service.plan_cache().hits(), queries.size() - 4);
}

}  // namespace
}  // namespace xcluster
