#include "build/pool.h"

#include <gtest/gtest.h>

namespace xcluster {
namespace {

/// Root with several leaf children in two label groups.
GraphSynopsis MakeSynopsis() {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  for (int i = 0; i < 4; ++i) {
    SynNodeId a = synopsis.AddNode("A", ValueType::kNone, 2.0 + i);
    synopsis.AddEdge(root, a, 2.0 + i);
  }
  for (int i = 0; i < 3; ++i) {
    SynNodeId b = synopsis.AddNode("B", ValueType::kNone, 5.0);
    synopsis.AddEdge(root, b, 5.0);
  }
  return synopsis;
}

TEST(PoolTest, EnumeratesCompatiblePairsOnly) {
  GraphSynopsis synopsis = MakeSynopsis();
  std::vector<MergeCandidate> pool =
      BuildPool(synopsis, 100, 0, DeltaOptions());
  // A-pairs: C(4,2)=6; B-pairs: C(3,2)=3. The root (level 1) is excluded.
  EXPECT_EQ(pool.size(), 9u);
  for (const MergeCandidate& candidate : pool) {
    EXPECT_EQ(synopsis.node(candidate.u).label,
              synopsis.node(candidate.v).label);
  }
}

TEST(PoolTest, LevelFilterExcludesHighNodes) {
  GraphSynopsis synopsis = MakeSynopsis();
  // Add a second root-level A so that level-1 nodes exist in group A.
  SynNodeId root = synopsis.root();
  SynNodeId mid = synopsis.AddNode("A", ValueType::kNone, 1.0);
  SynNodeId leaf = synopsis.AddNode("L", ValueType::kNone, 1.0);
  synopsis.AddEdge(root, mid, 1.0);
  synopsis.AddEdge(mid, leaf, 1.0);
  std::vector<MergeCandidate> level0 =
      BuildPool(synopsis, 100, 0, DeltaOptions());
  std::vector<MergeCandidate> level1 =
      BuildPool(synopsis, 100, 1, DeltaOptions());
  // At level 1 the extra A (level 1) pairs with the four leaf As.
  EXPECT_EQ(level0.size(), 9u);
  EXPECT_EQ(level1.size(), 13u);
}

TEST(PoolTest, PoolMaxKeepsBestCandidates) {
  GraphSynopsis synopsis = MakeSynopsis();
  std::vector<MergeCandidate> full =
      BuildPool(synopsis, 100, 0, DeltaOptions());
  std::vector<MergeCandidate> capped =
      BuildPool(synopsis, 3, 0, DeltaOptions());
  EXPECT_EQ(capped.size(), 3u);
  // Every retained candidate is at least as good as the worst overall.
  double worst_full = 0.0;
  for (const MergeCandidate& candidate : full) {
    worst_full = std::max(worst_full, candidate.ratio());
  }
  for (const MergeCandidate& candidate : capped) {
    EXPECT_LE(candidate.ratio(), worst_full + 1e-12);
  }
}

TEST(PoolTest, TypeMismatchExcluded) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a1 = synopsis.AddNode("A", ValueType::kNumeric, 1.0);
  SynNodeId a2 = synopsis.AddNode("A", ValueType::kString, 1.0);
  synopsis.AddEdge(root, a1, 1.0);
  synopsis.AddEdge(root, a2, 1.0);
  EXPECT_TRUE(BuildPool(synopsis, 100, 0, DeltaOptions()).empty());
}

TEST(PoolTest, DeadNodesExcluded) {
  GraphSynopsis synopsis = MakeSynopsis();
  // Merge two As; the pool must not reference the dead originals.
  std::vector<MergeCandidate> pool =
      BuildPool(synopsis, 100, 0, DeltaOptions());
  synopsis.MergeNodes(pool[0].u, pool[0].v);
  std::vector<MergeCandidate> after =
      BuildPool(synopsis, 100, 0, DeltaOptions());
  for (const MergeCandidate& candidate : after) {
    EXPECT_TRUE(synopsis.node(candidate.u).alive);
    EXPECT_TRUE(synopsis.node(candidate.v).alive);
  }
  // A-group shrank to 3 members: C(3,2)=3 plus B's 3.
  EXPECT_EQ(after.size(), 6u);
}

TEST(PoolTest, PairSamplingCapBoundsEvaluations) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  for (int i = 0; i < 40; ++i) {
    SynNodeId a = synopsis.AddNode("A", ValueType::kNone, 1.0);
    synopsis.AddEdge(root, a, 1.0);
  }
  // 780 possible pairs, sampled down to ~100.
  std::vector<MergeCandidate> pool =
      BuildPool(synopsis, 10000, 0, DeltaOptions(), 100);
  EXPECT_LE(pool.size(), 150u);
  EXPECT_GE(pool.size(), 50u);
}

TEST(PoolTest, EvaluateCandidateRecordsVersions) {
  GraphSynopsis synopsis = MakeSynopsis();
  std::vector<MergeCandidate> pool =
      BuildPool(synopsis, 100, 0, DeltaOptions());
  MergeCandidate refreshed =
      EvaluateCandidate(synopsis, pool[0].u, pool[0].v, DeltaOptions());
  EXPECT_EQ(refreshed.version_u, synopsis.node(pool[0].u).version);
  EXPECT_EQ(refreshed.version_v, synopsis.node(pool[0].v).version);
  EXPECT_GT(refreshed.savings, 0u);
}

TEST(PoolTest, IdenticalNodesRankFirst) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId c = synopsis.AddNode("C", ValueType::kNone, 40.0);
  // Two identical As and one divergent A.
  SynNodeId a1 = synopsis.AddNode("A", ValueType::kNone, 4.0);
  SynNodeId a2 = synopsis.AddNode("A", ValueType::kNone, 4.0);
  SynNodeId a3 = synopsis.AddNode("A", ValueType::kNone, 4.0);
  synopsis.AddEdge(root, a1, 4.0);
  synopsis.AddEdge(root, a2, 4.0);
  synopsis.AddEdge(root, a3, 4.0);
  synopsis.AddEdge(a1, c, 2.0);
  synopsis.AddEdge(a2, c, 2.0);
  synopsis.AddEdge(a3, c, 6.0);
  std::vector<MergeCandidate> pool =
      BuildPool(synopsis, 100, 1, DeltaOptions());
  ASSERT_EQ(pool.size(), 3u);
  auto best = std::min_element(
      pool.begin(), pool.end(),
      [](const MergeCandidate& x, const MergeCandidate& y) {
        return x.ratio() < y.ratio();
      });
  EXPECT_TRUE((best->u == a1 && best->v == a2) ||
              (best->u == a2 && best->v == a1));
  EXPECT_NEAR(best->delta, 0.0, 1e-12);
}

}  // namespace
}  // namespace xcluster
