#include "summaries/pst.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"

namespace xcluster {
namespace {

/// True number of strings containing `qs`.
double TrueCount(const std::vector<std::string>& strings,
                 std::string_view qs) {
  double count = 0.0;
  for (const std::string& s : strings) {
    if (s.find(qs) != std::string::npos) count += 1.0;
  }
  return count;
}

TEST(PstTest, EmptyTree) {
  Pst pst;
  EXPECT_EQ(pst.total(), 0.0);
  EXPECT_EQ(pst.node_count(), 0u);
  EXPECT_EQ(pst.SizeBytes(), 0u);
  EXPECT_EQ(pst.EstimateCount("x"), 0.0);
}

TEST(PstTest, NoStrings) {
  Pst pst = Pst::Build({}, 4);
  EXPECT_EQ(pst.total(), 0.0);
  EXPECT_EQ(pst.Selectivity("a"), 0.0);
}

TEST(PstTest, ExactCountsForStoredSubstrings) {
  std::vector<std::string> strings = {"abc", "abd", "bc"};
  Pst pst = Pst::Build(strings, 4);
  EXPECT_DOUBLE_EQ(pst.EstimateCount("a"), 2.0);
  EXPECT_DOUBLE_EQ(pst.EstimateCount("b"), 3.0);
  EXPECT_DOUBLE_EQ(pst.EstimateCount("bc"), 2.0);
  EXPECT_DOUBLE_EQ(pst.EstimateCount("abc"), 1.0);
  EXPECT_DOUBLE_EQ(pst.EstimateCount("abd"), 1.0);
}

TEST(PstTest, PresenceCountsNotOccurrenceCounts) {
  // "aaa" contains "a" three times but counts once.
  Pst pst = Pst::Build({"aaa"}, 3);
  EXPECT_DOUBLE_EQ(pst.EstimateCount("a"), 1.0);
  EXPECT_DOUBLE_EQ(pst.EstimateCount("aa"), 1.0);
}

TEST(PstTest, AbsentSymbolGivesZero) {
  Pst pst = Pst::Build({"abc"}, 3);
  EXPECT_EQ(pst.EstimateCount("xyz"), 0.0);
  EXPECT_EQ(pst.EstimateCount("ax"), 0.0);
}

TEST(PstTest, EmptyQueryMatchesEverything) {
  Pst pst = Pst::Build({"ab", "cd"}, 2);
  EXPECT_DOUBLE_EQ(pst.EstimateCount(""), 2.0);
  EXPECT_DOUBLE_EQ(pst.Selectivity(""), 1.0);
}

TEST(PstTest, MarkovEstimateForLongQueries) {
  // Depth-2 tree; the query "abc" requires a Markov extension step.
  std::vector<std::string> strings = {"abc", "abc", "abc", "abd"};
  Pst pst = Pst::Build(strings, 2);
  double estimate = pst.EstimateCount("abc");
  // P(ab) = 1, P(c | b) = C(bc)/C(b) = 3/4 -> estimate = 3.
  EXPECT_NEAR(estimate, 3.0, 1e-9);
}

TEST(PstTest, EstimateNeverExceedsTotal) {
  std::vector<std::string> strings = {"aaaa", "aaab", "aaba"};
  Pst pst = Pst::Build(strings, 2);
  EXPECT_LE(pst.EstimateCount("aaaa"), 3.0 + 1e-9);
}

TEST(PstTest, MonotonicityParentAtLeastChild) {
  std::vector<std::string> strings = {"hello", "help", "hold", "heap"};
  Pst pst = Pst::Build(strings, 4);
  EXPECT_GE(pst.EstimateCount("he"), pst.EstimateCount("hel"));
  EXPECT_GE(pst.EstimateCount("h"), pst.EstimateCount("he"));
}

TEST(PstTest, MergeSumsCounts) {
  Pst a = Pst::Build({"abc", "abd"}, 3);
  Pst b = Pst::Build({"abc", "xyz"}, 3);
  Pst merged = Pst::Merge(a, b);
  EXPECT_DOUBLE_EQ(merged.total(), 4.0);
  EXPECT_DOUBLE_EQ(merged.EstimateCount("abc"), 2.0);
  EXPECT_DOUBLE_EQ(merged.EstimateCount("ab"), 3.0);
  EXPECT_DOUBLE_EQ(merged.EstimateCount("xyz"), 1.0);
}

TEST(PstTest, MergeWithEmpty) {
  Pst a = Pst::Build({"ab"}, 2);
  Pst merged = Pst::Merge(a, Pst());
  EXPECT_DOUBLE_EQ(merged.EstimateCount("ab"), 1.0);
}

TEST(PstTest, PruneReducesNodesButKeepsSymbols) {
  std::vector<std::string> strings = {"abcdef", "abcxyz", "qrs"};
  Pst pst = Pst::Build(strings, 5);
  size_t before = pst.node_count();
  pst.Prune(before / 2);
  EXPECT_LT(pst.node_count(), before);
  // Depth-1 nodes survive: every symbol still yields a non-zero estimate.
  for (char c : std::string("abcdefxyzqrs")) {
    EXPECT_GT(pst.EstimateCount(std::string(1, c)), 0.0) << c;
  }
}

TEST(PstTest, PruneToMinimumLeavesDepthOne) {
  Pst pst = Pst::Build({"abc"}, 3);
  pst.Prune(1000);
  EXPECT_FALSE(pst.CanPrune());
  // Only depth-1 nodes remain: a, b, c.
  EXPECT_EQ(pst.node_count(), 3u);
}

TEST(PstTest, PrunedCopyLeavesOriginalIntact) {
  Pst pst = Pst::Build({"abcd", "abce"}, 4);
  size_t before = pst.node_count();
  Pst pruned = pst.Pruned(3);
  EXPECT_EQ(pst.node_count(), before);
  EXPECT_EQ(pruned.node_count(), before - 3);
}

TEST(PstTest, PrunePrefersRedundantLeaves) {
  // Strings where "ab" always extends to "abc": pruning "abc"'s leaf is
  // nearly free (the Markov estimate reconstructs it), while "xq" vs "xr"
  // leaves carry real information.
  std::vector<std::string> strings;
  for (int i = 0; i < 10; ++i) strings.push_back("abc");
  for (int i = 0; i < 5; ++i) strings.push_back("xq");
  for (int i = 0; i < 5; ++i) strings.push_back("xr");
  Pst pst = Pst::Build(strings, 3);
  Pst pruned = pst.Pruned(1);
  // After one pruning step, the estimate for "abc" should still be close.
  EXPECT_NEAR(pruned.EstimateCount("abc"), 10.0, 1.0);
}

TEST(PstTest, PruneByCountRemovesLowCountLeavesFirst) {
  std::vector<std::string> strings;
  for (int i = 0; i < 20; ++i) strings.push_back("abc");
  strings.push_back("xyz");  // low-count branch
  Pst pst = Pst::Build(strings, 3);
  Pst pruned = pst;
  pruned.PruneByCount(2);
  // The rare leaves ("xyz"-specific depth >= 2 nodes) go first; the
  // heavily supported "abc" path survives intact.
  EXPECT_DOUBLE_EQ(pruned.EstimateCount("abc"), 20.0);
  EXPECT_LT(pruned.node_count(), pst.node_count());
}

TEST(PstTest, PruneByCountKeepsDepthOneNodes) {
  Pst pst = Pst::Build({"abcd"}, 4);
  pst.PruneByCount(1000);
  EXPECT_EQ(pst.node_count(), 4u);  // a, b, c, d singles survive
}

TEST(PstTest, SampleSubstringsReturnsStoredStrings) {
  Pst pst = Pst::Build({"abc"}, 3);
  std::vector<std::string> sample = pst.SampleSubstrings(0);
  std::set<std::string> set(sample.begin(), sample.end());
  // All substrings of "abc" up to length 3.
  EXPECT_TRUE(set.count("a"));
  EXPECT_TRUE(set.count("ab"));
  EXPECT_TRUE(set.count("abc"));
  EXPECT_TRUE(set.count("bc"));
  EXPECT_TRUE(set.count("c"));
  EXPECT_EQ(set.size(), 6u);
}

TEST(PstTest, SampleSubstringsHonorsCap) {
  Pst pst = Pst::Build({"abcdefgh", "ijklmnop"}, 4);
  std::vector<std::string> sample = pst.SampleSubstrings(10);
  EXPECT_EQ(sample.size(), 10u);
}

TEST(PstTest, SizeBytesTracksNodes) {
  Pst pst = Pst::Build({"ab"}, 2);
  // Nodes: a, ab, b -> 3 nodes.
  EXPECT_EQ(pst.node_count(), 3u);
  EXPECT_EQ(pst.SizeBytes(), 4u + 3u * 9u);
}

TEST(PstTest, MaxDepthLimitsSubstrings) {
  Pst pst = Pst::Build({"abcdef"}, 2);
  // Substrings of length <= 2 only: 6 singles + 5 bigrams.
  EXPECT_EQ(pst.node_count(), 11u);
  EXPECT_EQ(pst.max_depth(), 2u);
}

TEST(PstTest, DumpRoundTrip) {
  Pst pst = Pst::Build({"abc", "abd", "xy"}, 3);
  Pst rebuilt = Pst::FromDump(pst.Dump(), pst.total(), pst.max_depth());
  EXPECT_EQ(rebuilt.node_count(), pst.node_count());
  EXPECT_DOUBLE_EQ(rebuilt.EstimateCount("ab"), pst.EstimateCount("ab"));
  EXPECT_DOUBLE_EQ(rebuilt.EstimateCount("abc"), pst.EstimateCount("abc"));
  EXPECT_DOUBLE_EQ(rebuilt.EstimateCount("xy"), pst.EstimateCount("xy"));
}

/// Property sweep over random string collections: stored substrings are
/// counted exactly; estimates stay within [0, total]; pruning degrades
/// gracefully (never crashes, preserves monotonic bounds).
class PstPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PstPropertyTest, ExactnessAndBounds) {
  Rng rng(GetParam());
  std::vector<std::string> strings;
  const char alphabet[] = "abcd";
  for (int i = 0; i < 60; ++i) {
    std::string s;
    size_t len = 1 + rng.Uniform(8);
    for (size_t j = 0; j < len; ++j) {
      s += alphabet[rng.Uniform(4)];
    }
    strings.push_back(std::move(s));
  }
  Pst pst = Pst::Build(strings, 4);

  // Every substring of every string up to depth 4 is counted exactly.
  std::set<std::string> checked;
  for (const std::string& s : strings) {
    for (size_t i = 0; i < s.size(); ++i) {
      for (size_t len = 1; len <= 4 && i + len <= s.size(); ++len) {
        std::string sub = s.substr(i, len);
        if (!checked.insert(sub).second) continue;
        EXPECT_DOUBLE_EQ(pst.EstimateCount(sub), TrueCount(strings, sub))
            << sub;
      }
    }
  }

  // Longer queries: estimates bounded by [0, total].
  for (int i = 0; i < 50; ++i) {
    std::string q;
    size_t len = 5 + rng.Uniform(4);
    for (size_t j = 0; j < len; ++j) q += alphabet[rng.Uniform(4)];
    double estimate = pst.EstimateCount(q);
    EXPECT_GE(estimate, 0.0);
    EXPECT_LE(estimate, pst.total() + 1e-9);
  }

  // Prune half the nodes; single symbols still estimated exactly (their
  // depth-1 nodes are protected).
  Pst pruned = pst.Pruned(pst.node_count() / 2);
  for (char c : std::string("abcd")) {
    std::string q(1, c);
    EXPECT_DOUBLE_EQ(pruned.EstimateCount(q), TrueCount(strings, q));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PstPropertyTest,
                         ::testing::Values(7, 11, 19, 23, 31, 43));

}  // namespace
}  // namespace xcluster
