#include "query/parser.h"

#include <gtest/gtest.h>

namespace xcluster {
namespace {

TwigQuery MustParse(std::string_view input) {
  Result<TwigQuery> result = ParseTwig(input);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << " for " << input;
  return std::move(result).value();
}

TEST(QueryParserTest, SimpleChildPath) {
  TwigQuery query = MustParse("/site/people/person");
  EXPECT_EQ(query.size(), 4u);
  EXPECT_EQ(query.var(1).step.label, "site");
  EXPECT_EQ(query.var(1).step.axis, TwigStep::Axis::kChild);
  EXPECT_EQ(query.var(3).step.label, "person");
}

TEST(QueryParserTest, DescendantAxis) {
  TwigQuery query = MustParse("//item/name");
  EXPECT_EQ(query.var(1).step.axis, TwigStep::Axis::kDescendant);
  EXPECT_EQ(query.var(2).step.axis, TwigStep::Axis::kChild);
}

TEST(QueryParserTest, Wildcard) {
  TwigQuery query = MustParse("/site/*/item");
  EXPECT_TRUE(query.var(2).step.wildcard);
}

TEST(QueryParserTest, RangePredicate) {
  TwigQuery query = MustParse("//year[range(2000,2005)]");
  ASSERT_EQ(query.var(1).predicates.size(), 1u);
  const ValuePredicate& pred = query.var(1).predicates[0];
  EXPECT_EQ(pred.kind, ValuePredicate::Kind::kRange);
  EXPECT_EQ(pred.lo, 2000);
  EXPECT_EQ(pred.hi, 2005);
}

TEST(QueryParserTest, NegativeRangeBounds) {
  TwigQuery query = MustParse("//t[range(-5,-1)]");
  EXPECT_EQ(query.var(1).predicates[0].lo, -5);
  EXPECT_EQ(query.var(1).predicates[0].hi, -1);
}

TEST(QueryParserTest, ContainsWithQuotedString) {
  TwigQuery query = MustParse("//title[contains(\"Tree Models\")]");
  const ValuePredicate& pred = query.var(1).predicates[0];
  EXPECT_EQ(pred.kind, ValuePredicate::Kind::kContains);
  EXPECT_EQ(pred.substring, "Tree Models");
}

TEST(QueryParserTest, ContainsWithBareToken) {
  TwigQuery query = MustParse("//title[contains(Tree)]");
  EXPECT_EQ(query.var(1).predicates[0].substring, "Tree");
}

TEST(QueryParserTest, FtContainsMultipleTerms) {
  TwigQuery query = MustParse("//abstract[ftcontains(xml, synopsis)]");
  const ValuePredicate& pred = query.var(1).predicates[0];
  EXPECT_EQ(pred.kind, ValuePredicate::Kind::kFtContains);
  ASSERT_EQ(pred.terms.size(), 2u);
  EXPECT_EQ(pred.terms[0], "xml");
  EXPECT_EQ(pred.terms[1], "synopsis");
}

TEST(QueryParserTest, FtAnyDisjunction) {
  TwigQuery query = MustParse("//plot[ftany(love, war, honor)]");
  const ValuePredicate& pred = query.var(1).predicates[0];
  EXPECT_EQ(pred.kind, ValuePredicate::Kind::kFtAny);
  ASSERT_EQ(pred.terms.size(), 3u);
  EXPECT_EQ(pred.terms[2], "honor");
}

TEST(QueryParserTest, FtSimilarPredicate) {
  TwigQuery query = MustParse("//plot[ftsimilar(60, love, war, honor)]");
  const ValuePredicate& pred = query.var(1).predicates[0];
  EXPECT_EQ(pred.kind, ValuePredicate::Kind::kFtSimilar);
  EXPECT_EQ(pred.similarity_percent, 60);
  ASSERT_EQ(pred.terms.size(), 3u);
  EXPECT_EQ(pred.RequiredMatches(), 2u);  // ceil(0.6 * 3)
}

TEST(QueryParserTest, FtSimilarErrors) {
  EXPECT_FALSE(ParseTwig("//plot[ftsimilar(150,a)]").ok());
  EXPECT_FALSE(ParseTwig("//plot[ftsimilar(50)]").ok());
}

TEST(QueryParserTest, BranchPredicate) {
  TwigQuery query = MustParse("//paper[/year[range(2000,2005)]]/title");
  // Vars: root, paper, year (branch), title (spine).
  EXPECT_EQ(query.size(), 4u);
  EXPECT_EQ(query.var(1).children.size(), 2u);
  EXPECT_EQ(query.var(2).step.label, "year");
  EXPECT_EQ(query.var(2).predicates.size(), 1u);
  EXPECT_EQ(query.var(3).step.label, "title");
}

TEST(QueryParserTest, NestedBranches) {
  TwigQuery query = MustParse("//a[/b[/c]]/d");
  EXPECT_EQ(query.size(), 5u);
  EXPECT_EQ(query.var(2).step.label, "b");
  EXPECT_EQ(query.var(3).step.label, "c");
  EXPECT_EQ(query.var(3).parent, 2u);
}

TEST(QueryParserTest, DescendantBranch) {
  TwigQuery query = MustParse("//item[//text[ftcontains(gold)]]");
  EXPECT_EQ(query.var(2).step.axis, TwigStep::Axis::kDescendant);
}

TEST(QueryParserTest, PaperExampleQuery) {
  // The running example of Sec. 1, in this library's syntax.
  TwigQuery query = MustParse(
      "//paper[/year[range(2001,9999)]]"
      "[/abstract[ftcontains(synopsis,XML)]]"
      "/title[contains(Tree)]");
  EXPECT_EQ(query.size(), 5u);
  EXPECT_EQ(query.PredicateCount(), 3u);
}

TEST(QueryParserTest, AttributeLabels) {
  TwigQuery query = MustParse("//incategory/@category");
  EXPECT_EQ(query.var(2).step.label, "@category");
}

TEST(QueryParserTest, WhitespaceTolerated) {
  TwigQuery query = MustParse("  //a [ range( 1 , 2 ) ] / b ");
  EXPECT_EQ(query.size(), 3u);
  EXPECT_EQ(query.var(1).predicates.size(), 1u);
}

TEST(QueryParserTest, RoundTripThroughToString) {
  const char* inputs[] = {
      "//paper/title",
      "//a[range(1,2)]/b",
      "//a[contains(xy)][/c]/b",
  };
  for (const char* input : inputs) {
    TwigQuery query = MustParse(input);
    TwigQuery reparsed = MustParse(query.ToString());
    EXPECT_EQ(reparsed.ToString(), query.ToString()) << input;
  }
}

TEST(QueryParserTest, ErrorOnEmptyInput) {
  EXPECT_FALSE(ParseTwig("").ok());
}

TEST(QueryParserTest, ErrorOnMissingStep) {
  EXPECT_FALSE(ParseTwig("title").ok());
}

TEST(QueryParserTest, ErrorOnUnknownPredicate) {
  EXPECT_FALSE(ParseTwig("//a[like(x)]").ok());
}

TEST(QueryParserTest, ErrorOnUnclosedBracket) {
  EXPECT_FALSE(ParseTwig("//a[range(1,2)").ok());
}

TEST(QueryParserTest, ErrorOnUnterminatedString) {
  EXPECT_FALSE(ParseTwig("//a[contains(\"x)]").ok());
}

TEST(QueryParserTest, ErrorOnTrailingInput) {
  EXPECT_FALSE(ParseTwig("//a extra").ok());
}

TEST(QueryParserTest, ErrorOnMissingName) {
  EXPECT_FALSE(ParseTwig("//[range(1,2)]").ok());
}

TEST(QueryParserTest, ErrorOnBadRangeArgs) {
  EXPECT_FALSE(ParseTwig("//a[range(x,y)]").ok());
  EXPECT_FALSE(ParseTwig("//a[range(1)]").ok());
}

}  // namespace
}  // namespace xcluster
