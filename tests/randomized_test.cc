// Randomized whole-system invariants: random small documents, random merge
// sequences, and random queries exercised against properties that must hold
// regardless of the draw.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "build/builder.h"
#include "build/delta.h"
#include "common/rng.h"
#include "core/xcluster.h"
#include "estimate/estimator.h"
#include "eval/evaluator.h"
#include "synopsis/reference.h"
#include "xml/document.h"

namespace xcluster {
namespace {

/// Builds a random document: random branching, labels from a small pool,
/// values of all three types sprinkled on leaves.
XmlDocument RandomDocument(Rng* rng, size_t target_nodes) {
  const char* labels[] = {"a", "b", "c", "d", "e"};
  XmlDocument doc;
  NodeId root = doc.CreateRoot("root");
  std::vector<NodeId> frontier = {root};
  while (doc.size() < target_nodes && !frontier.empty()) {
    NodeId parent = frontier[rng->Uniform(frontier.size())];
    NodeId child = doc.AddChild(parent, labels[rng->Uniform(5)]);
    switch (rng->Uniform(5)) {
      case 0:
        doc.SetNumeric(child, static_cast<int64_t>(rng->Uniform(50)));
        break;
      case 1:
        doc.SetString(child, std::string(1 + rng->Uniform(4), 'x') +
                                 static_cast<char>('a' + rng->Uniform(4)));
        break;
      case 2:
        doc.SetText(child, rng->Bernoulli(0.5) ? "red fox" : "blue fox");
        break;
      default:
        frontier.push_back(child);  // interior node; can get children
        break;
    }
  }
  return doc;
}

/// A random structural twig query over the label pool.
TwigQuery RandomStructuralQuery(Rng* rng) {
  const char* labels[] = {"a", "b", "c", "d", "e"};
  TwigQuery query;
  QueryVarId current = 0;
  size_t steps = 1 + rng->Uniform(3);
  for (size_t i = 0; i < steps; ++i) {
    TwigStep step;
    step.axis = rng->Bernoulli(0.5) ? TwigStep::Axis::kChild
                                    : TwigStep::Axis::kDescendant;
    if (rng->Bernoulli(0.15)) {
      step.wildcard = true;
    } else {
      step.label = labels[rng->Uniform(5)];
    }
    QueryVarId next = query.AddVar(current, step);
    if (rng->Bernoulli(0.3) && i + 1 < steps) {
      // Branch: attach one extra child var and keep extending the spine.
      TwigStep branch;
      branch.label = labels[rng->Uniform(5)];
      query.AddVar(current, branch);
    }
    current = next;
  }
  return query;
}

class RandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedTest, ReferenceEstimatesStructuralQueriesExactly) {
  Rng rng(GetParam());
  XmlDocument doc = RandomDocument(&rng, 150);
  GraphSynopsis reference = BuildReferenceSynopsis(doc, ReferenceOptions());
  ExactEvaluator evaluator(doc, reference.term_dictionary().get());
  XClusterEstimator estimator(reference);
  for (int i = 0; i < 40; ++i) {
    TwigQuery query = RandomStructuralQuery(&rng);
    double truth = evaluator.Selectivity(query);
    double estimate = estimator.Estimate(query);
    EXPECT_NEAR(estimate, truth, 1e-6 * (1.0 + truth)) << query.ToString();
  }
}

TEST_P(RandomizedTest, MergeSequencePreservesInvariants) {
  Rng rng(GetParam());
  XmlDocument doc = RandomDocument(&rng, 200);
  GraphSynopsis synopsis = BuildReferenceSynopsis(doc, ReferenceOptions());
  const double doc_size = static_cast<double>(doc.size());

  // Merge random compatible pairs until none remain.
  for (int step = 0; step < 500; ++step) {
    std::vector<SynNodeId> alive = synopsis.AliveNodes();
    std::vector<std::pair<SynNodeId, SynNodeId>> compatible;
    for (size_t i = 0; i < alive.size(); ++i) {
      for (size_t j = i + 1; j < alive.size(); ++j) {
        const SynNode& u = synopsis.node(alive[i]);
        const SynNode& v = synopsis.node(alive[j]);
        if (u.label == v.label && u.type == v.type) {
          compatible.push_back({alive[i], alive[j]});
        }
      }
    }
    if (compatible.empty()) break;
    auto [u, v] = compatible[rng.Uniform(compatible.size())];

    // Invariant inputs before the merge.
    const double mass_uv = synopsis.node(u).count + synopsis.node(v).count;
    const size_t predicted_savings = MergeSavings(synopsis, u, v);
    const size_t bytes_before = synopsis.StructuralBytes();
    SynNodeId w = synopsis.MergeNodes(u, v);
    EXPECT_NEAR(synopsis.node(w).count, mass_uv, 1e-9);
    // The candidate evaluator's byte model matches reality.
    EXPECT_EQ(bytes_before - synopsis.StructuralBytes(), predicted_savings);

    // Total extent mass conserved.
    double total = 0.0;
    for (SynNodeId id : synopsis.AliveNodes()) {
      total += synopsis.node(id).count;
    }
    EXPECT_NEAR(total, doc_size, 1e-6);

    // Parent/child links consistent.
    for (SynNodeId id : synopsis.AliveNodes()) {
      for (const SynEdge& edge : synopsis.node(id).children) {
        EXPECT_TRUE(synopsis.node(edge.target).alive);
        const auto& parents = synopsis.node(edge.target).parents;
        EXPECT_NE(std::find(parents.begin(), parents.end(), id),
                  parents.end());
      }
      for (SynNodeId parent : synopsis.node(id).parents) {
        EXPECT_TRUE(synopsis.node(parent).alive);
        EXPECT_GT(synopsis.EdgeCount(parent, id), 0.0);
      }
    }
  }
}

TEST_P(RandomizedTest, SerializationRoundTripAfterRandomBuild) {
  Rng rng(GetParam());
  XmlDocument doc = RandomDocument(&rng, 150);
  XCluster::Options options;
  options.build.structural_budget = 64 + rng.Uniform(512);
  options.build.value_budget = 128 + rng.Uniform(1024);
  XCluster built = XCluster::Build(doc, options);
  std::string path = testing::TempDir() + "/randomized_" +
                     std::to_string(GetParam()) + ".xcs";
  ASSERT_TRUE(built.Save(path).ok());
  Result<XCluster> loaded = XCluster::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().SizeBytes(), built.SizeBytes());
  for (int i = 0; i < 20; ++i) {
    TwigQuery query = RandomStructuralQuery(&rng);
    EXPECT_NEAR(loaded.value().EstimateSelectivity(query),
                built.EstimateSelectivity(query), 1e-9)
        << query.ToString();
  }
}

TEST_P(RandomizedTest, BudgetsAlwaysMet) {
  Rng rng(GetParam());
  XmlDocument doc = RandomDocument(&rng, 250);
  GraphSynopsis reference = BuildReferenceSynopsis(doc, ReferenceOptions());
  BuildOptions options;
  options.structural_budget = rng.Uniform(reference.StructuralBytes() + 1);
  options.value_budget = rng.Uniform(reference.ValueBytes() + 1);
  GraphSynopsis synopsis = XClusterBuild(reference, options, nullptr);
  // Structural budget can be unreachable below the tag floor; value budget
  // below the incompressible floor likewise. Check against the floors.
  GraphSynopsis tag = BuildTagSynopsis(doc, ReferenceOptions());
  EXPECT_LE(synopsis.StructuralBytes(),
            std::max(options.structural_budget, tag.StructuralBytes()));
  EXPECT_GE(synopsis.NodeCount(), tag.NodeCount());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace xcluster
