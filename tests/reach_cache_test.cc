// Tests for the bounded, sharded descendant-reach LRU (ReachCache) and for
// the estimator that now sits on top of it: capacity is a hard bound,
// eviction follows LRU order, racing writers keep the first value, and —
// the property everything else depends on — estimates stay bit-identical
// under concurrency even when the cache is small enough to thrash.
#include "estimate/reach_cache.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "estimate/estimator.h"
#include "query/parser.h"
#include "synopsis/graph.h"

namespace xcluster {
namespace {

ReachCache::Value Vec(std::initializer_list<std::pair<uint32_t, double>> v) {
  return ReachCache::Value(v);
}

TEST(ReachCacheTest, LookupAppendsAndCountsHitsAndMisses) {
  ReachCache cache(ReachCache::Options{16, 1});
  ReachCache::Value out;
  EXPECT_FALSE(cache.Lookup(ReachCache::Key(1, 2), &out));
  EXPECT_EQ(cache.misses(), 1u);

  cache.Insert(ReachCache::Key(1, 2), Vec({{7, 3.5}}));
  out.push_back({0, 1.0});  // pre-existing contents must be preserved
  ASSERT_TRUE(cache.Lookup(ReachCache::Key(1, 2), &out));
  EXPECT_EQ(cache.hits(), 1u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].first, 7u);
  EXPECT_EQ(out[1].second, 3.5);
}

TEST(ReachCacheTest, CapacityIsAHardBoundWithLruEviction) {
  // One shard so the global capacity is exact.
  ReachCache cache(ReachCache::Options{3, 1});
  cache.Insert(ReachCache::Key(1, 0), Vec({{1, 1.0}}));
  cache.Insert(ReachCache::Key(2, 0), Vec({{2, 1.0}}));
  cache.Insert(ReachCache::Key(3, 0), Vec({{3, 1.0}}));
  EXPECT_EQ(cache.size(), 3u);

  // Touch key 1 so key 2 is now the least recently used.
  ReachCache::Value out;
  ASSERT_TRUE(cache.Lookup(ReachCache::Key(1, 0), &out));

  cache.Insert(ReachCache::Key(4, 0), Vec({{4, 1.0}}));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  out.clear();
  EXPECT_FALSE(cache.Lookup(ReachCache::Key(2, 0), &out));  // evicted
  EXPECT_TRUE(cache.Lookup(ReachCache::Key(1, 0), &out));   // survived
  EXPECT_TRUE(cache.Lookup(ReachCache::Key(4, 0), &out));
}

TEST(ReachCacheTest, FirstWriterWins) {
  ReachCache cache(ReachCache::Options{8, 1});
  cache.Insert(ReachCache::Key(5, 5), Vec({{1, 1.0}}));
  cache.Insert(ReachCache::Key(5, 5), Vec({{2, 2.0}}));  // loses the race
  ReachCache::Value out;
  ASSERT_TRUE(cache.Lookup(ReachCache::Key(5, 5), &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 1u);
}

TEST(ReachCacheTest, ZeroCapacityDisablesCaching) {
  ReachCache cache(ReachCache::Options{0, 4});
  cache.Insert(ReachCache::Key(1, 1), Vec({{1, 1.0}}));
  ReachCache::Value out;
  EXPECT_FALSE(cache.Lookup(ReachCache::Key(1, 1), &out));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ReachCacheTest, MixSeparatesXorCollidingKeys) {
  // The old ReachKeyHash reduced (source << 32) ^ label with std::hash,
  // so every (source, label) pair with the same source^label xor landed in
  // one bucket chain. The mixer must spread exactly those keys.
  std::set<uint64_t> mixed;
  const int kN = 512;
  for (uint32_t i = 0; i < kN; ++i) {
    // All of these have source ^ label == 0.
    mixed.insert(ReachCache::Mix(ReachCache::Key(i, i)));
  }
  EXPECT_EQ(mixed.size(), static_cast<size_t>(kN));
  // And their low bits (what a power-of-two table actually uses) must not
  // all agree either: expect many distinct values mod 64.
  std::set<uint64_t> low;
  for (uint64_t m : mixed) low.insert(m % 64);
  EXPECT_GT(low.size(), 32u);
}

TEST(BatchReachTierTest, InsertThenLookupReturnsStablePointer) {
  ReachCache cache(ReachCache::Options{16, 1});
  BatchReachTier tier(&cache);
  const ReachCache::Value* first =
      tier.Insert(ReachCache::Key(1, 2), Vec({{7, 3.5}}));
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(tier.size(), 1u);
  // Pointers stay valid as the tier grows (node-based map, no erase):
  // insert enough entries to force a rehash, then re-check the first.
  for (uint32_t i = 10; i < 200; ++i) {
    tier.Insert(ReachCache::Key(i, 0), Vec({{i, 1.0}}));
  }
  EXPECT_EQ(tier.Lookup(ReachCache::Key(1, 2)), first);
  ASSERT_EQ(first->size(), 1u);
  EXPECT_EQ((*first)[0].first, 7u);
  EXPECT_EQ((*first)[0].second, 3.5);
}

TEST(BatchReachTierTest, FirstWriterWinsAndLookupCountsSharedHits) {
  ReachCache cache(ReachCache::Options{16, 1});
  BatchReachTier tier(&cache);
  EXPECT_EQ(tier.Lookup(ReachCache::Key(3, 3)), nullptr);
  EXPECT_EQ(cache.batch_shared_hits(), 0u);  // misses are not shared hits

  const ReachCache::Value* winner =
      tier.Insert(ReachCache::Key(3, 3), Vec({{1, 1.0}}));
  const ReachCache::Value* loser =
      tier.Insert(ReachCache::Key(3, 3), Vec({{2, 2.0}}));
  EXPECT_EQ(loser, winner);  // second writer gets the first value back
  ASSERT_EQ(winner->size(), 1u);
  EXPECT_EQ((*winner)[0].first, 1u);
  EXPECT_EQ(tier.size(), 1u);

  EXPECT_EQ(tier.Lookup(ReachCache::Key(3, 3)), winner);
  EXPECT_EQ(tier.Lookup(ReachCache::Key(3, 3)), winner);
  EXPECT_EQ(cache.batch_shared_hits(), 2u);
}

TwigQuery MustParse(std::string_view input) {
  Result<TwigQuery> result = ParseTwig(input);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Deep chain with side branches (same shape as the estimator concurrency
/// suite) so descendant queries populate many distinct cache keys.
GraphSynopsis MakeDeepSynopsis() {
  GraphSynopsis synopsis;
  SynNodeId prev = synopsis.AddNode("R", ValueType::kNone, 1.0);
  double count = 4.0;
  for (const char* label : {"A", "B", "C", "D", "E"}) {
    SynNodeId node = synopsis.AddNode(label, ValueType::kNone, count);
    synopsis.AddEdge(prev, node, count);
    SynNodeId side =
        synopsis.AddNode(std::string(label) + "side", ValueType::kNone, 2.0);
    synopsis.AddEdge(node, side, 2.0);
    prev = node;
    count *= 2.0;
  }
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  return synopsis;
}

const std::vector<std::string> kDescendantQueries = {
    "//E",        "//C//E", "//A//D",    "//B//Eside", "/A//E",
    "//A//Cside", "//D",    "//A//B//C", "//Bside",    "//C//Dside",
};

TEST(ReachCacheTest, EstimatorCacheStaysBoundedAndCounts) {
  GraphSynopsis synopsis = MakeDeepSynopsis();
  EstimateOptions options;
  options.reach_cache_capacity = 4;
  options.reach_cache_shards = 2;
  XClusterEstimator estimator(synopsis, options);
  for (int pass = 0; pass < 3; ++pass) {
    for (const std::string& query : kDescendantQueries) {
      estimator.Estimate(MustParse(query));
    }
  }
  const ReachCache& cache = estimator.reach_cache();
  EXPECT_LE(cache.size(), 4u);
  EXPECT_GT(cache.misses(), 0u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(ReachCacheTest, ConcurrentEstimatesDeterministicUnderEviction) {
  // A capacity small enough that the working set cannot fit forces
  // continuous evict/recompute churn; estimates must still be
  // bit-identical to the cold serial baseline from every thread.
  GraphSynopsis synopsis = MakeDeepSynopsis();

  std::vector<double> expected;
  {
    XClusterEstimator baseline(synopsis);
    for (const std::string& query : kDescendantQueries) {
      expected.push_back(baseline.Estimate(MustParse(query)));
    }
  }

  EstimateOptions options;
  options.reach_cache_capacity = 3;
  options.reach_cache_shards = 1;
  XClusterEstimator shared(synopsis, options);
  constexpr int kThreads = 8;
  constexpr int kPasses = 20;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int pass = 0; pass < kPasses; ++pass) {
        for (size_t i = 0; i < kDescendantQueries.size(); ++i) {
          const size_t index =
              (i + static_cast<size_t>(t)) % kDescendantQueries.size();
          const double estimate =
              shared.Estimate(MustParse(kDescendantQueries[index]));
          if (estimate != expected[index]) ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
  EXPECT_LE(shared.reach_cache().size(), 3u);
  EXPECT_GT(shared.reach_cache().evictions(), 0u);
}

}  // namespace
}  // namespace xcluster
