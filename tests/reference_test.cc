#include "synopsis/reference.h"

#include <gtest/gtest.h>

#include <functional>
#include <map>

namespace xcluster {
namespace {

/// A small document with known clustering structure:
///   root
///   ├── a (2x with one b child each)
///   ├── a (1x with two b children)
///   └── c (with a numeric d child)
XmlDocument MakeDocument() {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("root");
  for (int i = 0; i < 2; ++i) {
    NodeId a = doc.AddChild(root, "a");
    doc.AddChild(a, "b");
  }
  NodeId a3 = doc.AddChild(root, "a");
  doc.AddChild(a3, "b");
  doc.AddChild(a3, "b");
  NodeId c = doc.AddChild(root, "c");
  NodeId d = doc.AddChild(c, "d");
  doc.SetNumeric(d, 42);
  return doc;
}

SynNodeId FindNode(const GraphSynopsis& synopsis, const std::string& label,
                   double count) {
  for (SynNodeId id : synopsis.AliveNodes()) {
    if (synopsis.labels().Get(synopsis.node(id).label) == label &&
        synopsis.node(id).count == count) {
      return id;
    }
  }
  return kNoSynNode;
}

TEST(ReferenceTest, EmptyDocument) {
  XmlDocument doc;
  GraphSynopsis synopsis = BuildReferenceSynopsis(doc, ReferenceOptions());
  EXPECT_EQ(synopsis.root(), kNoSynNode);
}

TEST(ReferenceTest, CountStableSplitsByChildSignature) {
  XmlDocument doc = MakeDocument();
  GraphSynopsis synopsis = BuildReferenceSynopsis(doc, ReferenceOptions());
  // Clusters: root, a-with-1-b, a-with-2-b, b, c, d => 6 nodes. The two
  // one-b 'a' elements share a cluster; the two-b 'a' is separate.
  EXPECT_EQ(synopsis.NodeCount(), 6u);
  EXPECT_NE(FindNode(synopsis, "a", 2.0), kNoSynNode);
  EXPECT_NE(FindNode(synopsis, "a", 1.0), kNoSynNode);
}

TEST(ReferenceTest, RootIsFirstNode) {
  XmlDocument doc = MakeDocument();
  GraphSynopsis synopsis = BuildReferenceSynopsis(doc, ReferenceOptions());
  EXPECT_EQ(synopsis.root(), 0u);
  EXPECT_EQ(synopsis.labels().Get(synopsis.node(synopsis.root()).label),
            "root");
  EXPECT_EQ(synopsis.node(synopsis.root()).count, 1.0);
}

TEST(ReferenceTest, EdgeCountsAreExactIntegers) {
  XmlDocument doc = MakeDocument();
  GraphSynopsis synopsis = BuildReferenceSynopsis(doc, ReferenceOptions());
  SynNodeId a2 = FindNode(synopsis, "a", 1.0);  // the two-b cluster
  ASSERT_NE(a2, kNoSynNode);
  ASSERT_EQ(synopsis.node(a2).children.size(), 1u);
  EXPECT_DOUBLE_EQ(synopsis.node(a2).children[0].avg_count, 2.0);
}

TEST(ReferenceTest, UniqueIncomingLabelPath) {
  // Count-stability may split a cluster's parents into several clusters,
  // but they must all lie on the same root label path (the "exactly one
  // incoming path" property of Sec. 4.3).
  XmlDocument doc = MakeDocument();
  GraphSynopsis synopsis = BuildReferenceSynopsis(doc, ReferenceOptions());
  std::function<std::string(SynNodeId)> path_of = [&](SynNodeId id) {
    const SynNode& node = synopsis.node(id);
    std::string path = node.parents.empty() ? "" : path_of(node.parents[0]);
    path += '/';
    path += synopsis.labels().Get(node.label);
    return path;
  };
  for (SynNodeId id : synopsis.AliveNodes()) {
    const SynNode& node = synopsis.node(id);
    for (SynNodeId parent : node.parents) {
      EXPECT_EQ(path_of(parent), path_of(node.parents[0]));
    }
  }
}

TEST(ReferenceTest, ExtentsPartitionTheDocument) {
  XmlDocument doc = MakeDocument();
  GraphSynopsis synopsis = BuildReferenceSynopsis(doc, ReferenceOptions());
  double total = 0.0;
  for (SynNodeId id : synopsis.AliveNodes()) {
    total += synopsis.node(id).count;
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(doc.size()));
}

TEST(ReferenceTest, ValueSummariesBuiltForAllPathsByDefault) {
  XmlDocument doc = MakeDocument();
  GraphSynopsis synopsis = BuildReferenceSynopsis(doc, ReferenceOptions());
  EXPECT_EQ(synopsis.ValueNodeCount(), 1u);
  SynNodeId d = FindNode(synopsis, "d", 1.0);
  ASSERT_NE(d, kNoSynNode);
  EXPECT_EQ(synopsis.node(d).vsumm.type(), ValueType::kNumeric);
  EXPECT_NEAR(synopsis.node(d).vsumm.histogram().EstimateRange(42, 42), 1.0,
              1e-9);
}

TEST(ReferenceTest, ValuePathFilterExcludesOthers) {
  XmlDocument doc = MakeDocument();
  ReferenceOptions options;
  options.value_paths = {"/root/nothing"};
  GraphSynopsis synopsis = BuildReferenceSynopsis(doc, options);
  EXPECT_EQ(synopsis.ValueNodeCount(), 0u);
}

TEST(ReferenceTest, ValuePathFilterSelectsExactPath) {
  XmlDocument doc = MakeDocument();
  ReferenceOptions options;
  options.value_paths = {"/root/c/d"};
  GraphSynopsis synopsis = BuildReferenceSynopsis(doc, options);
  EXPECT_EQ(synopsis.ValueNodeCount(), 1u);
}

TEST(ReferenceTest, TypeRespectingSplitsMixedTypes) {
  // Same label, different value types => separate clusters.
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  NodeId v1 = doc.AddChild(root, "v");
  doc.SetNumeric(v1, 7);
  NodeId v2 = doc.AddChild(root, "v");
  doc.SetString(v2, "seven");
  GraphSynopsis synopsis = BuildReferenceSynopsis(doc, ReferenceOptions());
  EXPECT_EQ(synopsis.NodeCount(), 3u);
}

TEST(ReferenceTest, PathSplitsSameLabelDifferentContext) {
  // "name" under a and under b must be distinct clusters even with
  // identical child signatures (unique incoming path requirement).
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  NodeId a = doc.AddChild(root, "a");
  NodeId b = doc.AddChild(root, "b");
  doc.SetString(doc.AddChild(a, "name"), "x");
  doc.SetString(doc.AddChild(b, "name"), "y");
  GraphSynopsis synopsis = BuildReferenceSynopsis(doc, ReferenceOptions());
  EXPECT_EQ(synopsis.NodeCount(), 5u);
}

TEST(ReferenceTest, SharedDictionaryUsed) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  NodeId t = doc.AddChild(root, "t");
  doc.SetText(t, "alpha beta");
  ReferenceOptions options;
  options.dictionary = std::make_shared<TermDictionary>();
  GraphSynopsis synopsis = BuildReferenceSynopsis(doc, options);
  EXPECT_EQ(synopsis.term_dictionary().get(), options.dictionary.get());
  EXPECT_NE(options.dictionary->Lookup("alpha"), kInvalidSymbol);
  EXPECT_NE(options.dictionary->Lookup("beta"), kInvalidSymbol);
}

TEST(TagSynopsisTest, OneClusterPerLabelAndType) {
  XmlDocument doc = MakeDocument();
  GraphSynopsis synopsis = BuildTagSynopsis(doc, ReferenceOptions());
  // Clusters: root, a, b, c, d => 5.
  EXPECT_EQ(synopsis.NodeCount(), 5u);
}

TEST(TagSynopsisTest, AverageChildCounts) {
  XmlDocument doc = MakeDocument();
  GraphSynopsis synopsis = BuildTagSynopsis(doc, ReferenceOptions());
  SynNodeId a = FindNode(synopsis, "a", 3.0);
  ASSERT_NE(a, kNoSynNode);
  // 3 'a' elements with 4 'b' children total.
  ASSERT_EQ(synopsis.node(a).children.size(), 1u);
  EXPECT_NEAR(synopsis.node(a).children[0].avg_count, 4.0 / 3.0, 1e-12);
}

TEST(TagSynopsisTest, ValueSummaryOverWholeTagExtent) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  NodeId a = doc.AddChild(root, "a");
  NodeId b = doc.AddChild(root, "b");
  NodeId n1 = doc.AddChild(a, "n");
  doc.SetNumeric(n1, 1);
  NodeId n2 = doc.AddChild(b, "n");
  doc.SetNumeric(n2, 100);
  GraphSynopsis synopsis = BuildTagSynopsis(doc, ReferenceOptions());
  SynNodeId n = FindNode(synopsis, "n", 2.0);
  ASSERT_NE(n, kNoSynNode);
  EXPECT_NEAR(synopsis.node(n).vsumm.histogram().total(), 2.0, 1e-9);
}

TEST(PathSynopsisTest, OneClusterPerPath) {
  XmlDocument doc = MakeDocument();
  GraphSynopsis synopsis = BuildPathSynopsis(doc, ReferenceOptions());
  // Paths: /root, /root/a, /root/a/b, /root/c, /root/c/d => 5 clusters
  // (both 'a' variants share the path).
  EXPECT_EQ(synopsis.NodeCount(), 5u);
  SynNodeId a = FindNode(synopsis, "a", 3.0);
  ASSERT_NE(a, kNoSynNode);
  // 4 b-children over 3 a-elements.
  EXPECT_NEAR(synopsis.node(a).children[0].avg_count, 4.0 / 3.0, 1e-12);
}

TEST(PathSynopsisTest, SplitsSameLabelAcrossPaths) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  NodeId a = doc.AddChild(root, "a");
  NodeId b = doc.AddChild(root, "b");
  doc.SetString(doc.AddChild(a, "name"), "x");
  doc.SetString(doc.AddChild(b, "name"), "y");
  GraphSynopsis path = BuildPathSynopsis(doc, ReferenceOptions());
  GraphSynopsis tag = BuildTagSynopsis(doc, ReferenceOptions());
  EXPECT_EQ(path.NodeCount(), 5u);  // name split by path
  EXPECT_EQ(tag.NodeCount(), 4u);   // name merged by tag
}

TEST(PathSynopsisTest, GranularityLadderOrdering) {
  XmlDocument doc = MakeDocument();
  GraphSynopsis reference = BuildReferenceSynopsis(doc, ReferenceOptions());
  GraphSynopsis path = BuildPathSynopsis(doc, ReferenceOptions());
  GraphSynopsis tag = BuildTagSynopsis(doc, ReferenceOptions());
  EXPECT_LE(tag.NodeCount(), path.NodeCount());
  EXPECT_LE(path.NodeCount(), reference.NodeCount());
}

TEST(TagSynopsisTest, IsNeverLargerThanReference) {
  XmlDocument doc = MakeDocument();
  GraphSynopsis reference = BuildReferenceSynopsis(doc, ReferenceOptions());
  GraphSynopsis tag = BuildTagSynopsis(doc, ReferenceOptions());
  EXPECT_LE(tag.NodeCount(), reference.NodeCount());
  EXPECT_LE(tag.StructuralBytes(), reference.StructuralBytes());
}

}  // namespace
}  // namespace xcluster
