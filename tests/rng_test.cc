#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace xcluster {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RngTest, UniformZeroIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.Uniform(0), 0u);
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliRespectsP) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 20000.0, 0.6, 0.02);
}

TEST(RngTest, WeightedIndexAllZeroReturnsZero) {
  Rng rng(31);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(weights), 0u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(37);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

}  // namespace
}  // namespace xcluster
