#include "summaries/sample.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace xcluster {
namespace {

TEST(SampleTest, EmptyInput) {
  SampleSummary summary = SampleSummary::Build({}, 16);
  EXPECT_EQ(summary.total(), 0.0);
  EXPECT_EQ(summary.SizeBytes(), 0u);
  EXPECT_EQ(summary.EstimateRange(0, 10), 0.0);
}

TEST(SampleTest, SmallInputKeptExactly) {
  SampleSummary summary = SampleSummary::Build({5, 1, 3}, 16);
  EXPECT_EQ(summary.sample_size(), 3u);
  EXPECT_DOUBLE_EQ(summary.EstimateRange(1, 3), 2.0);
  EXPECT_DOUBLE_EQ(summary.EstimateRange(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(summary.EstimateRange(6, 10), 0.0);
}

TEST(SampleTest, ReservoirCapsSampleSize) {
  std::vector<int64_t> values(1000, 7);
  SampleSummary summary = SampleSummary::Build(values, 32);
  EXPECT_EQ(summary.sample_size(), 32u);
  EXPECT_DOUBLE_EQ(summary.total(), 1000.0);
  EXPECT_DOUBLE_EQ(summary.EstimateRange(7, 7), 1000.0);
}

TEST(SampleTest, EstimateScalesByTotal) {
  // Half the values below 50: the sampled estimate should be near half the
  // total.
  Rng rng(3);
  std::vector<int64_t> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(static_cast<int64_t>(rng.Uniform(100)));
  }
  SampleSummary summary = SampleSummary::Build(values, 200);
  EXPECT_NEAR(summary.EstimateRange(0, 49), 1000.0, 150.0);
}

TEST(SampleTest, DeterministicBuild) {
  Rng rng(5);
  std::vector<int64_t> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(static_cast<int64_t>(rng.Uniform(50)));
  }
  SampleSummary a = SampleSummary::Build(values, 64);
  SampleSummary b = SampleSummary::Build(values, 64);
  EXPECT_EQ(a.sample(), b.sample());
}

TEST(SampleTest, SelectivityNormalized) {
  SampleSummary summary = SampleSummary::Build({1, 2, 3, 4}, 16);
  EXPECT_NEAR(summary.Selectivity(1, 2), 0.5, 1e-12);
}

TEST(SampleTest, CompressShrinksSample) {
  SampleSummary summary = SampleSummary::Build({1, 2, 3, 4, 5, 6}, 16);
  summary.Compress(3);
  EXPECT_EQ(summary.sample_size(), 3u);
  EXPECT_DOUBLE_EQ(summary.total(), 6.0);  // the total is preserved
  summary.Compress(100);
  EXPECT_EQ(summary.sample_size(), 1u);
  EXPECT_FALSE(summary.CanCompress());
}

TEST(SampleTest, MergeAddsTotals) {
  SampleSummary a = SampleSummary::Build({1, 2, 3}, 8);
  SampleSummary b = SampleSummary::Build({10, 20}, 8);
  SampleSummary merged = SampleSummary::Merge(a, b);
  EXPECT_DOUBLE_EQ(merged.total(), 5.0);
  EXPECT_NEAR(merged.EstimateRange(0, 100), 5.0, 1e-9);
}

TEST(SampleTest, MergeWithEmptyIsIdentity) {
  SampleSummary a = SampleSummary::Build({4, 5}, 8);
  SampleSummary merged = SampleSummary::Merge(a, SampleSummary());
  EXPECT_DOUBLE_EQ(merged.total(), 2.0);
  EXPECT_EQ(merged.sample_size(), 2u);
}

TEST(SampleTest, MergeProportionalRepresentation) {
  // Cluster a has 10x the mass of b; its values should dominate the
  // merged sample and the estimates.
  std::vector<int64_t> low(1000, 10);
  std::vector<int64_t> high(100, 90);
  SampleSummary a = SampleSummary::Build(low, 50);
  SampleSummary b = SampleSummary::Build(high, 50);
  SampleSummary merged = SampleSummary::Merge(a, b);
  EXPECT_DOUBLE_EQ(merged.total(), 1100.0);
  EXPECT_NEAR(merged.EstimateRange(0, 50), 1000.0, 120.0);
}

TEST(SampleTest, FromPartsRoundTrip) {
  SampleSummary summary = SampleSummary::FromParts({3, 1, 2}, 30.0);
  EXPECT_DOUBLE_EQ(summary.total(), 30.0);
  EXPECT_DOUBLE_EQ(summary.EstimateRange(1, 1), 10.0);
}

TEST(SampleTest, SizeBytesFormula) {
  SampleSummary summary = SampleSummary::Build({1, 2, 3}, 16);
  EXPECT_EQ(summary.SizeBytes(), 3u * 4u + 4u);
}

}  // namespace
}  // namespace xcluster
