// Property tests for the binary synopsis format: byte-identical re-encoding
// for every value-summary kind, and detection of single-bit flips anywhere
// in the file.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/serialize.h"
#include "synopsis/graph.h"

namespace xcluster {
namespace {

/// One synopsis per ValueType (and per numeric summary kind), each with a
/// node carrying that summary.
std::vector<std::pair<std::string, GraphSynopsis>> AllKindSynopses() {
  std::vector<std::pair<std::string, GraphSynopsis>> out;

  auto base = [](ValueType leaf_type) {
    GraphSynopsis synopsis;
    SynNodeId root = synopsis.AddNode("root", ValueType::kNone, 1.0);
    SynNodeId leaf = synopsis.AddNode("leaf", leaf_type, 17.0);
    synopsis.AddEdge(root, leaf, 17.0);
    synopsis.set_root(root);
    return synopsis;
  };

  {
    GraphSynopsis s = base(ValueType::kNone);
    out.emplace_back("none", std::move(s));
  }
  {
    GraphSynopsis s = base(ValueType::kNumeric);
    ValueSummary& v = s.node(1).vsumm;
    v.set_type(ValueType::kNumeric);
    *v.mutable_histogram() = Histogram::FromBuckets(
        {{0, 9, 5.0}, {10, 19, 2.5}, {20, 99, 9.5}});
    out.emplace_back("histogram", std::move(s));
  }
  {
    GraphSynopsis s = base(ValueType::kNumeric);
    ValueSummary& v = s.node(1).vsumm;
    v.set_type(ValueType::kNumeric);
    v.set_numeric_kind(NumericSummaryKind::kWavelet);
    *v.mutable_wavelet() = WaveletSummary::FromCoefficients(
        {{0, 2.0}, {1, -0.5}, {5, 0.125}}, -8, 2, 16, 17.0);
    out.emplace_back("wavelet", std::move(s));
  }
  {
    GraphSynopsis s = base(ValueType::kNumeric);
    ValueSummary& v = s.node(1).vsumm;
    v.set_type(ValueType::kNumeric);
    v.set_numeric_kind(NumericSummaryKind::kSample);
    *v.mutable_sample() =
        SampleSummary::FromParts({1, 1, 2, 3, 5, 8, 13}, 17.0);
    out.emplace_back("sample", std::move(s));
  }
  {
    GraphSynopsis s = base(ValueType::kString);
    ValueSummary& v = s.node(1).vsumm;
    v.set_type(ValueType::kString);
    std::vector<Pst::DumpNode> dump = {
        {-1, 't', 9.0}, {0, 'h', 6.0}, {1, 'e', 4.0}};
    *v.mutable_pst() = Pst::FromDump(dump, 17.0, 4);
    out.emplace_back("pst", std::move(s));
  }
  {
    GraphSynopsis s = base(ValueType::kText);
    ValueSummary& v = s.node(1).vsumm;
    v.set_type(ValueType::kText);
    *v.mutable_terms() =
        TermHistogram::FromParts({{0, 0.9}, {2, 0.4}}, {1, 3}, 0.05);
    out.emplace_back("terms", std::move(s));
  }
  return out;
}

TEST(SerializeCorruptionTest, EncodeDecodeEncodeIsByteIdentical) {
  for (auto& [name, synopsis] : AllKindSynopses()) {
    const std::string first = EncodeSynopsisToString(synopsis);
    ASSERT_FALSE(first.empty()) << name;
    Result<GraphSynopsis> decoded = DecodeSynopsisBytes(first);
    ASSERT_TRUE(decoded.ok()) << name << ": " << decoded.status().ToString();
    const std::string second = EncodeSynopsisToString(decoded.value());
    EXPECT_EQ(first, second) << name;
  }
}

TEST(SerializeCorruptionTest, EverySingleBitFlipIsDetected) {
  for (auto& [name, synopsis] : AllKindSynopses()) {
    std::string bytes = EncodeSynopsisToString(synopsis);
    ASSERT_TRUE(DecodeSynopsisBytes(bytes).ok()) << name;
    for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
      bytes[bit / 8] = static_cast<char>(
          static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
      Result<GraphSynopsis> corrupted = DecodeSynopsisBytes(bytes);
      ASSERT_FALSE(corrupted.ok()) << name << " bit " << bit;
      // Flips in the 4-byte version field surface as kUnsupported; every
      // other flip is a checksum / structure failure, i.e. kCorruption.
      if (bit >= 64) {
        EXPECT_EQ(corrupted.status().code(), Status::Code::kCorruption)
            << name << " bit " << bit << ": "
            << corrupted.status().ToString();
      }
      bytes[bit / 8] = static_cast<char>(
          static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
    }
    ASSERT_TRUE(DecodeSynopsisBytes(bytes).ok()) << name << " (restored)";
  }
}

TEST(SerializeCorruptionTest, VerifyReportsSectionsForCleanFile) {
  for (auto& [name, synopsis] : AllKindSynopses()) {
    std::string report;
    Status status =
        VerifySynopsisBytes(EncodeSynopsisToString(synopsis), &report);
    EXPECT_TRUE(status.ok()) << name << ": " << status.ToString();
    EXPECT_NE(report.find("checksum ok"), std::string::npos) << report;
    EXPECT_NE(report.find("decode ok"), std::string::npos) << report;
  }
}

// A file written by the retired version-1 text serializer must still load
// through the legacy fallback (read-only backwards compatibility).
TEST(SerializeCorruptionTest, LegacyTextFormatStillLoads) {
  const std::string legacy =
      "XCLUSTER 1\n"
      "labels 2\n"
      "4 root\n"
      "4 leaf\n"
      "terms 1\n"
      "5 hello\n"
      "root 0\n"
      "nodes 2\n"
      "node 0 0 1\n"
      "vsumm none\n"
      "node 1 1 17\n"
      "vsumm hist 2 0 9 12 10 19 5\n"
      "edges 1\n"
      "edge 0 1 17\n";
  Result<GraphSynopsis> decoded = DecodeSynopsisBytes(legacy);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().NodeCount(), 2u);
  EXPECT_EQ(decoded.value().EdgeCount(), 1u);
  EXPECT_EQ(decoded.value().node(1).vsumm.histogram().bucket_count(), 2u);
  ASSERT_NE(decoded.value().term_dictionary(), nullptr);
  EXPECT_EQ(decoded.value().term_dictionary()->Get(0), "hello");

  // Verify understands the legacy format too (and says so).
  std::string report;
  EXPECT_TRUE(VerifySynopsisBytes(legacy, &report).ok());
  EXPECT_NE(report.find("legacy"), std::string::npos) << report;
}

TEST(SerializeCorruptionTest, VerifyFailsOnBitFlip) {
  auto kinds = AllKindSynopses();
  std::string bytes = EncodeSynopsisToString(kinds[1].second);
  bytes[bytes.size() / 2] ^= 0x10;
  std::string report;
  Status status = VerifySynopsisBytes(bytes, &report);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kCorruption);
}

}  // namespace
}  // namespace xcluster
