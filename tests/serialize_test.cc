#include <gtest/gtest.h>

#include <fstream>

#include "core/xcluster.h"
#include "data/imdb.h"
#include "query/parser.h"

namespace xcluster {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ImdbOptions options;
    options.scale = 0.05;
    dataset_ = GenerateImdb(options);
    XCluster::Options xc_options;
    xc_options.reference.value_paths = dataset_.value_paths;
    xc_options.build.structural_budget = 4096;
    xc_options.build.value_budget = 24576;
    built_ = std::make_unique<XCluster>(
        XCluster::Build(dataset_.doc, xc_options));
    path_ = testing::TempDir() + "/xcluster_serialize_test.xcs";
  }

  GeneratedDataset dataset_;
  std::unique_ptr<XCluster> built_;
  std::string path_;
};

TEST_F(SerializeTest, SaveThenLoadPreservesStructure) {
  ASSERT_TRUE(built_->Save(path_).ok());
  Result<XCluster> loaded = XCluster::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().synopsis().NodeCount(),
            built_->synopsis().NodeCount());
  EXPECT_EQ(loaded.value().synopsis().EdgeCount(),
            built_->synopsis().EdgeCount());
  EXPECT_EQ(loaded.value().synopsis().StructuralBytes(),
            built_->synopsis().StructuralBytes());
  EXPECT_EQ(loaded.value().synopsis().ValueBytes(),
            built_->synopsis().ValueBytes());
}

TEST_F(SerializeTest, LoadedSynopsisGivesIdenticalEstimates) {
  ASSERT_TRUE(built_->Save(path_).ok());
  Result<XCluster> loaded = XCluster::Load(path_);
  ASSERT_TRUE(loaded.ok());
  const char* queries[] = {
      "/movie/title",
      "//year[range(1950,1980)]",
      "//movie[/cast]/rating[range(50,80)]",
      "//plot[ftcontains(the)]",
      "//title[contains(The)]",
      "//actor/name",
  };
  for (const char* text : queries) {
    Result<double> a = built_->EstimateSelectivity(text);
    Result<double> b = loaded.value().EstimateSelectivity(text);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(a.value(), b.value(), 1e-9 * (1.0 + a.value())) << text;
  }
}

TEST_F(SerializeTest, RoundTripIsIdempotent) {
  ASSERT_TRUE(built_->Save(path_).ok());
  Result<XCluster> once = XCluster::Load(path_);
  ASSERT_TRUE(once.ok());
  std::string path2 = testing::TempDir() + "/xcluster_serialize_test2.xcs";
  ASSERT_TRUE(once.value().Save(path2).ok());
  std::ifstream f1(path_);
  std::ifstream f2(path2);
  std::string c1((std::istreambuf_iterator<char>(f1)),
                 std::istreambuf_iterator<char>());
  std::string c2((std::istreambuf_iterator<char>(f2)),
                 std::istreambuf_iterator<char>());
  EXPECT_EQ(c1, c2);
}

TEST_F(SerializeTest, LoadMissingFileFails) {
  Result<XCluster> loaded = XCluster::Load("/nonexistent/synopsis.xcs");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kIOError);
}

TEST_F(SerializeTest, LoadGarbageFails) {
  std::string garbage_path = testing::TempDir() + "/garbage.xcs";
  std::ofstream out(garbage_path);
  out << "this is not a synopsis";
  out.close();
  Result<XCluster> loaded = XCluster::Load(garbage_path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST_F(SerializeTest, LoadTruncatedFails) {
  ASSERT_TRUE(built_->Save(path_).ok());
  std::ifstream in(path_);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::string truncated_path = testing::TempDir() + "/truncated.xcs";
  std::ofstream out(truncated_path);
  out << content.substr(0, content.size() / 2);
  out.close();
  Result<XCluster> loaded = XCluster::Load(truncated_path);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SerializeTest, AlternativeNumericKindsRoundTrip) {
  XCluster::Options options;
  options.reference.value_paths = dataset_.value_paths;
  options.build.structural_budget = 4096;
  options.build.value_budget = 24576;
  for (NumericSummaryKind kind :
       {NumericSummaryKind::kWavelet, NumericSummaryKind::kSample}) {
    options.reference.numeric_summary = kind;
    XCluster built = XCluster::Build(dataset_.doc, options);
    std::string path = testing::TempDir() + "/numeric_kind.xcs";
    ASSERT_TRUE(built.Save(path).ok());
    Result<XCluster> loaded = XCluster::Load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    Result<double> a =
        built.EstimateSelectivity("//year[range(1950,1980)]");
    Result<double> b =
        loaded.value().EstimateSelectivity("//year[range(1950,1980)]");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(a.value(), b.value(), 1e-6 * (1.0 + a.value()));
  }
}

TEST_F(SerializeTest, DictionaryRestored) {
  ASSERT_TRUE(built_->Save(path_).ok());
  Result<XCluster> loaded = XCluster::Load(path_);
  ASSERT_TRUE(loaded.ok());
  auto original = built_->synopsis().term_dictionary();
  auto restored = loaded.value().synopsis().term_dictionary();
  ASSERT_NE(restored, nullptr);
  ASSERT_EQ(restored->size(), original->size());
  for (TermId id = 0; id < original->size(); ++id) {
    EXPECT_EQ(restored->Get(id), original->Get(id));
  }
}

}  // namespace
}  // namespace xcluster
