#include "service/harness.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"

namespace xcluster {
namespace {

XCluster MakeFixture() {
  GraphSynopsis synopsis;
  SynNodeId r = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("A", ValueType::kNone, 10.0);
  SynNodeId b = synopsis.AddNode("B", ValueType::kNone, 100.0);
  synopsis.AddEdge(r, a, 10.0);
  synopsis.AddEdge(a, b, 10.0);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  return XCluster(std::move(synopsis));
}

/// Runs `script` through a fresh harness and returns the response lines.
std::vector<std::string> RunScript(EstimationService* service,
                                   const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  ServiceHarness harness(service);
  EXPECT_EQ(harness.Run(in, out), 0);
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  std::string line;
  while (std::getline(reader, line)) lines.push_back(line);
  return lines;
}

bool StartsWith(const std::string& line, const std::string& prefix) {
  return line.rfind(prefix, 0) == 0;
}

TEST(ServiceHarnessTest, EstimateAndListOverPreloadedSynopsis) {
  EstimationService service;
  service.store().Install("books", MakeFixture());

  std::vector<std::string> lines = RunScript(
      &service,
      "list\n"
      "estimate books /A\n"
      "estimate books /A/B\n"
      "estimate books ][broken\n"
      "estimate missing /A\n"
      "quit\n");
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_EQ(lines[0], "ok list 1");
  EXPECT_TRUE(StartsWith(lines[1], "synopsis books gen=")) << lines[1];
  EXPECT_TRUE(StartsWith(lines[2], "ok estimate 10 us=")) << lines[2];
  EXPECT_TRUE(StartsWith(lines[3], "ok estimate 100 us=")) << lines[3];
  EXPECT_TRUE(StartsWith(lines[4], "err InvalidArgument")) << lines[4];
  EXPECT_TRUE(StartsWith(lines[5], "err NotFound")) << lines[5];
  EXPECT_EQ(lines[6], "ok bye");
}

TEST(ServiceHarnessTest, BatchEmitsHeaderAndExactlyKItems) {
  ServiceOptions options;
  options.executor.num_threads = 2;
  EstimationService service(options);
  service.store().Install("books", MakeFixture());

  std::vector<std::string> lines = RunScript(
      &service,
      "batch books 3\n"
      "/A\n"
      "not a query ][\n"
      "/A/B\n"
      "quit\n");
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_TRUE(StartsWith(lines[0], "ok batch n=3 ok=2 err=1 us="))
      << lines[0];
  EXPECT_TRUE(StartsWith(lines[1], "0 ok 10 us=")) << lines[1];
  EXPECT_TRUE(StartsWith(lines[2], "1 err InvalidArgument")) << lines[2];
  EXPECT_TRUE(StartsWith(lines[3], "2 ok 100 us=")) << lines[3];
}

TEST(ServiceHarnessTest, BatchExplainAttachesCommentLines) {
  EstimationService service;
  service.store().Install("books", MakeFixture());

  std::vector<std::string> lines = RunScript(&service,
                                             "batch books 1 explain\n"
                                             "/A\n"
                                             "quit\n");
  ASSERT_GE(lines.size(), 3u);
  EXPECT_TRUE(StartsWith(lines[0], "ok batch n=1 ok=1 err=0")) << lines[0];
  EXPECT_TRUE(StartsWith(lines[1], "0 ok 10 us=")) << lines[1];
  // At least one explanation line, all `#`-prefixed, before `ok bye`.
  size_t comments = 0;
  for (size_t i = 2; i + 1 < lines.size(); ++i) {
    EXPECT_TRUE(StartsWith(lines[i], "# ")) << lines[i];
    ++comments;
  }
  EXPECT_GT(comments, 0u);
  EXPECT_EQ(lines.back(), "ok bye");
}

TEST(ServiceHarnessTest, MalformedRequestsGetErrNotCrash) {
  EstimationService service;
  std::vector<std::string> lines = RunScript(
      &service,
      "\n"
      "# a comment\n"
      "bogus\n"
      "load onlyname\n"
      "drop nothere\n"
      "estimate\n"
      "batch books -1\n"
      "batch books 2 frobnicate\n"
      "quit\n");
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_TRUE(StartsWith(lines[0], "err unknown command 'bogus'"));
  EXPECT_EQ(lines[1], "err load needs <name> <path>");
  EXPECT_TRUE(StartsWith(lines[2], "err NotFound"));
  EXPECT_EQ(lines[3], "err estimate needs <name> <query>");
  EXPECT_EQ(lines[4], "err batch needs <name> <count>");
  EXPECT_TRUE(StartsWith(lines[5], "err unknown batch option"));
  EXPECT_EQ(lines[6], "ok bye");
}

TEST(ServiceHarnessTest, TruncatedBatchReportsShortfall) {
  EstimationService service;
  service.store().Install("books", MakeFixture());
  // EOF after one of three promised query lines.
  std::vector<std::string> lines = RunScript(&service,
                                             "batch books 3\n"
                                             "/A\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "err batch truncated: got 1 of 3 queries");
}

TEST(ServiceHarnessTest, OversizedLineIsAProtocolErrorNotATruncatedCommand) {
  EstimationService service;
  service.store().Install("books", MakeFixture());
  ServiceHarness harness(&service, /*max_line_bytes=*/64);

  // An over-budget line must never be silently truncated into a different
  // command; it draws a clean protocol error and the session continues.
  std::istringstream in("estimate books " + std::string(200, 'x') +
                        "\n"
                        "estimate books /A\n"
                        "quit\n");
  std::ostringstream out;
  EXPECT_EQ(harness.Run(in, out), 0);
  std::vector<std::string> lines;
  std::string line;
  std::istringstream reader(out.str());
  while (std::getline(reader, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "err line too long (exceeds 64 bytes)");
  EXPECT_TRUE(StartsWith(lines[1], "ok estimate 10 us=")) << lines[1];
  EXPECT_EQ(lines[2], "ok bye");
}

TEST(ServiceHarnessTest, InputEndingMidLineReportsTruncation) {
  EstimationService service;
  service.store().Install("books", MakeFixture());
  ServiceHarness harness(&service);

  // No trailing newline: a partial command must not execute.
  std::istringstream in("estimate books /A\nestimate books /A/B");
  std::ostringstream out;
  EXPECT_EQ(harness.Run(in, out), 1);
  std::vector<std::string> lines;
  std::string line;
  std::istringstream reader(out.str());
  while (std::getline(reader, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(StartsWith(lines[0], "ok estimate 10 us=")) << lines[0];
  EXPECT_EQ(lines[1], "err truncated request: input ended before newline");
}

TEST(ServiceHarnessTest, OversizedBatchQueryAbortsTheWholeBatch) {
  EstimationService service;
  service.store().Install("books", MakeFixture());
  ServiceHarness harness(&service, /*max_line_bytes=*/64);

  // Query 1 of 3 blows the budget: the whole batch fails (a truncated
  // query must not estimate as something else), the remaining promised
  // lines are consumed, and the session stays parseable.
  std::istringstream in("batch books 3\n"
                        "/A\n" +
                        std::string(200, 'q') +
                        "\n"
                        "/A/B\n"
                        "estimate books /A\n"
                        "quit\n");
  std::ostringstream out;
  EXPECT_EQ(harness.Run(in, out), 0);
  std::vector<std::string> lines;
  std::string line;
  std::istringstream reader(out.str());
  while (std::getline(reader, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "err batch aborted: query 1 exceeds 64 bytes");
  EXPECT_TRUE(StartsWith(lines[1], "ok estimate 10 us=")) << lines[1];
  EXPECT_EQ(lines[2], "ok bye");
}

TEST(ServiceHarnessTest, ReadBoundedLineClassifiesEveryCase) {
  std::istringstream in("short\n" + std::string(100, 'a') + "\nlast");
  std::string line;
  EXPECT_EQ(ReadBoundedLine(in, &line, 10), LineStatus::kOk);
  EXPECT_EQ(line, "short");
  EXPECT_EQ(ReadBoundedLine(in, &line, 10), LineStatus::kTooLong);
  EXPECT_EQ(ReadBoundedLine(in, &line, 10), LineStatus::kEofMidLine);
  EXPECT_EQ(ReadBoundedLine(in, &line, 10), LineStatus::kEof);
}

TEST(ServiceHarnessTest, LoadDropRoundTripsThroughSaveFile) {
  const std::string path =
      ::testing::TempDir() + "/harness_roundtrip.xcs";
  ASSERT_TRUE(MakeFixture().Save(path).ok());

  EstimationService service;
  std::vector<std::string> lines =
      RunScript(&service,
                "load books " + path +
                    "\n"
                    "estimate books /A/B\n"
                    "stats\n"
                    "drop books\n"
                    "estimate books /A\n"
                    "load books /nonexistent/file.xcs\n"
                    "quit\n");
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_TRUE(StartsWith(lines[0], "ok load books gen=")) << lines[0];
  EXPECT_TRUE(StartsWith(lines[1], "ok estimate 100 us=")) << lines[1];
  EXPECT_TRUE(StartsWith(lines[2], "ok stats synopses=1 workers="))
      << lines[2];
  EXPECT_EQ(lines[3], "ok drop books");
  EXPECT_TRUE(StartsWith(lines[4], "err NotFound")) << lines[4];
  EXPECT_TRUE(StartsWith(lines[5], "err ")) << lines[5];
  EXPECT_EQ(lines[6], "ok bye");
}

TEST(ServiceHarnessTest, DeadlineOptionParsesAndApplies) {
  ServiceOptions options;
  options.executor.num_threads = 1;
  EstimationService service(options);
  service.store().Install("books", MakeFixture());

  // deadline_us=0 means unbounded — everything succeeds.
  std::vector<std::string> lines = RunScript(&service,
                                             "batch books 2 deadline_us=0\n"
                                             "/A\n"
                                             "/A/B\n"
                                             "quit\n");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_TRUE(StartsWith(lines[0], "ok batch n=2 ok=2 err=0")) << lines[0];
}

TEST(ServiceHarnessTest, QuotaCommandInstallsAndClearsBuckets) {
  EstimationService service;
  service.store().Install("books", MakeFixture());

  std::vector<std::string> lines = RunScript(
      &service,
      "quota books 1 4\n"
      "batch books 2\n"
      "/A\n"
      "/A/B\n"
      "batch books 3\n"  // bucket has 2 of 4 tokens left: whole batch shed
      "/A\n"
      "/A\n"
      "/A\n"
      "quota books off\n"
      "quota books off\n"
      "quota books -5 2\n"
      "quota books\n"
      "stats\n"
      "quit\n");
  ASSERT_EQ(lines.size(), 14u);
  EXPECT_EQ(lines[0], "ok quota books rate=1 burst=4");
  EXPECT_TRUE(StartsWith(lines[1], "ok batch n=2 ok=2 err=0")) << lines[1];
  // The shed batch still answers one line per query, all Unavailable.
  EXPECT_TRUE(StartsWith(lines[4], "ok batch n=3 ok=0 err=3")) << lines[4];
  EXPECT_TRUE(StartsWith(lines[5], "0 err Unavailable")) << lines[5];
  EXPECT_EQ(lines[8], "ok quota books off");
  EXPECT_EQ(lines[9], "err NotFound: no quota on 'books'");
  EXPECT_EQ(lines[10], "err quota needs positive numeric <rate_qps> <burst>");
  EXPECT_EQ(lines[11],
            "err quota needs <name> <rate_qps> <burst> (or <name> off)");
  EXPECT_TRUE(lines[12].find(" admitted=") != std::string::npos) << lines[12];
  EXPECT_TRUE(lines[12].find(" shed_quota=1") != std::string::npos)
      << lines[12];
  EXPECT_TRUE(lines[12].find(" shed_deadline=0") != std::string::npos)
      << lines[12];
  EXPECT_TRUE(lines[12].find(" admission_pending=0") != std::string::npos)
      << lines[12];
}

TEST(ServiceHarnessTest, BatchPriorityOptionParses) {
  EstimationService service;
  service.store().Install("books", MakeFixture());

  std::vector<std::string> lines = RunScript(&service,
                                             "batch books 1 priority=bulk\n"
                                             "/A\n"
                                             "batch books 1 priority=nope\n"
                                             "quit\n");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_TRUE(StartsWith(lines[0], "ok batch n=1 ok=1 err=0")) << lines[0];
  EXPECT_EQ(lines[2], "err bad priority 'nope' (interactive|bulk)");
  const AdmissionController::Stats stats = service.admission().stats();
  EXPECT_EQ(stats.lane_admitted[static_cast<size_t>(Lane::kBulk)], 1u);
}

// `stats` raced against concurrent load/drop churn and batch traffic must
// keep answering well-formed lines (run under TSan in CI: this is the
// torn-read probe for the stats plumbing end to end).
TEST(ServiceHarnessTest, StatsStaysConsistentUnderConcurrentChurn) {
  const std::string path = ::testing::TempDir() + "/harness_churn.xcs";
  ASSERT_TRUE(MakeFixture().Save(path).ok());

  ServiceOptions options;
  options.executor.num_threads = 2;
  EstimationService service(options);
  service.store().Install("books", MakeFixture());

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)service.store().LoadFile("churn", path);
      service.store().Remove("churn");
    }
  });
  std::thread traffic([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)service.EstimateBatch("books", {"/A", "/A/B"}, BatchOptions{});
    }
  });

  for (int i = 0; i < 200; ++i) {
    std::vector<std::string> lines = RunScript(&service, "stats\nquit\n");
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_TRUE(StartsWith(lines[0], "ok stats synopses=")) << lines[0];
    // Executed never outruns submitted in any observed snapshot.
    const size_t sub_pos = lines[0].find(" submitted=");
    const size_t exe_pos = lines[0].find(" executed=");
    ASSERT_NE(sub_pos, std::string::npos);
    ASSERT_NE(exe_pos, std::string::npos);
    const uint64_t submitted =
        std::strtoull(lines[0].c_str() + sub_pos + 11, nullptr, 10);
    const uint64_t executed =
        std::strtoull(lines[0].c_str() + exe_pos + 10, nullptr, 10);
    EXPECT_LE(executed, submitted) << lines[0];
  }
  stop.store(true, std::memory_order_release);
  churn.join();
  traffic.join();
  std::remove(path.c_str());
}

/// Parses the integer following `key` in a harness stats line.
uint64_t StatsField(const std::string& line, const std::string& key) {
  const size_t pos = line.find(key);
  EXPECT_NE(pos, std::string::npos) << key << " missing from: " << line;
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + key.size(), nullptr, 10);
}

TEST(ServiceHarnessTest, StatsReportsPerLaneLatencyFields) {
  // The lane histograms live in the process-global metrics registry, so
  // other tests in this binary contribute — assert on the delta.
  EstimationService service;
  service.store().Install("books", MakeFixture());
  std::vector<std::string> before = RunScript(&service, "stats\nquit\n");
  ASSERT_EQ(before.size(), 2u);
  const uint64_t interactive0 =
      StatsField(before[0], " lane_interactive_n=");
  const uint64_t bulk0 = StatsField(before[0], " lane_bulk_n=");

  BatchOptions bulk;
  bulk.lane = Lane::kBulk;
  service.EstimateBatch("books", {"/A", "/A/B"}, BatchOptions{});
  service.EstimateBatch("books", {"/A"}, bulk);

  std::vector<std::string> lines = RunScript(&service, "stats\nquit\n");
  ASSERT_EQ(lines.size(), 2u);
  // Two more interactive queries, one more bulk; every lane always
  // exports count + p50/p95 fields.
  EXPECT_EQ(StatsField(lines[0], " lane_interactive_n="), interactive0 + 2)
      << lines[0];
  EXPECT_EQ(StatsField(lines[0], " lane_bulk_n="), bulk0 + 1) << lines[0];
  EXPECT_NE(lines[0].find(" lane_interactive_p50_us="), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find(" lane_bulk_p95_us="), std::string::npos)
      << lines[0];
}

TEST(ServiceHarnessTest, FlightCommandDumpsTheRing) {
  EstimationService service;
  service.store().Install("books", MakeFixture());
  BatchOptions options;
  options.trace.trace_id = 0xf11e;
  service.EstimateBatch("books", {"/A"}, options);
  service.EstimateBatch("books", {"/A/B"});

  std::vector<std::string> lines =
      RunScript(&service, "flight\nflight 1\nflight -1\nquit\n");
  // Header + 2 records, header + 1 record, error, goodbye.
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_TRUE(StartsWith(lines[0], "ok flight n=2 recorded=2 capacity="))
      << lines[0];
  // Newest first; the traced batch is the older of the two.
  EXPECT_NE(lines[1].find("trace=0000000000000000"), std::string::npos)
      << lines[1];
  EXPECT_NE(lines[2].find("trace=000000000000f11e"), std::string::npos)
      << lines[2];
  EXPECT_NE(lines[2].find("status=ok"), std::string::npos) << lines[2];
  EXPECT_TRUE(StartsWith(lines[3], "ok flight n=1")) << lines[3];
  EXPECT_NE(lines[4].find("trace=0000000000000000"), std::string::npos)
      << lines[4];
  EXPECT_TRUE(StartsWith(lines[5], "err flight")) << lines[5];
}

}  // namespace
}  // namespace xcluster
