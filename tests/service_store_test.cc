#include "service/synopsis_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "estimate/compiled_twig.h"
#include "query/parser.h"
#include "storage/xcsf_writer.h"

namespace xcluster {
namespace {

TwigQuery MustParse(std::string_view input) {
  Result<TwigQuery> result = ParseTwig(input);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// A tiny synopsis R -count-> A whose estimate for /A is `count` — each
/// generation installs a different count so tests can tell snapshots
/// apart by their estimates.
XCluster MakeSynopsis(double count) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("A", ValueType::kNone, count);
  synopsis.AddEdge(root, a, count);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  return XCluster(std::move(synopsis));
}

TEST(SynopsisStoreTest, InstallGetRemove) {
  SynopsisStore store;
  EXPECT_EQ(store.Get("movies"), nullptr);
  EXPECT_EQ(store.size(), 0u);

  auto installed = store.Install("movies", MakeSynopsis(7.0));
  ASSERT_NE(installed, nullptr);
  EXPECT_EQ(installed->name(), "movies");

  auto fetched = store.Get("movies");
  ASSERT_NE(fetched, nullptr);
  EXPECT_EQ(fetched.get(), installed.get());
  EXPECT_EQ(store.size(), 1u);

  EXPECT_TRUE(store.Remove("movies"));
  EXPECT_EQ(store.Get("movies"), nullptr);
  EXPECT_FALSE(store.Remove("movies"));
}

TEST(SynopsisStoreTest, GenerationsIncreaseAcrossReinstalls) {
  SynopsisStore store;
  auto first = store.Install("c", MakeSynopsis(1.0));
  auto second = store.Install("c", MakeSynopsis(2.0));
  auto other = store.Install("d", MakeSynopsis(3.0));
  EXPECT_LT(first->generation(), second->generation());
  EXPECT_LT(second->generation(), other->generation());
  EXPECT_EQ(store.Get("c")->generation(), second->generation());
}

TEST(SynopsisStoreTest, StalePinnedInstallIsRejected) {
  SynopsisStore store;
  auto current = store.Install("c", MakeSynopsis(1.0), /*generation=*/10);
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->generation(), 10u);

  // A pinned install that does not move the generation forward must not
  // replace the snapshot — delayed or reordered replication pushes would
  // otherwise roll a replica backwards.
  EXPECT_EQ(store.Install("c", MakeSynopsis(2.0), /*generation=*/10), nullptr);
  EXPECT_EQ(store.Install("c", MakeSynopsis(2.0), /*generation=*/7), nullptr);
  EXPECT_EQ(store.Get("c").get(), current.get());

  // A newer pinned generation still lands, and auto-assigned installs are
  // never rejected (they always draw a fresh, larger generation).
  auto newer = store.Install("c", MakeSynopsis(3.0), /*generation=*/11);
  ASSERT_NE(newer, nullptr);
  EXPECT_EQ(newer->generation(), 11u);
  auto autogen = store.Install("c", MakeSynopsis(4.0));
  ASSERT_NE(autogen, nullptr);
  EXPECT_GT(autogen->generation(), 11u);
}

TEST(SynopsisStoreTest, ListIsSortedAcrossShards) {
  SynopsisStore store(4);
  for (const char* name : {"zeta", "alpha", "mid", "beta"}) {
    store.Install(name, MakeSynopsis(1.0));
  }
  EXPECT_EQ(store.List(),
            (std::vector<std::string>{"alpha", "beta", "mid", "zeta"}));
  EXPECT_EQ(store.size(), 4u);
}

TEST(SynopsisStoreTest, SnapshotSurvivesReplaceAndRemove) {
  SynopsisStore store;
  store.Install("c", MakeSynopsis(5.0));
  auto held = store.Get("c");  // in-flight request holds the snapshot

  store.Install("c", MakeSynopsis(9.0));  // hot swap
  EXPECT_NE(store.Get("c").get(), held.get());
  // The old snapshot still answers queries with its own data.
  EXPECT_NEAR(held->estimator().Estimate(MustParse("/A")), 5.0, 1e-9);
  EXPECT_NEAR(store.Get("c")->estimator().Estimate(MustParse("/A")), 9.0,
              1e-9);

  store.Remove("c");
  EXPECT_NEAR(held->estimator().Estimate(MustParse("/A")), 5.0, 1e-9);
}

TEST(SynopsisStoreTest, LoadFileFailureLeavesCatalogUntouched) {
  SynopsisStore store;
  store.Install("c", MakeSynopsis(4.0));
  auto before = store.Get("c");
  auto loaded = store.LoadFile("c", "/nonexistent/path.xcs");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(store.Get("c").get(), before.get());
}

// RCU semantics under contention: readers estimate continuously while a
// writer hot-swaps the same name; every read sees a complete snapshot
// (estimate matches that snapshot's generation parity, never a torn mix).
TEST(SynopsisStoreTest, ConcurrentHotSwapNeverTearsReaders) {
  SynopsisStore store;
  store.Install("c", MakeSynopsis(100.0));

  std::atomic<bool> stop{false};
  std::atomic<int> reads{0};
  std::vector<std::thread> readers;
  const TwigQuery query = MustParse("/A");
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto snapshot = store.Get("c");
        if (snapshot == nullptr) continue;  // momentarily removed
        const double estimate = snapshot->estimator().Estimate(query);
        // Writers only ever install counts 100 or 200.
        EXPECT_TRUE(estimate == 100.0 || estimate == 200.0) << estimate;
        ++reads;
      }
    });
  }

  std::thread writer([&] {
    for (int i = 0; i < 200; ++i) {
      store.Install("c", MakeSynopsis(i % 2 == 0 ? 200.0 : 100.0));
      if (i % 50 == 0) {
        store.Remove("c");
        store.Install("c", MakeSynopsis(100.0));
      }
    }
    stop = true;
  });

  writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0);
}

// --- XCSF (mapped) snapshots ---------------------------------------------

/// Estimate through the serving hot path (flat estimator over a compiled
/// plan) — the only estimation surface mapped snapshots provide.
double FlatEstimate(const StoredSynopsis& snapshot, const std::string& query) {
  const CompiledTwig plan =
      CompiledTwig::Compile(MustParse(query), snapshot.flat());
  return snapshot.flat_estimator().Estimate(plan);
}

/// Writes MakeSynopsis(count) as an XCSF image and returns its path.
std::string WriteXcsf(const std::string& file, double count) {
  const std::string path = testing::TempDir() + "/" + file;
  EXPECT_TRUE(storage::XcsfWriter::WriteGraph(MakeSynopsis(count).synopsis(),
                                              path, /*sync=*/false)
                  .ok());
  return path;
}

TEST(SynopsisStoreTest, LoadFileAutoDetectsXcsf) {
  SynopsisStore store;
  const std::string path = WriteXcsf("store_autodetect.xcsf", 7.0);
  auto loaded = store.LoadFile("movies", path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& snapshot = *loaded.value();
  EXPECT_TRUE(snapshot.mapped());
  EXPECT_EQ(snapshot.num_clusters(), 2u);
  EXPECT_GT(snapshot.size_bytes(), 0u);
  EXPECT_EQ(snapshot.source(), path);
  EXPECT_NEAR(FlatEstimate(snapshot, "/A"), 7.0, 1e-9);
  // The same store also still takes graph installs under other names.
  auto graph = store.Install("graph", MakeSynopsis(3.0));
  EXPECT_FALSE(graph->mapped());
  EXPECT_NEAR(FlatEstimate(*graph, "/A"), 3.0, 1e-9);
}

TEST(SynopsisStoreTest, HotSwapOfMappedSnapshotBumpsGeneration) {
  SynopsisStore store;
  auto first =
      store.LoadFile("c", WriteXcsf("store_swap_1.xcsf", 5.0));
  ASSERT_TRUE(first.ok());
  auto held = store.Get("c");  // in-flight request pins the mapping

  auto second =
      store.LoadFile("c", WriteXcsf("store_swap_2.xcsf", 9.0));
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second.value()->generation(), first.value()->generation());
  EXPECT_NE(store.Get("c").get(), held.get());
  // The replaced mapped snapshot still serves until released; the swap
  // unmaps only when the last holder lets go of the shared_ptr.
  EXPECT_NEAR(FlatEstimate(*held, "/A"), 5.0, 1e-9);
  EXPECT_NEAR(FlatEstimate(*store.Get("c"), "/A"), 9.0, 1e-9);
  store.Remove("c");
  EXPECT_NEAR(FlatEstimate(*held, "/A"), 5.0, 1e-9);
}

TEST(SynopsisStoreTest, FailedXcsfLoadLeavesCatalogUntouched) {
  SynopsisStore store;
  store.Install("c", MakeSynopsis(4.0));
  auto before = store.Get("c");
  // Right magic, garbage body: sniffed as XCSF, rejected by validation.
  const std::string path = testing::TempDir() + "/store_corrupt.xcsf";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("XCSF garbage that is not a real image", f);
  std::fclose(f);
  auto loaded = store.LoadFile("c", path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
  EXPECT_EQ(store.Get("c").get(), before.get());
}

TEST(SynopsisStoreTest, TwoStoresMapTheSameFileConcurrently) {
  const std::string path = WriteXcsf("store_shared.xcsf", 6.0);
  SynopsisStore a;
  SynopsisStore b;
  ASSERT_TRUE(a.LoadFile("c", path).ok());
  ASSERT_TRUE(b.LoadFile("c", path).ok());
  EXPECT_NEAR(FlatEstimate(*a.Get("c"), "/A"), 6.0, 1e-9);
  EXPECT_NEAR(FlatEstimate(*b.Get("c"), "/A"), 6.0, 1e-9);
  // Dropping one store's snapshot must not disturb the other's mapping.
  EXPECT_TRUE(a.Remove("c"));
  EXPECT_NEAR(FlatEstimate(*b.Get("c"), "/A"), 6.0, 1e-9);
}

TEST(SynopsisStoreTest, WireXcsfInstallAdoptsBufferAndRespectsGenerations) {
  std::string image;
  {
    GraphSynopsis synopsis = MakeSynopsis(8.0).synopsis();
    FlatSynopsis flat(synopsis);
    ASSERT_TRUE(storage::XcsfWriter::Encode(flat, &image).ok());
  }
  SynopsisStore store;
  auto installed = store.InstallFromWire("c", image, "peer-1", 5);
  ASSERT_TRUE(installed.ok()) << installed.status().ToString();
  EXPECT_TRUE(installed.value()->mapped());
  EXPECT_EQ(installed.value()->generation(), 5u);
  EXPECT_EQ(installed.value()->source(), "wire:peer-1");
  EXPECT_NEAR(FlatEstimate(*installed.value(), "/A"), 8.0, 1e-9);
  // A stale pinned push must not roll the replica backwards.
  auto stale = store.InstallFromWire("c", image, "peer-2", 5);
  EXPECT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(store.Get("c")->generation(), 5u);
}

TEST(SynopsisStoreTest, WireXcsfInstallSpoolsToDisk) {
  std::string image;
  {
    GraphSynopsis synopsis = MakeSynopsis(2.0).synopsis();
    FlatSynopsis flat(synopsis);
    ASSERT_TRUE(storage::XcsfWriter::Encode(flat, &image).ok());
  }
  SynopsisStore store;
  store.SetSpoolDir(testing::TempDir());
  auto installed = store.InstallFromWire("c/with:odd chars", image, "peer", 0);
  ASSERT_TRUE(installed.ok()) << installed.status().ToString();
  EXPECT_TRUE(installed.value()->mapped());
  // The spooled image is a complete, loadable XCSF file: a restarted
  // replica can cold-start straight from it.
  const std::string spooled =
      testing::TempDir() + "/c_with_odd_chars.xcsf";
  SynopsisStore restarted;
  auto reloaded = restarted.LoadFile("c", spooled);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_NEAR(FlatEstimate(*reloaded.value(), "/A"), 2.0, 1e-9);
}

}  // namespace
}  // namespace xcluster
