#include "service/synopsis_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "query/parser.h"

namespace xcluster {
namespace {

TwigQuery MustParse(std::string_view input) {
  Result<TwigQuery> result = ParseTwig(input);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// A tiny synopsis R -count-> A whose estimate for /A is `count` — each
/// generation installs a different count so tests can tell snapshots
/// apart by their estimates.
XCluster MakeSynopsis(double count) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("A", ValueType::kNone, count);
  synopsis.AddEdge(root, a, count);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  return XCluster(std::move(synopsis));
}

TEST(SynopsisStoreTest, InstallGetRemove) {
  SynopsisStore store;
  EXPECT_EQ(store.Get("movies"), nullptr);
  EXPECT_EQ(store.size(), 0u);

  auto installed = store.Install("movies", MakeSynopsis(7.0));
  ASSERT_NE(installed, nullptr);
  EXPECT_EQ(installed->name(), "movies");

  auto fetched = store.Get("movies");
  ASSERT_NE(fetched, nullptr);
  EXPECT_EQ(fetched.get(), installed.get());
  EXPECT_EQ(store.size(), 1u);

  EXPECT_TRUE(store.Remove("movies"));
  EXPECT_EQ(store.Get("movies"), nullptr);
  EXPECT_FALSE(store.Remove("movies"));
}

TEST(SynopsisStoreTest, GenerationsIncreaseAcrossReinstalls) {
  SynopsisStore store;
  auto first = store.Install("c", MakeSynopsis(1.0));
  auto second = store.Install("c", MakeSynopsis(2.0));
  auto other = store.Install("d", MakeSynopsis(3.0));
  EXPECT_LT(first->generation(), second->generation());
  EXPECT_LT(second->generation(), other->generation());
  EXPECT_EQ(store.Get("c")->generation(), second->generation());
}

TEST(SynopsisStoreTest, StalePinnedInstallIsRejected) {
  SynopsisStore store;
  auto current = store.Install("c", MakeSynopsis(1.0), /*generation=*/10);
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->generation(), 10u);

  // A pinned install that does not move the generation forward must not
  // replace the snapshot — delayed or reordered replication pushes would
  // otherwise roll a replica backwards.
  EXPECT_EQ(store.Install("c", MakeSynopsis(2.0), /*generation=*/10), nullptr);
  EXPECT_EQ(store.Install("c", MakeSynopsis(2.0), /*generation=*/7), nullptr);
  EXPECT_EQ(store.Get("c").get(), current.get());

  // A newer pinned generation still lands, and auto-assigned installs are
  // never rejected (they always draw a fresh, larger generation).
  auto newer = store.Install("c", MakeSynopsis(3.0), /*generation=*/11);
  ASSERT_NE(newer, nullptr);
  EXPECT_EQ(newer->generation(), 11u);
  auto autogen = store.Install("c", MakeSynopsis(4.0));
  ASSERT_NE(autogen, nullptr);
  EXPECT_GT(autogen->generation(), 11u);
}

TEST(SynopsisStoreTest, ListIsSortedAcrossShards) {
  SynopsisStore store(4);
  for (const char* name : {"zeta", "alpha", "mid", "beta"}) {
    store.Install(name, MakeSynopsis(1.0));
  }
  EXPECT_EQ(store.List(),
            (std::vector<std::string>{"alpha", "beta", "mid", "zeta"}));
  EXPECT_EQ(store.size(), 4u);
}

TEST(SynopsisStoreTest, SnapshotSurvivesReplaceAndRemove) {
  SynopsisStore store;
  store.Install("c", MakeSynopsis(5.0));
  auto held = store.Get("c");  // in-flight request holds the snapshot

  store.Install("c", MakeSynopsis(9.0));  // hot swap
  EXPECT_NE(store.Get("c").get(), held.get());
  // The old snapshot still answers queries with its own data.
  EXPECT_NEAR(held->estimator().Estimate(MustParse("/A")), 5.0, 1e-9);
  EXPECT_NEAR(store.Get("c")->estimator().Estimate(MustParse("/A")), 9.0,
              1e-9);

  store.Remove("c");
  EXPECT_NEAR(held->estimator().Estimate(MustParse("/A")), 5.0, 1e-9);
}

TEST(SynopsisStoreTest, LoadFileFailureLeavesCatalogUntouched) {
  SynopsisStore store;
  store.Install("c", MakeSynopsis(4.0));
  auto before = store.Get("c");
  auto loaded = store.LoadFile("c", "/nonexistent/path.xcs");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(store.Get("c").get(), before.get());
}

// RCU semantics under contention: readers estimate continuously while a
// writer hot-swaps the same name; every read sees a complete snapshot
// (estimate matches that snapshot's generation parity, never a torn mix).
TEST(SynopsisStoreTest, ConcurrentHotSwapNeverTearsReaders) {
  SynopsisStore store;
  store.Install("c", MakeSynopsis(100.0));

  std::atomic<bool> stop{false};
  std::atomic<int> reads{0};
  std::vector<std::thread> readers;
  const TwigQuery query = MustParse("/A");
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto snapshot = store.Get("c");
        if (snapshot == nullptr) continue;  // momentarily removed
        const double estimate = snapshot->estimator().Estimate(query);
        // Writers only ever install counts 100 or 200.
        EXPECT_TRUE(estimate == 100.0 || estimate == 200.0) << estimate;
        ++reads;
      }
    });
  }

  std::thread writer([&] {
    for (int i = 0; i < 200; ++i) {
      store.Install("c", MakeSynopsis(i % 2 == 0 ? 200.0 : 100.0));
      if (i % 50 == 0) {
        store.Remove("c");
        store.Install("c", MakeSynopsis(100.0));
      }
    }
    stop = true;
  });

  writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0);
}

}  // namespace
}  // namespace xcluster
