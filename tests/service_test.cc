#include "service/service.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "data/xmark.h"
#include "synopsis/reference.h"
#include "workload/generator.h"

namespace xcluster {
namespace {

/// Fig. 7-style synopsis with a numeric summary and a cycle-free fanout
/// large enough that batches do real work.
XCluster MakeFixture() {
  GraphSynopsis synopsis;
  SynNodeId r = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("A", ValueType::kNone, 10.0);
  SynNodeId b = synopsis.AddNode("B", ValueType::kNone, 100.0);
  SynNodeId c = synopsis.AddNode("C", ValueType::kNumeric, 500.0);
  SynNodeId d = synopsis.AddNode("D", ValueType::kNone, 50.0);
  SynNodeId e = synopsis.AddNode("E", ValueType::kNone, 100.0);
  synopsis.AddEdge(r, a, 10.0);
  synopsis.AddEdge(a, b, 10.0);
  synopsis.AddEdge(b, c, 5.0);
  synopsis.AddEdge(a, d, 5.0);
  synopsis.AddEdge(d, e, 2.0);
  std::vector<int64_t> values;
  for (int64_t v = 0; v < 10; ++v) values.push_back(v);
  synopsis.node(c).vsumm = ValueSummary::FromNumeric(std::move(values), 16);
  synopsis.set_term_dictionary(std::make_shared<TermDictionary>());
  return XCluster(std::move(synopsis));
}

std::unique_ptr<EstimationService> MakeService(size_t workers,
                                               size_t queue_capacity = 1024) {
  ServiceOptions options;
  options.executor.num_threads = workers;
  options.executor.queue_capacity = queue_capacity;
  auto service = std::make_unique<EstimationService>(options);
  service->store().Install("fig7", MakeFixture());
  return service;
}

const std::vector<std::string> kQueries = {
    "//A[/B/C[range(0,0)]]//E", "/A", "/A/B", "/A/B/C", "//C",
    "//E", "/A/*", "/A/B/C[range(0,4)]", "//A/Q", "/Z",
};

TEST(EstimationServiceTest, EstimateOneMatchesDirectEstimator) {
  auto service = MakeService(0);
  QueryResult result = service->EstimateOne("fig7", "/A/B/C[range(0,4)]");
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_NEAR(result.estimate, 250.0, 1e-9);

  QueryResult missing = service->EstimateOne("nope", "/A");
  EXPECT_EQ(missing.status.code(), Status::Code::kNotFound);

  QueryResult malformed = service->EstimateOne("fig7", "not a query");
  EXPECT_EQ(malformed.status.code(), Status::Code::kInvalidArgument);
}

TEST(EstimationServiceTest, BatchReportsPerQueryOutcomes) {
  auto service = MakeService(2);
  std::vector<std::string> queries = kQueries;
  queries.push_back("][broken");
  BatchResult batch = service->EstimateBatch("fig7", queries);
  ASSERT_EQ(batch.results.size(), queries.size());

  EXPECT_TRUE(batch.results[0].status.ok());
  EXPECT_NEAR(batch.results[0].estimate, 500.0, 1e-6);
  EXPECT_TRUE(batch.results[1].status.ok());
  EXPECT_NEAR(batch.results[1].estimate, 10.0, 1e-9);
  EXPECT_EQ(batch.results.back().status.code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(batch.stats.ok, queries.size() - 1);
  EXPECT_EQ(batch.stats.failed, 1u);
  EXPECT_GE(batch.stats.max_latency_ns, batch.stats.p50_latency_ns);
}

TEST(EstimationServiceTest, UnknownCollectionFailsEveryQuery) {
  auto service = MakeService(2);
  BatchResult batch = service->EstimateBatch("missing", kQueries);
  ASSERT_EQ(batch.results.size(), kQueries.size());
  for (const QueryResult& result : batch.results) {
    EXPECT_EQ(result.status.code(), Status::Code::kNotFound);
  }
  EXPECT_EQ(batch.stats.failed, kQueries.size());
}

// The determinism contract: the same batch, estimated inline, with one
// worker, and with many workers, produces bit-identical estimates and
// identical explanation VarStats.
TEST(EstimationServiceTest, WorkerCountDoesNotChangeResults) {
  BatchOptions options;
  options.explain = true;

  BatchResult baseline;
  {
    auto service = MakeService(0);
    baseline = service->EstimateBatch("fig7", kQueries, options);
  }
  ASSERT_EQ(baseline.results.size(), kQueries.size());
  for (size_t workers : {1u, 4u, 8u}) {
    auto service = MakeService(workers);
    BatchResult batch = service->EstimateBatch("fig7", kQueries, options);
    ASSERT_EQ(batch.results.size(), baseline.results.size());
    for (size_t i = 0; i < batch.results.size(); ++i) {
      EXPECT_EQ(batch.results[i].status.code(),
                baseline.results[i].status.code())
          << "workers=" << workers << " query " << kQueries[i];
      // Bit-identical, not nearly-equal.
      EXPECT_EQ(batch.results[i].estimate, baseline.results[i].estimate)
          << "workers=" << workers << " query " << kQueries[i];
      // The rendered explanation embeds every VarStats field.
      EXPECT_EQ(batch.results[i].explanation, baseline.results[i].explanation)
          << "workers=" << workers << " query " << kQueries[i];
    }
  }
}

// Same contract over a real dataset with descendant-heavy queries, where
// worker interleavings exercise the shared reach cache.
TEST(EstimationServiceTest, WorkerCountDeterminismOnXMark) {
  XMarkOptions xmark_options;
  xmark_options.scale = 0.05;
  GeneratedDataset dataset = GenerateXMark(xmark_options);
  ReferenceOptions ref_options;
  ref_options.value_paths = dataset.value_paths;
  GraphSynopsis reference =
      BuildReferenceSynopsis(dataset.doc, ref_options);
  WorkloadOptions wl_options;
  wl_options.num_queries = 60;
  Workload workload = GenerateWorkload(dataset.doc, reference, wl_options);

  std::vector<std::string> queries;
  queries.reserve(workload.queries.size());
  for (const WorkloadQuery& query : workload.queries) {
    queries.push_back(query.query.ToString());
  }

  std::vector<double> baseline;
  for (size_t workers : {1u, 8u}) {
    ServiceOptions options;
    options.executor.num_threads = workers;
    EstimationService service(options);
    service.store().Install("xmark", XCluster(reference));
    BatchResult batch = service.EstimateBatch("xmark", queries);
    if (workers == 1u) {
      for (const QueryResult& result : batch.results) {
        EXPECT_TRUE(result.status.ok()) << result.status.ToString();
        baseline.push_back(result.estimate);
      }
    } else {
      ASSERT_EQ(batch.results.size(), baseline.size());
      for (size_t i = 0; i < batch.results.size(); ++i) {
        EXPECT_EQ(batch.results[i].estimate, baseline[i])
            << "query " << queries[i];
      }
    }
  }
}

// A batch much larger than the queue exercises the flow-control path:
// every query completes, none is lost to backpressure.
TEST(EstimationServiceTest, BatchLargerThanQueueCompletes) {
  auto service = MakeService(4, /*queue_capacity=*/8);
  std::vector<std::string> queries;
  for (int i = 0; i < 400; ++i) queries.push_back(kQueries[i % 8]);
  BatchResult batch = service->EstimateBatch("fig7", queries);
  ASSERT_EQ(batch.results.size(), queries.size());
  EXPECT_EQ(batch.stats.ok, queries.size());
  EXPECT_EQ(batch.stats.failed, 0u);
}

// An already-expired deadline fails queries with DeadlineExceeded instead
// of estimating them (some may still slip through on a fast machine if
// they were popped before the clock ticked — so assert on the aggregate).
TEST(EstimationServiceTest, ExpiredDeadlineShortCircuits) {
  auto service = MakeService(2);
  std::vector<std::string> queries;
  for (int i = 0; i < 50; ++i) queries.push_back("/A/B/C");
  BatchOptions options;
  options.deadline_ns = 1;  // expires effectively immediately
  BatchResult batch = service->EstimateBatch("fig7", queries, options);
  size_t deadline_exceeded = 0;
  for (const QueryResult& result : batch.results) {
    if (result.status.code() == Status::Code::kDeadlineExceeded) {
      ++deadline_exceeded;
    }
  }
  EXPECT_GT(deadline_exceeded, 0u);
  EXPECT_EQ(batch.stats.failed, deadline_exceeded);
}

// Hot-swapping the collection mid-stream never mixes generations within
// one batch: all results come from the snapshot resolved at submission.
TEST(EstimationServiceTest, BatchPinsItsSnapshot) {
  auto service = MakeService(2);
  std::vector<std::string> queries(50, "/A");
  BatchResult before = service->EstimateBatch("fig7", queries);
  service->store().Install("fig7", MakeFixture());  // new generation
  BatchResult after = service->EstimateBatch("fig7", queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(before.results[i].estimate, after.results[i].estimate);
  }
}

}  // namespace
}  // namespace xcluster
