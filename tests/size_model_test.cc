#include "synopsis/size_model.h"

#include <gtest/gtest.h>

#include "synopsis/graph.h"

namespace xcluster {
namespace {

TEST(SizeModelTest, Constants) {
  // The budget semantics of Sec. 4.3 depend on these staying stable; a
  // change here invalidates recorded experiment numbers.
  EXPECT_EQ(SizeModel::kNodeBytes, 9u);
  EXPECT_EQ(SizeModel::kEdgeBytes, 8u);
}

TEST(SizeModelTest, StructuralBytesComposition) {
  EXPECT_EQ(SizeModel::StructuralBytes(0, 0), 0u);
  EXPECT_EQ(SizeModel::StructuralBytes(3, 5),
            3 * SizeModel::kNodeBytes + 5 * SizeModel::kEdgeBytes);
}

TEST(SizeModelTest, SynopsisUsesTheModel) {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("r", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("a", ValueType::kNone, 2.0);
  SynNodeId b = synopsis.AddNode("b", ValueType::kNone, 2.0);
  synopsis.AddEdge(root, a, 2.0);
  synopsis.AddEdge(root, b, 2.0);
  synopsis.AddEdge(a, b, 1.0);
  EXPECT_EQ(synopsis.StructuralBytes(), SizeModel::StructuralBytes(3, 3));
}

TEST(SizeModelTest, MergeSavingsAreRealizedBytes) {
  // The savings computed by the candidate evaluator must equal the actual
  // byte delta of applying the merge.
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("r", ValueType::kNone, 1.0);
  SynNodeId u = synopsis.AddNode("a", ValueType::kNone, 2.0);
  SynNodeId v = synopsis.AddNode("a", ValueType::kNone, 2.0);
  SynNodeId c = synopsis.AddNode("c", ValueType::kNone, 4.0);
  synopsis.AddEdge(root, u, 2.0);
  synopsis.AddEdge(root, v, 2.0);
  synopsis.AddEdge(u, c, 1.0);
  synopsis.AddEdge(v, c, 1.0);
  const size_t before = synopsis.StructuralBytes();
  synopsis.MergeNodes(u, v);
  const size_t after = synopsis.StructuralBytes();
  EXPECT_EQ(before - after,
            SizeModel::kNodeBytes + 2 * SizeModel::kEdgeBytes);
}

}  // namespace
}  // namespace xcluster
