#include "synopsis/stats.h"

#include <gtest/gtest.h>

#include "data/treebank.h"
#include "synopsis/reference.h"

namespace xcluster {
namespace {

GraphSynopsis SmallSynopsis() {
  GraphSynopsis synopsis;
  SynNodeId root = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a1 = synopsis.AddNode("a", ValueType::kNone, 5.0);
  SynNodeId a2 = synopsis.AddNode("a", ValueType::kNone, 3.0);
  SynNodeId y = synopsis.AddNode("y", ValueType::kNumeric, 8.0);
  synopsis.AddEdge(root, a1, 5.0);
  synopsis.AddEdge(root, a2, 3.0);
  synopsis.AddEdge(a1, y, 1.0);
  synopsis.AddEdge(a2, y, 1.0);
  synopsis.node(y).vsumm = ValueSummary::FromNumeric({1, 2, 3}, 8);
  return synopsis;
}

TEST(StatsTest, CountsNodesAndEdges) {
  SynopsisStats stats = ComputeStats(SmallSynopsis());
  EXPECT_EQ(stats.nodes, 4u);
  EXPECT_EQ(stats.edges, 4u);
  EXPECT_GT(stats.structural_bytes, 0u);
  EXPECT_GT(stats.value_bytes, 0u);
}

TEST(StatsTest, PerLabelAggregation) {
  SynopsisStats stats = ComputeStats(SmallSynopsis());
  ASSERT_TRUE(stats.by_label.count("a"));
  EXPECT_EQ(stats.by_label["a"].clusters, 2u);
  EXPECT_DOUBLE_EQ(stats.by_label["a"].elements, 8.0);
}

TEST(StatsTest, PerTypeAggregation) {
  SynopsisStats stats = ComputeStats(SmallSynopsis());
  ASSERT_TRUE(stats.by_type.count(ValueType::kNumeric));
  EXPECT_EQ(stats.by_type[ValueType::kNumeric].clusters, 1u);
  EXPECT_DOUBLE_EQ(stats.by_type[ValueType::kNumeric].elements, 8.0);
  EXPECT_FALSE(stats.by_type.count(ValueType::kString));
}

TEST(StatsTest, Degrees) {
  SynopsisStats stats = ComputeStats(SmallSynopsis());
  EXPECT_EQ(stats.max_out_degree, 2u);
  EXPECT_EQ(stats.max_in_degree, 2u);  // y has two parents
  EXPECT_NEAR(stats.avg_out_degree, 1.0, 1e-12);
}

TEST(StatsTest, ToStringMentionsKeyFigures) {
  SynopsisStats stats = ComputeStats(SmallSynopsis());
  std::string text = stats.ToString();
  EXPECT_NE(text.find("nodes 4"), std::string::npos);
  EXPECT_NE(text.find("numeric"), std::string::npos);
  EXPECT_NE(text.find("label 'y'"), std::string::npos);
}

TEST(StatsTest, EmptySynopsis) {
  SynopsisStats stats = ComputeStats(GraphSynopsis());
  EXPECT_EQ(stats.nodes, 0u);
  EXPECT_EQ(stats.avg_out_degree, 0.0);
}

TEST(StatsTest, OnGeneratedReference) {
  TreebankOptions options;
  options.scale = 0.05;
  GeneratedDataset dataset = GenerateTreebank(options);
  ReferenceOptions ref_options;
  ref_options.value_paths = dataset.value_paths;
  GraphSynopsis reference = BuildReferenceSynopsis(dataset.doc, ref_options);
  SynopsisStats stats = ComputeStats(reference);
  EXPECT_EQ(stats.nodes, reference.NodeCount());
  double total_elements = 0.0;
  for (const auto& [label, label_stats] : stats.by_label) {
    total_elements += label_stats.elements;
  }
  EXPECT_NEAR(total_elements, static_cast<double>(dataset.doc.size()), 1e-6);
}

}  // namespace
}  // namespace xcluster
