#include "common/status.h"

#include <gtest/gtest.h>

namespace xcluster {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCodesAndMessages) {
  Status status = Status::InvalidArgument("bad budget");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad budget");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad budget");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), Status::Code::kCorruption);
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
  EXPECT_EQ(Status::IOError("x").code(), Status::Code::kIOError);
  EXPECT_EQ(Status::Unsupported("x").code(), Status::Code::kUnsupported);
}

TEST(StatusTest, ToStringWithoutMessage) {
  EXPECT_EQ(Status::NotFound("").ToString(), "NotFound");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, NonDefaultConstructibleValue) {
  struct NoDefault {
    explicit NoDefault(int x) : value(x) {}
    int value;
  };
  Result<NoDefault> result(NoDefault(3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().value, 3);
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto inner = []() { return Status::Corruption("inner"); };
  auto outer = [&]() -> Status {
    XC_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), Status::Code::kCorruption);
}

TEST(ReturnIfErrorTest, PassesThroughOk) {
  auto outer = []() -> Status {
    XC_RETURN_IF_ERROR(Status::OK());
    return Status::InvalidArgument("reached");
  };
  EXPECT_EQ(outer().code(), Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace xcluster
