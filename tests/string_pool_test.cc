#include "common/string_pool.h"

#include <gtest/gtest.h>

namespace xcluster {
namespace {

TEST(StringPoolTest, InternAssignsDenseIds) {
  StringPool pool;
  EXPECT_EQ(pool.Intern("a"), 0u);
  EXPECT_EQ(pool.Intern("b"), 1u);
  EXPECT_EQ(pool.Intern("c"), 2u);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(StringPoolTest, InternIsIdempotent) {
  StringPool pool;
  SymbolId id = pool.Intern("movie");
  EXPECT_EQ(pool.Intern("movie"), id);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(StringPoolTest, GetRoundTrips) {
  StringPool pool;
  SymbolId id = pool.Intern("open_auction");
  EXPECT_EQ(pool.Get(id), "open_auction");
}

TEST(StringPoolTest, LookupFindsInterned) {
  StringPool pool;
  SymbolId id = pool.Intern("person");
  EXPECT_EQ(pool.Lookup("person"), id);
}

TEST(StringPoolTest, LookupMissingReturnsInvalid) {
  StringPool pool;
  pool.Intern("x");
  EXPECT_EQ(pool.Lookup("y"), kInvalidSymbol);
}

TEST(StringPoolTest, EmptyStringIsValid) {
  StringPool pool;
  SymbolId id = pool.Intern("");
  EXPECT_EQ(pool.Get(id), "");
  EXPECT_EQ(pool.Lookup(""), id);
}

TEST(StringPoolTest, ManyStringsStable) {
  StringPool pool;
  for (int i = 0; i < 1000; ++i) {
    pool.Intern("label" + std::to_string(i));
  }
  EXPECT_EQ(pool.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    std::string s = "label" + std::to_string(i);
    EXPECT_EQ(pool.Get(pool.Lookup(s)), s);
  }
}

}  // namespace
}  // namespace xcluster
