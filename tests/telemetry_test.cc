#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/telemetry.h"
#include "common/telemetry/trace.h"

namespace xcluster {
namespace telemetry {
namespace {

TEST(LatencyHistogramTest, BucketBoundariesArePowersOfTwo) {
  // Bucket 0 is the underflow bucket [0, 2^kFirstBucketLog2).
  EXPECT_EQ(LatencyHistogram::BucketUpperBoundNs(0),
            uint64_t{1} << LatencyHistogram::kFirstBucketLog2);
  for (size_t i = 1; i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(LatencyHistogram::BucketUpperBoundNs(i),
              uint64_t{1} << (LatencyHistogram::kFirstBucketLog2 + i));
  }
  // Last bucket is open-ended.
  EXPECT_EQ(
      LatencyHistogram::BucketUpperBoundNs(LatencyHistogram::kNumBuckets - 1),
      UINT64_MAX);
}

TEST(LatencyHistogramTest, RecordLandsInCorrectBucket) {
  LatencyHistogram hist;
  const uint64_t first = uint64_t{1} << LatencyHistogram::kFirstBucketLog2;
  hist.Record(0);              // underflow bucket
  hist.Record(first - 1);      // still underflow
  hist.Record(first);          // bucket 1
  hist.Record(2 * first - 1);  // bucket 1
  hist.Record(2 * first);      // bucket 2
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 2u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.min_ns(), 0u);
  EXPECT_EQ(hist.max_ns(), 2 * first);
  EXPECT_EQ(hist.sum_ns(),
            0 + (first - 1) + first + (2 * first - 1) + 2 * first);
}

TEST(LatencyHistogramTest, HugeValueLandsInOverflowBucket) {
  LatencyHistogram hist;
  hist.Record(UINT64_MAX);
  EXPECT_EQ(hist.bucket_count(LatencyHistogram::kNumBuckets - 1), 1u);
  EXPECT_EQ(hist.count(), 1u);
}

TEST(LatencyHistogramTest, QuantilesOfUniformSamples) {
  LatencyHistogram hist;
  // 1000 samples spread over [1us, 1ms); quantiles should be ordered and
  // bracketed by the observed range.
  for (uint64_t i = 0; i < 1000; ++i) {
    hist.Record(1000 + i * 999);  // 1'000 .. 999'001 ns
  }
  const double p50 = hist.QuantileNs(0.50);
  const double p95 = hist.QuantileNs(0.95);
  const double p99 = hist.QuantileNs(0.99);
  EXPECT_GE(p50, static_cast<double>(hist.min_ns()));
  EXPECT_LE(p99, static_cast<double>(hist.max_ns()));
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // p50 of a uniform distribution over ~[1e3, 1e6] must land in the
  // power-of-two bucket containing the true median (~5e5): [2^18, 2^19].
  EXPECT_GE(p50, 1.0 * (1 << 18));
  EXPECT_LE(p50, 1.0 * (1 << 19));
}

TEST(LatencyHistogramTest, QuantileOfSingleSampleIsThatSample) {
  LatencyHistogram hist;
  hist.Record(12345);
  EXPECT_DOUBLE_EQ(hist.QuantileNs(0.50), 12345.0);
  EXPECT_DOUBLE_EQ(hist.QuantileNs(0.99), 12345.0);
}

TEST(LatencyHistogramTest, EmptyHistogramQuantileIsZero) {
  LatencyHistogram hist;
  EXPECT_DOUBLE_EQ(hist.QuantileNs(0.50), 0.0);
  EXPECT_EQ(hist.count(), 0u);
}

TEST(MetricsRegistryTest, CountersAndGaugesRoundTrip) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  counter->Add(41);
  counter->Increment();
  EXPECT_EQ(counter->value(), 42u);
  // Same name returns the same instance.
  EXPECT_EQ(registry.GetCounter("test.counter"), counter);

  Gauge* gauge = registry.GetGauge("test.gauge");
  gauge->Set(-7);
  EXPECT_EQ(gauge->value(), -7);
}

TEST(MetricsRegistryTest, ConcurrentCounterIncrements) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* counter = registry.GetCounter("concurrent.counter");
      LatencyHistogram* hist = registry.GetHistogram("concurrent.hist_ns");
      for (int i = 0; i < kIncrements; ++i) {
        counter->Increment();
        hist->Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("concurrent.counter")->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(registry.GetHistogram("concurrent.hist_ns")->count(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

// First-use registration race (audited for the serving path): when many
// threads request the same not-yet-registered name at once, exactly one
// Counter is created, every caller gets the same pointer, and no update
// made through any of those pointers is lost. See the "First-use
// guarantee" note on MetricsRegistry.
TEST(MetricsRegistryTest, ConcurrentFirstUseRegistrationLosesNoUpdates) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kNames = 16;
  std::vector<Counter*> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      // All threads race creation of the same fresh names; increment
      // through the pointer handed back, immediately on first use.
      for (int n = 0; n < kNames; ++n) {
        Counter* counter =
            registry.GetCounter("firstuse.c" + std::to_string(n));
        counter->Increment();
        registry.GetHistogram("firstuse.h" + std::to_string(n))
            ->Record(static_cast<uint64_t>(n));
        registry.GetGauge("firstuse.g" + std::to_string(n))->Set(n);
        if (n == 0) seen[t] = counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);  // one object per name, stable address
  }
  for (int n = 0; n < kNames; ++n) {
    EXPECT_EQ(registry.GetCounter("firstuse.c" + std::to_string(n))->value(),
              static_cast<uint64_t>(kThreads));
    EXPECT_EQ(
        registry.GetHistogram("firstuse.h" + std::to_string(n))->count(),
        static_cast<uint64_t>(kThreads));
  }
}

TEST(MetricsRegistryTest, SnapshotIsDeterministic) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter")->Add(2);
  registry.GetCounter("a.counter")->Add(1);
  registry.GetGauge("z.gauge")->Set(9);
  registry.GetHistogram("m.hist_ns")->Record(500);

  MetricsSnapshot first = registry.Snapshot();
  MetricsSnapshot second = registry.Snapshot();
  EXPECT_EQ(first.ToJson(), second.ToJson());
  EXPECT_EQ(first.ToPrometheus(), second.ToPrometheus());

  // Registration order must not leak into the serialized form: names are
  // sorted, so a registry populated in a different order serializes equal.
  MetricsRegistry reordered;
  reordered.GetHistogram("m.hist_ns")->Record(500);
  reordered.GetGauge("z.gauge")->Set(9);
  reordered.GetCounter("a.counter")->Add(1);
  reordered.GetCounter("b.counter")->Add(2);
  EXPECT_EQ(reordered.Snapshot().ToJson(), first.ToJson());
}

TEST(MetricsRegistryTest, SnapshotJsonRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("round.counter")->Add(7);
  registry.GetGauge("round.gauge")->Set(-3);
  LatencyHistogram* hist = registry.GetHistogram("round.hist_ns");
  for (uint64_t i = 1; i <= 100; ++i) hist->Record(i * 1000);

  const std::string json = registry.Snapshot().ToJson();
  Result<MetricsSnapshot> parsed = SnapshotFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().ToJson(), json);
}

TEST(MetricsRegistryTest, SnapshotFromJsonRejectsGarbage) {
  EXPECT_FALSE(SnapshotFromJson("not json").ok());
  EXPECT_FALSE(SnapshotFromJson("[]").ok());
  EXPECT_FALSE(SnapshotFromJson("{\"counters\": 3}").ok());
}

TEST(MetricsRegistryTest, PrometheusOutputIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("prom.counter")->Add(5);
  registry.GetHistogram("prom.latency_ns")->Record(1000000);
  const std::string prom = registry.Snapshot().ToPrometheus();
  EXPECT_NE(prom.find("xcluster_prom_counter 5"), std::string::npos);
  // _ns histograms are exported in seconds with cumulative buckets.
  EXPECT_NE(prom.find("xcluster_prom_latency_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("xcluster_prom_latency_seconds_count 1"),
            std::string::npos);
}

TEST(TraceRecorderTest, ProducesWellFormedChromeTraceJson) {
  TraceRecorder recorder;
  recorder.Add({"phase1", "build", 2000, 500, 0});
  recorder.Add({"phase2", "build", 1000, 250, 1});
  EXPECT_EQ(recorder.event_count(), 2u);

  const std::string json = recorder.ToJson();
  Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items().size(), 2u);
  for (const JsonValue& event : events->items()) {
    ASSERT_NE(event.Find("name"), nullptr);
    ASSERT_NE(event.Find("ts"), nullptr);
    ASSERT_NE(event.Find("dur"), nullptr);
    const JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->as_string(), "X");
  }
  // Timestamps are rebased to the earliest event and the output is sorted
  // by start time (ring snapshots are unordered, so ToJson imposes the
  // order): the 1000ns event leads with ts=0, the 2000ns one follows at
  // ts=1us — even though they were added in the opposite order.
  EXPECT_EQ(events->items()[0].Find("name")->as_string(), "phase2");
  EXPECT_DOUBLE_EQ(events->items()[0].Find("ts")->as_number(), 0.0);
  EXPECT_EQ(events->items()[1].Find("name")->as_string(), "phase1");
  EXPECT_DOUBLE_EQ(events->items()[1].Find("ts")->as_number(), 1.0);
}

TEST(TraceRecorderTest, SpanRecordsIntoInstalledRecorder) {
  TraceRecorder recorder;
  TraceRecorder* previous = GlobalTraceRecorder();
  InstallGlobalTraceRecorder(&recorder);
  {
    TraceSpan span("unit.span");
  }
  InstallGlobalTraceRecorder(previous);
  ASSERT_EQ(recorder.event_count(), 1u);
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("unit.span"), std::string::npos);
}

TEST(TraceRecorderTest, ConcurrentSpansAreAllRecorded) {
  TraceRecorder recorder;
  TraceRecorder* previous = GlobalTraceRecorder();
  InstallGlobalTraceRecorder(&recorder);
  constexpr int kThreads = 4;
  constexpr int kSpans = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        TraceSpan span("concurrent.span");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  InstallGlobalTraceRecorder(previous);
  EXPECT_EQ(recorder.event_count(), static_cast<size_t>(kThreads) * kSpans);
  Result<JsonValue> parsed = ParseJson(recorder.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

#if XCLUSTER_TELEMETRY_ENABLED
TEST(TelemetryMacrosTest, MacrosUpdateGlobalRegistry) {
  const uint64_t before =
      MetricsRegistry::Global().GetCounter("macro.test.counter")->value();
  XCLUSTER_COUNTER_ADD("macro.test.counter", 3);
  XCLUSTER_COUNTER_INC("macro.test.counter");
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("macro.test.counter")->value(),
      before + 4);

  XCLUSTER_GAUGE_SET("macro.test.gauge", 11);
  EXPECT_EQ(MetricsRegistry::Global().GetGauge("macro.test.gauge")->value(),
            11);

  const uint64_t hist_before =
      MetricsRegistry::Global().GetHistogram("macro.test.hist_ns")->count();
  XCLUSTER_HISTOGRAM_RECORD_NS("macro.test.hist_ns", 4096);
  {
    XCLUSTER_SCOPED_TIMER_NS("macro.test.hist_ns");
  }
  EXPECT_EQ(
      MetricsRegistry::Global().GetHistogram("macro.test.hist_ns")->count(),
      hist_before + 2);
}
#else
TEST(TelemetryMacrosTest, MacrosCompileToNoOpsWhenDisabled) {
  // With XCLUSTER_TELEMETRY=OFF the macros must still be syntactically
  // valid statements that evaluate nothing.
  XCLUSTER_COUNTER_ADD("macro.off.counter", 3);
  XCLUSTER_COUNTER_INC("macro.off.counter");
  XCLUSTER_GAUGE_SET("macro.off.gauge", 11);
  XCLUSTER_HISTOGRAM_RECORD_NS("macro.off.hist_ns", 4096);
  { XCLUSTER_SCOPED_TIMER_NS("macro.off.hist_ns"); }
  { XCLUSTER_TRACE_SPAN("macro.off.span"); }
  SUCCEED();
}
#endif

}  // namespace
}  // namespace telemetry
}  // namespace xcluster
