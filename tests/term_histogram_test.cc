#include "summaries/term_histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace xcluster {
namespace {

TEST(TermHistogramTest, EmptyBuild) {
  TermHistogram hist = TermHistogram::Build({});
  EXPECT_EQ(hist.indexed_count(), 0u);
  EXPECT_EQ(hist.SizeBytes(), 0u);
  EXPECT_EQ(hist.Frequency(0), 0.0);
}

TEST(TermHistogramTest, ExactCentroidFrequencies) {
  // Three texts: term 1 in all, term 2 in one, term 5 in two.
  std::vector<TermSet> texts = {{1, 2, 5}, {1, 5}, {1}};
  TermHistogram hist = TermHistogram::Build(texts);
  EXPECT_DOUBLE_EQ(hist.Frequency(1), 1.0);
  EXPECT_DOUBLE_EQ(hist.Frequency(2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(hist.Frequency(5), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(hist.Frequency(9), 0.0);
}

TEST(TermHistogramTest, SelectivityIsProductOfFrequencies) {
  std::vector<TermSet> texts = {{1, 2}, {1}, {1, 2}, {1}};
  TermHistogram hist = TermHistogram::Build(texts);
  EXPECT_DOUBLE_EQ(hist.Selectivity({1}), 1.0);
  EXPECT_DOUBLE_EQ(hist.Selectivity({2}), 0.5);
  EXPECT_DOUBLE_EQ(hist.Selectivity({1, 2}), 0.5);
  EXPECT_DOUBLE_EQ(hist.Selectivity({}), 1.0);
  EXPECT_DOUBLE_EQ(hist.Selectivity({7}), 0.0);
}

TEST(TermHistogramTest, AnySelectivityInclusionExclusion) {
  std::vector<TermSet> texts = {{1, 2}, {1}, {3}, {4}};
  TermHistogram hist = TermHistogram::Build(texts);
  // w[1] = 0.5, w[2] = 0.25: 1 - 0.5*0.75 = 0.625.
  EXPECT_NEAR(hist.AnySelectivity({1, 2}), 0.625, 1e-12);
  EXPECT_NEAR(hist.AnySelectivity({1}), 0.5, 1e-12);
  EXPECT_EQ(hist.AnySelectivity({}), 0.0);
  EXPECT_EQ(hist.AnySelectivity({9}), 0.0);
}

TEST(TermHistogramTest, SimilaritySelectivityPoissonBinomial) {
  // w[1] = 0.5, w[2] = 0.5, independent.
  TermHistogram hist = TermHistogram::Build({{1, 2}, {1}, {2}, {}});
  // P(at least 1 of {1,2}) = 1 - 0.25 = 0.75.
  EXPECT_NEAR(hist.SimilaritySelectivity({1, 2}, 1), 0.75, 1e-12);
  // P(both) = 0.25.
  EXPECT_NEAR(hist.SimilaritySelectivity({1, 2}, 2), 0.25, 1e-12);
  // Requiring more matches than terms is impossible.
  EXPECT_EQ(hist.SimilaritySelectivity({1, 2}, 3), 0.0);
  // Zero required matches is trivially satisfied.
  EXPECT_EQ(hist.SimilaritySelectivity({1, 2}, 0), 1.0);
}

TEST(TermHistogramTest, CompressMovesLowestFrequencies) {
  std::vector<TermSet> texts = {{1, 2, 3}, {1, 2}, {1}};
  TermHistogram hist = TermHistogram::Build(texts);
  hist.Compress(1);  // moves term 3 (freq 1/3) to the uniform bucket
  EXPECT_EQ(hist.indexed_count(), 2u);
  EXPECT_EQ(hist.uniform_count(), 1u);
  // Term 3 now estimated by the bucket average (its own former frequency).
  EXPECT_NEAR(hist.Frequency(3), 1.0 / 3.0, 1e-12);
  // Indexed terms still exact.
  EXPECT_DOUBLE_EQ(hist.Frequency(1), 1.0);
}

TEST(TermHistogramTest, UniformBucketPreservesZeroEntries) {
  std::vector<TermSet> texts = {{1}, {2}, {3}};
  TermHistogram hist = TermHistogram::Build(texts);
  hist.Compress(3);
  EXPECT_EQ(hist.indexed_count(), 0u);
  EXPECT_EQ(hist.uniform_count(), 3u);
  // Members share the average; non-members are exactly zero.
  EXPECT_NEAR(hist.Frequency(1), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(hist.Frequency(4), 0.0);
}

TEST(TermHistogramTest, CompressPreservesTotalMass) {
  std::vector<TermSet> texts = {{0, 1, 2, 3, 4}, {0, 1}, {0, 2, 4}};
  TermHistogram hist = TermHistogram::Build(texts);
  double mass_before = 0.0;
  for (TermId t = 0; t < 5; ++t) mass_before += hist.Frequency(t);
  hist.Compress(3);
  double mass_after = 0.0;
  for (TermId t = 0; t < 5; ++t) mass_after += hist.Frequency(t);
  EXPECT_NEAR(mass_before, mass_after, 1e-9);
}

TEST(TermHistogramTest, CompressBeyondCapacityStops) {
  std::vector<TermSet> texts = {{1, 2}};
  TermHistogram hist = TermHistogram::Build(texts);
  hist.Compress(10);
  EXPECT_EQ(hist.indexed_count(), 0u);
  EXPECT_FALSE(hist.CanCompress());
}

TEST(TermHistogramTest, CompressedCopyLeavesOriginal) {
  std::vector<TermSet> texts = {{1, 2, 3}};
  TermHistogram hist = TermHistogram::Build(texts);
  TermHistogram compressed = hist.Compressed(2);
  EXPECT_EQ(hist.indexed_count(), 3u);
  EXPECT_EQ(compressed.indexed_count(), 1u);
}

TEST(TermHistogramTest, MergeWeightedCombination) {
  // Cluster A: 2 texts, term 1 in both. Cluster B: 2 texts, term 1 in one.
  TermHistogram a = TermHistogram::Build({{1}, {1}});
  TermHistogram b = TermHistogram::Build({{1}, {2}});
  TermHistogram merged = TermHistogram::Merge(a, 2.0, b, 2.0);
  EXPECT_NEAR(merged.Frequency(1), 0.75, 1e-12);
  EXPECT_NEAR(merged.Frequency(2), 0.25, 1e-12);
}

TEST(TermHistogramTest, MergeUnequalWeights) {
  TermHistogram a = TermHistogram::Build({{1}});      // freq 1
  TermHistogram b = TermHistogram::Build({{2}, {3}});  // freqs 0.5
  TermHistogram merged = TermHistogram::Merge(a, 1.0, b, 3.0);
  EXPECT_NEAR(merged.Frequency(1), 0.25, 1e-12);
  EXPECT_NEAR(merged.Frequency(2), 0.375, 1e-12);
}

TEST(TermHistogramTest, MergeZeroWeightsYieldsEmpty) {
  TermHistogram a = TermHistogram::Build({{1}});
  TermHistogram merged = TermHistogram::Merge(a, 0.0, TermHistogram(), 0.0);
  EXPECT_EQ(merged.indexed_count(), 0u);
}

TEST(TermHistogramTest, MergeOfCompressedHistograms) {
  TermHistogram a = TermHistogram::Build({{1, 2}, {1}});
  a.Compress(1);
  TermHistogram b = TermHistogram::Build({{1}, {3}});
  TermHistogram merged = TermHistogram::Merge(a, 2.0, b, 2.0);
  // Term 1 indexed on both sides: weighted average of 1.0 and 0.5.
  EXPECT_NEAR(merged.Frequency(1), 0.75, 1e-12);
  // Term 2 only in a's uniform bucket; term 3 indexed in b.
  EXPECT_GT(merged.Frequency(2), 0.0);
  EXPECT_NEAR(merged.Frequency(3), 0.25, 1e-12);
}

TEST(TermHistogramTest, SampleTermsCoversIndexedFirst) {
  TermHistogram hist = TermHistogram::Build({{1, 2, 3, 4}});
  hist.Compress(2);
  std::vector<TermId> sample = hist.SampleTerms(0);
  EXPECT_EQ(sample.size(), 4u);
  std::vector<TermId> capped = hist.SampleTerms(2);
  EXPECT_EQ(capped.size(), 2u);
}

TEST(TermHistogramTest, UniformRunsCountsRle) {
  TermHistogram hist = TermHistogram::FromParts(
      {}, {0, 1, 2, 7, 8, 20}, 0.1);
  // Present runs: [0-2], [7-8], [20] = 3; zero runs between/before: [3-6],
  // [9-19] = 2 (no leading zero run since term 0 present).
  EXPECT_EQ(hist.UniformRuns(), 5u);
}

TEST(TermHistogramTest, UniformRunsWithLeadingGap) {
  TermHistogram hist = TermHistogram::FromParts({}, {5}, 0.2);
  // Leading zero run + one present run.
  EXPECT_EQ(hist.UniformRuns(), 2u);
}

TEST(TermHistogramTest, SizeBytesShrinksWithRuns) {
  // Contiguous members compress much better than scattered ones.
  std::vector<TermId> contiguous;
  std::vector<TermId> scattered;
  for (TermId t = 0; t < 50; ++t) {
    contiguous.push_back(t);
    scattered.push_back(t * 7);
  }
  TermHistogram dense = TermHistogram::FromParts({}, contiguous, 0.1);
  TermHistogram sparse = TermHistogram::FromParts({}, scattered, 0.1);
  EXPECT_LT(dense.SizeBytes(), sparse.SizeBytes());
}

TEST(TermHistogramTest, FromPartsRoundTrip) {
  TermHistogram hist = TermHistogram::FromParts(
      {{3, 0.5}, {1, 0.9}}, {7, 9}, 0.25);
  EXPECT_DOUBLE_EQ(hist.Frequency(1), 0.9);
  EXPECT_DOUBLE_EQ(hist.Frequency(3), 0.5);
  EXPECT_DOUBLE_EQ(hist.Frequency(7), 0.25);
  EXPECT_DOUBLE_EQ(hist.Frequency(8), 0.0);
}

/// Property sweep: compression always reduces size and preserves total
/// frequency mass; merge is a weighted average of frequencies.
class TermHistogramPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TermHistogramPropertyTest, CompressAndMergeInvariants) {
  Rng rng(GetParam());
  auto random_texts = [&](size_t n, TermId vocab) {
    std::vector<TermSet> texts;
    for (size_t i = 0; i < n; ++i) {
      TermSet text;
      size_t len = 1 + rng.Uniform(10);
      for (size_t j = 0; j < len; ++j) {
        text.push_back(static_cast<TermId>(rng.Uniform(vocab)));
      }
      std::sort(text.begin(), text.end());
      text.erase(std::unique(text.begin(), text.end()), text.end());
      texts.push_back(std::move(text));
    }
    return texts;
  };

  std::vector<TermSet> texts_a = random_texts(40, 30);
  std::vector<TermSet> texts_b = random_texts(60, 30);
  TermHistogram a = TermHistogram::Build(texts_a);
  TermHistogram b = TermHistogram::Build(texts_b);

  TermHistogram merged = TermHistogram::Merge(a, 40.0, b, 60.0);
  for (TermId t = 0; t < 30; ++t) {
    double expected = 0.4 * a.Frequency(t) + 0.6 * b.Frequency(t);
    EXPECT_NEAR(merged.Frequency(t), expected, 1e-9) << t;
  }

  double mass_before = 0.0;
  for (TermId t = 0; t < 30; ++t) mass_before += merged.Frequency(t);
  size_t size_before = merged.SizeBytes();
  merged.Compress(merged.indexed_count() / 2);
  double mass_after = 0.0;
  for (TermId t = 0; t < 30; ++t) mass_after += merged.Frequency(t);
  EXPECT_NEAR(mass_before, mass_after, 1e-9);
  EXPECT_LE(merged.SizeBytes(), size_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TermHistogramPropertyTest,
                         ::testing::Values(3, 9, 27, 81, 243));

}  // namespace
}  // namespace xcluster
