#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace xcluster {
namespace {

TEST(TokenizerTest, SimpleWords) {
  EXPECT_EQ(Tokenize("hello world"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, Lowercases) {
  EXPECT_EQ(Tokenize("XML Synopsis"),
            (std::vector<std::string>{"xml", "synopsis"}));
}

TEST(TokenizerTest, PunctuationSplits) {
  EXPECT_EQ(Tokenize("a,b;c.d!e"),
            (std::vector<std::string>{"a", "b", "c", "d", "e"}));
}

TEST(TokenizerTest, DigitsKept) {
  EXPECT_EQ(Tokenize("year 2005 was fine"),
            (std::vector<std::string>{"year", "2005", "was", "fine"}));
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(Tokenize("").empty());
}

TEST(TokenizerTest, OnlyPunctuation) {
  EXPECT_TRUE(Tokenize("... --- !!!").empty());
}

TEST(TokenizerTest, LeadingAndTrailingSeparators) {
  EXPECT_EQ(Tokenize("  xml  "), (std::vector<std::string>{"xml"}));
}

TEST(TokenizerTest, DuplicatesPreserved) {
  EXPECT_EQ(Tokenize("the the the"),
            (std::vector<std::string>{"the", "the", "the"}));
}

TEST(TokenizerTest, MixedAlphanumericToken) {
  EXPECT_EQ(Tokenize("mp3 player"),
            (std::vector<std::string>{"mp3", "player"}));
}

}  // namespace
}  // namespace xcluster
