// Request tracing: trace ids and deterministic sampling, the bounded
// seqlock ring recorder, span parenting under a ScopedTraceContext, and
// the sorted Chrome-trace serialization. Complements telemetry_test.cc,
// which covers the unbounded recorder and the metrics registry.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/telemetry/trace.h"

namespace xcluster {
namespace telemetry {
namespace {

TEST(TraceIdTest, GenerateIsNonZeroAndDistinct) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = GenerateTraceId();
    EXPECT_NE(id, 0u);
    seen.insert(id);
  }
  // Ids mix a counter in, so collisions within one process are impossible.
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(TraceIdTest, HexRoundTrips) {
  for (const uint64_t id :
       {uint64_t{1}, uint64_t{0xdeadbeef}, uint64_t{0xffffffffffffffffull},
        GenerateTraceId()}) {
    const std::string hex = TraceIdHex(id);
    EXPECT_EQ(hex.size(), 16u);
    uint64_t parsed = 0;
    ASSERT_TRUE(ParseTraceIdHex(hex, &parsed).ok());
    EXPECT_EQ(parsed, id);
  }
  // Short and uppercase forms parse too.
  uint64_t parsed = 0;
  ASSERT_TRUE(ParseTraceIdHex("DEADbeef", &parsed).ok());
  EXPECT_EQ(parsed, 0xdeadbeefu);
  EXPECT_FALSE(ParseTraceIdHex("", &parsed).ok());
  EXPECT_FALSE(ParseTraceIdHex("xyz", &parsed).ok());
  EXPECT_FALSE(ParseTraceIdHex("0123456789abcdef0", &parsed).ok());
}

TEST(TraceSamplingTest, DecisionIsDeterministic) {
  for (int i = 0; i < 100; ++i) {
    const uint64_t id = GenerateTraceId();
    const bool first = SampleTrace(id, 0.5);
    for (int j = 0; j < 10; ++j) {
      EXPECT_EQ(SampleTrace(id, 0.5), first) << "id=" << TraceIdHex(id);
    }
  }
}

TEST(TraceSamplingTest, EdgeRates) {
  const uint64_t id = GenerateTraceId();
  EXPECT_FALSE(SampleTrace(id, 0.0));
  EXPECT_FALSE(SampleTrace(id, -1.0));
  EXPECT_TRUE(SampleTrace(id, 1.0));
  EXPECT_TRUE(SampleTrace(id, 2.0));
  EXPECT_FALSE(SampleTrace(0, 1.0));  // zero id = no context, never sampled
}

TEST(TraceSamplingTest, RateIsMonotoneAndRoughlyProportional) {
  // Raising the rate may only add ids to the sampled set, and the hit
  // count over many ids should track the rate.
  int hits25 = 0, hits75 = 0;
  constexpr int kIds = 4000;
  for (int i = 0; i < kIds; ++i) {
    const uint64_t id = GenerateTraceId();
    const bool at25 = SampleTrace(id, 0.25);
    const bool at75 = SampleTrace(id, 0.75);
    if (at25) {
      EXPECT_TRUE(at75) << "sampling must be monotone in rate";
    }
    hits25 += at25 ? 1 : 0;
    hits75 += at75 ? 1 : 0;
  }
  EXPECT_GT(hits25, kIds / 8);
  EXPECT_LT(hits25, kIds * 3 / 8);
  EXPECT_GT(hits75, kIds * 5 / 8);
  EXPECT_LT(hits75, kIds * 7 / 8);
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRecorder recorder(100);
  EXPECT_EQ(recorder.ring_capacity(), 128u);
  TraceRecorder tiny(1);
  EXPECT_EQ(tiny.ring_capacity(), 2u);
  TraceRecorder unbounded;
  EXPECT_EQ(unbounded.ring_capacity(), 0u);
}

TEST(TraceRingTest, OverwritesOldestAndCountsTotal) {
  TraceRecorder recorder(4);  // capacity 4
  for (uint64_t i = 1; i <= 10; ++i) {
    TraceRecorder::Event event;
    event.name = "ring.event";
    event.start_ns = i * 1000;
    recorder.Add(event);
  }
  EXPECT_EQ(recorder.total_added(), 10u);
  EXPECT_EQ(recorder.event_count(), 4u);
  // The retained window is the newest four events (7..10).
  std::set<uint64_t> starts;
  for (const TraceRecorder::Event& event : recorder.SnapshotEvents()) {
    starts.insert(event.start_ns);
  }
  EXPECT_EQ(starts, (std::set<uint64_t>{7000, 8000, 9000, 10000}));
}

TEST(TraceRingTest, ConcurrentAddNeverTearsOrDropsSlots) {
  // Hammer a small ring from several threads, snapshotting concurrently.
  // Every snapshot must parse and every retained event must be internally
  // consistent (the seqlock discards torn slots instead of surfacing them).
  TraceRecorder recorder(256);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread reader([&recorder, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const TraceRecorder::Event& event : recorder.SnapshotEvents()) {
        // A torn slot could pair one writer's start with another's
        // duration; writers encode start == duration so tearing is
        // detectable.
        ASSERT_EQ(event.start_ns, event.duration_ns);
      }
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceRecorder::Event event;
        event.name = "stress.event";
        const uint64_t stamp =
            (static_cast<uint64_t>(t) << 32) | static_cast<uint64_t>(i);
        event.start_ns = stamp;
        event.duration_ns = stamp;
        recorder.Add(event);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(recorder.total_added(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(recorder.event_count(), 256u);
  Result<JsonValue> parsed = ParseJson(recorder.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(TraceRingTest, ToJsonIsSortedByStartTime) {
  TraceRecorder recorder(8);
  const uint64_t starts[] = {5000, 1000, 3000, 2000, 4000};
  for (const uint64_t start : starts) {
    TraceRecorder::Event event;
    event.name = "sorted.event";
    event.start_ns = start;
    recorder.Add(event);
  }
  Result<JsonValue> parsed = ParseJson(recorder.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 5u);
  double previous = -1.0;
  for (const JsonValue& event : events->items()) {
    const double ts = event.Find("ts")->as_number();
    EXPECT_GE(ts, previous);
    previous = ts;
  }
  EXPECT_DOUBLE_EQ(events->items()[0].Find("ts")->as_number(), 0.0);
}

TEST(TraceContextTest, ScopedContextInstallsAndRestores) {
  EXPECT_EQ(CurrentTraceContext().trace_id, 0u);
  {
    TraceContext context;
    context.trace_id = 0x1234;
    context.sampled = true;
    ScopedTraceContext scope(context);
    EXPECT_EQ(CurrentTraceContext().trace_id, 0x1234u);
    EXPECT_TRUE(CurrentTraceContext().sampled);
    {
      TraceContext inner;
      inner.trace_id = 0x5678;
      ScopedTraceContext inner_scope(inner);
      EXPECT_EQ(CurrentTraceContext().trace_id, 0x5678u);
      EXPECT_FALSE(CurrentTraceContext().sampled);
    }
    EXPECT_EQ(CurrentTraceContext().trace_id, 0x1234u);
  }
  EXPECT_EQ(CurrentTraceContext().trace_id, 0u);
}

TEST(TraceContextTest, SpansCarryContextAndParenting) {
  TraceRecorder recorder;
  TraceRecorder* previous = GlobalTraceRecorder();
  InstallGlobalTraceRecorder(&recorder);
  {
    TraceContext context;
    context.trace_id = 0xabc;
    context.sampled = true;
    ScopedTraceContext scope(context);
    TraceSpan outer("parenting.outer");
    { TraceSpan inner("parenting.inner"); }
  }
  InstallGlobalTraceRecorder(previous);
  ASSERT_EQ(recorder.event_count(), 2u);
  const std::vector<TraceRecorder::Event> events = recorder.SnapshotEvents();
  // Spans close inner-first, so events[0] is the inner span.
  const TraceRecorder::Event& inner = events[0];
  const TraceRecorder::Event& outer = events[1];
  EXPECT_STREQ(inner.name, "parenting.inner");
  EXPECT_STREQ(outer.name, "parenting.outer");
  EXPECT_EQ(inner.trace_id, 0xabcu);
  EXPECT_EQ(outer.trace_id, 0xabcu);
  EXPECT_NE(outer.span_id, 0u);
  EXPECT_EQ(inner.parent_span_id, outer.span_id);
  EXPECT_EQ(outer.parent_span_id, 0u);  // root span of this scope
}

TEST(TraceContextTest, UnsampledContextSuppressesSpans) {
  TraceRecorder recorder;
  TraceRecorder* previous = GlobalTraceRecorder();
  InstallGlobalTraceRecorder(&recorder);
  {
    TraceContext context;
    context.trace_id = 0xdef;
    context.sampled = false;
    ScopedTraceContext scope(context);
    TraceSpan span("suppressed.span");
  }
  {
    // No context at all (trace_id 0) keeps the legacy always-record path.
    TraceSpan span("legacy.span");
  }
  InstallGlobalTraceRecorder(previous);
  ASSERT_EQ(recorder.event_count(), 1u);
  EXPECT_STREQ(recorder.SnapshotEvents()[0].name, "legacy.span");
}

TEST(TraceContextTest, ToJsonEmitsTraceArgs) {
  TraceRecorder recorder;
  TraceRecorder* previous = GlobalTraceRecorder();
  InstallGlobalTraceRecorder(&recorder);
  {
    TraceContext context;
    context.trace_id = 0xfeedface;
    context.sampled = true;
    ScopedTraceContext scope(context);
    TraceSpan span("args.span");
  }
  InstallGlobalTraceRecorder(previous);
  Result<JsonValue> parsed = ParseJson(recorder.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& event = parsed.value().Find("traceEvents")->items()[0];
  const JsonValue* traced_args = event.Find("args");
  ASSERT_NE(traced_args, nullptr);
  EXPECT_EQ(traced_args->Find("trace_id")->as_string(),
            TraceIdHex(0xfeedface));
  EXPECT_NE(traced_args->Find("span_id"), nullptr);
  EXPECT_NE(traced_args->Find("parent_span_id"), nullptr);
}

}  // namespace
}  // namespace telemetry
}  // namespace xcluster
