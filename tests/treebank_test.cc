#include "data/treebank.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "build/builder.h"
#include "eval/evaluator.h"
#include "estimate/estimator.h"
#include "query/parser.h"
#include "synopsis/reference.h"

namespace xcluster {
namespace {

TreebankOptions SmallOptions() {
  TreebankOptions options;
  options.scale = 0.1;
  return options;
}

TEST(TreebankTest, GeneratesNonEmptyDocument) {
  GeneratedDataset dataset = GenerateTreebank(SmallOptions());
  EXPECT_EQ(dataset.name, "Treebank");
  EXPECT_GT(dataset.doc.size(), 300u);
  EXPECT_EQ(dataset.doc.label_name(dataset.doc.root()), "corpus");
}

TEST(TreebankTest, DeterministicForSeed) {
  GeneratedDataset a = GenerateTreebank(SmallOptions());
  GeneratedDataset b = GenerateTreebank(SmallOptions());
  EXPECT_EQ(a.doc.size(), b.doc.size());
}

TEST(TreebankTest, DeeplyRecursiveStructure) {
  TreebankOptions options;
  options.scale = 0.3;
  GeneratedDataset dataset = GenerateTreebank(options);
  // Parse trees nest well beyond the flat IMDB/XMark depths.
  EXPECT_GT(dataset.doc.Depth(), 10u);
  // NP under NP (via PP) must occur — the recursive pattern.
  bool recursive_np = false;
  for (NodeId id = 0; id < dataset.doc.size() && !recursive_np; ++id) {
    if (dataset.doc.label_name(id) != "NP") continue;
    for (NodeId up = dataset.doc.node(id).parent; up != kNoNode;
         up = dataset.doc.node(up).parent) {
      if (dataset.doc.label_name(up) == "NP") {
        recursive_np = true;
        break;
      }
    }
  }
  EXPECT_TRUE(recursive_np);
}

TEST(TreebankTest, SentenceLengthMatchesWordCount) {
  GeneratedDataset dataset = GenerateTreebank(SmallOptions());
  const XmlDocument& doc = dataset.doc;
  for (NodeId id = 0; id < doc.size(); ++id) {
    if (doc.label_name(id) != "sentence") continue;
    int64_t length = -1;
    std::string text;
    for (NodeId child : doc.children(id)) {
      if (doc.label_name(child) == "length") length = doc.node(child).numeric;
      if (doc.label_name(child) == "text") text = doc.node(child).text;
    }
    ASSERT_GE(length, 1);
    // length counts the words collected while building the parse tree.
    int64_t words = text.empty() ? 0 : 1;
    for (char c : text) {
      if (c == ' ') ++words;
    }
    EXPECT_EQ(words, length);
  }
}

TEST(TreebankTest, ValuePathsExist) {
  GeneratedDataset dataset = GenerateTreebank(SmallOptions());
  std::set<std::string> doc_paths;
  for (NodeId id = 0; id < dataset.doc.size(); ++id) {
    if (dataset.doc.type(id) != ValueType::kNone) {
      doc_paths.insert(dataset.doc.PathOf(id));
    }
  }
  for (const std::string& path : dataset.value_paths) {
    EXPECT_TRUE(doc_paths.count(path)) << path;
  }
}

TEST(TreebankTest, ReferenceEstimatesRecursiveDescendantsExactly) {
  // The key regression this data set guards: descendant-axis estimation
  // over a deeply recursive synopsis (NP reachable from NP) must still
  // match exact counts on the reference.
  GeneratedDataset dataset = GenerateTreebank(SmallOptions());
  ReferenceOptions ref_options;
  ref_options.value_paths = dataset.value_paths;
  GraphSynopsis reference = BuildReferenceSynopsis(dataset.doc, ref_options);
  ExactEvaluator evaluator(dataset.doc, reference.term_dictionary().get());
  XClusterEstimator estimator(reference);
  const char* queries[] = {
      "//NP",
      "//NP//NP",
      "//VP/NP/NN",
      "//sentence//PP//NN",
      "//S[/NP]/VP",
  };
  for (const char* text : queries) {
    Result<TwigQuery> query = ParseTwig(text);
    ASSERT_TRUE(query.ok());
    double truth = evaluator.Selectivity(query.value());
    double estimate = estimator.Estimate(query.value());
    EXPECT_GT(truth, 0.0) << text;
    EXPECT_NEAR(estimate, truth, 1e-5 * (1.0 + truth)) << text;
  }
}

TEST(TreebankTest, MergedSynopsisHandlesCyclesGracefully) {
  // At the tag floor the synopsis has genuine cycles (NP -> PP -> NP as a
  // self-reachable cluster). Estimation must terminate and stay within a
  // sane multiple of the truth.
  GeneratedDataset dataset = GenerateTreebank(SmallOptions());
  ReferenceOptions ref_options;
  ref_options.value_paths = dataset.value_paths;
  GraphSynopsis reference = BuildReferenceSynopsis(dataset.doc, ref_options);
  BuildOptions build;
  build.structural_budget = 0;
  build.value_budget = 1 << 30;
  GraphSynopsis merged = XClusterBuild(reference, build, nullptr);

  ExactEvaluator evaluator(dataset.doc, reference.term_dictionary().get());
  XClusterEstimator estimator(merged);
  for (const char* text : {"//NP", "//NP//NN", "//S//VP"}) {
    Result<TwigQuery> query = ParseTwig(text);
    ASSERT_TRUE(query.ok());
    double truth = evaluator.Selectivity(query.value());
    double estimate = estimator.Estimate(query.value());
    ASSERT_GT(truth, 0.0);
    EXPECT_TRUE(std::isfinite(estimate)) << text;
    EXPECT_GT(estimate, truth * 0.2) << text;
    EXPECT_LT(estimate, truth * 5.0) << text;
  }
}

}  // namespace
}  // namespace xcluster
