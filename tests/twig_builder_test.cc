#include "query/builder.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace xcluster {
namespace {

TEST(TwigBuilderTest, LinearSpine) {
  TwigQuery query =
      TwigBuilder().Descendant("paper").Child("title").Build();
  EXPECT_EQ(query.ToString(), "//paper/title");
}

TEST(TwigBuilderTest, BranchesAndPredicates) {
  TwigQuery query = TwigBuilder()
                        .Descendant("paper")
                        .Branch("year")
                        .Range(2001, 9999)
                        .Up()
                        .Branch("abstract")
                        .FtContains({"synopsis", "xml"})
                        .Up()
                        .Child("title")
                        .Contains("Tree")
                        .Build();
  EXPECT_EQ(query.size(), 5u);
  EXPECT_EQ(query.PredicateCount(), 3u);
  // Equivalent to the parsed form of the running example.
  Result<TwigQuery> parsed = ParseTwig(
      "//paper[/year[range(2001,9999)]]"
      "[/abstract[ftcontains(synopsis,xml)]]/title[contains(Tree)]");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(query.ToString(), parsed.value().ToString());
}

TEST(TwigBuilderTest, WildcardStep) {
  TwigQuery query = TwigBuilder().Child("a").AnyChild().Build();
  EXPECT_EQ(query.ToString(), "/a/*");
}

TEST(TwigBuilderTest, UpAtRootIsSafe) {
  TwigBuilder builder;
  builder.Up().Up();
  EXPECT_EQ(builder.cursor(), 0u);
  TwigQuery query = builder.Child("x").Build();
  EXPECT_EQ(query.ToString(), "/x");
}

TEST(TwigBuilderTest, DeepBranchNesting) {
  TwigQuery query = TwigBuilder()
                        .Descendant("item")
                        .Branch("mailbox")
                        .Branch("mail")
                        .Child("text")
                        .FtAny({"gold", "silver"})
                        .Up()
                        .Up()
                        .Up()
                        .Child("name")
                        .Build();
  Result<TwigQuery> reparsed = ParseTwig(query.ToString());
  ASSERT_TRUE(reparsed.ok()) << query.ToString();
  EXPECT_EQ(reparsed.value().size(), query.size());
}

TEST(TwigBuilderTest, FtSimilarPredicate) {
  TwigQuery query = TwigBuilder()
                        .Descendant("plot")
                        .FtSimilar(50, {"love", "war"})
                        .Build();
  EXPECT_EQ(query.var(1).predicates[0].kind,
            ValuePredicate::Kind::kFtSimilar);
  EXPECT_EQ(query.var(1).predicates[0].RequiredMatches(), 1u);
}

}  // namespace
}  // namespace xcluster
