#include "query/twig.h"

#include <gtest/gtest.h>

namespace xcluster {
namespace {

TEST(TwigTest, RootOnlyQuery) {
  TwigQuery query;
  EXPECT_EQ(query.size(), 1u);
  EXPECT_EQ(query.PredicateCount(), 0u);
}

TEST(TwigTest, AddVarLinksParentAndChild) {
  TwigQuery query;
  TwigStep step;
  step.label = "movie";
  QueryVarId movie = query.AddVar(0, step);
  EXPECT_EQ(query.var(movie).parent, 0u);
  ASSERT_EQ(query.var(0).children.size(), 1u);
  EXPECT_EQ(query.var(0).children[0], movie);
}

TEST(TwigTest, StepToString) {
  TwigStep child;
  child.label = "a";
  EXPECT_EQ(child.ToString(), "/a");
  TwigStep desc;
  desc.axis = TwigStep::Axis::kDescendant;
  desc.label = "b";
  EXPECT_EQ(desc.ToString(), "//b");
  TwigStep wild;
  wild.wildcard = true;
  EXPECT_EQ(wild.ToString(), "/*");
}

TEST(TwigTest, QueryToStringLinear) {
  TwigQuery query;
  TwigStep s1;
  s1.axis = TwigStep::Axis::kDescendant;
  s1.label = "paper";
  QueryVarId paper = query.AddVar(0, s1);
  TwigStep s2;
  s2.label = "title";
  query.AddVar(paper, s2);
  EXPECT_EQ(query.ToString(), "//paper/title");
}

TEST(TwigTest, QueryToStringWithBranchAndPredicates) {
  TwigQuery query;
  TwigStep s1;
  s1.axis = TwigStep::Axis::kDescendant;
  s1.label = "paper";
  QueryVarId paper = query.AddVar(0, s1);
  query.AddPredicate(paper, ValuePredicate::Range(2000, 2005));
  TwigStep spine;
  spine.label = "title";
  QueryVarId title = query.AddVar(paper, spine);
  query.AddPredicate(title, ValuePredicate::Contains("Tree"));
  TwigStep branch;
  branch.label = "abstract";
  query.AddVar(paper, branch);
  EXPECT_EQ(query.ToString(),
            "//paper[range(2000,2005)][/title[contains(Tree)]]/abstract");
}

TEST(TwigTest, PredicateCount) {
  TwigQuery query;
  TwigStep step;
  step.label = "a";
  QueryVarId a = query.AddVar(0, step);
  query.AddPredicate(a, ValuePredicate::Range(1, 2));
  query.AddPredicate(a, ValuePredicate::Contains("x"));
  EXPECT_EQ(query.PredicateCount(), 2u);
}

TEST(TwigTest, ResolveTermsPopulatesIds) {
  TermDictionary dict;
  TermId xml = dict.Intern("xml");
  TermId synopsis = dict.Intern("synopsis");
  TwigQuery query;
  TwigStep step;
  step.label = "abstract";
  QueryVarId abs = query.AddVar(0, step);
  query.AddPredicate(abs, ValuePredicate::FtContains({"synopsis", "xml"}));
  query.ResolveTerms(dict);
  EXPECT_FALSE(query.has_unknown_terms());
  const TermSet& ids = query.var(abs).predicates[0].term_ids;
  ASSERT_EQ(ids.size(), 2u);
  // Resolved ids are sorted (xml was interned first, so has the lower id).
  EXPECT_EQ(ids[0], xml);
  EXPECT_EQ(ids[1], synopsis);
}

TEST(TwigTest, ResolveTermsFlagsUnknown) {
  TermDictionary dict;
  dict.Intern("xml");
  TwigQuery query;
  TwigStep step;
  step.label = "t";
  QueryVarId t = query.AddVar(0, step);
  query.AddPredicate(t, ValuePredicate::FtContains({"xml", "unseen"}));
  query.ResolveTerms(dict);
  EXPECT_TRUE(query.has_unknown_terms());
  EXPECT_EQ(query.var(t).predicates[0].term_ids.size(), 1u);
}

TEST(TwigTest, ResolveTermsIdempotent) {
  TermDictionary dict;
  dict.Intern("a");
  TwigQuery query;
  TwigStep step;
  step.label = "t";
  QueryVarId t = query.AddVar(0, step);
  query.AddPredicate(t, ValuePredicate::FtContains({"a"}));
  query.ResolveTerms(dict);
  query.ResolveTerms(dict);
  EXPECT_EQ(query.var(t).predicates[0].term_ids.size(), 1u);
}

}  // namespace
}  // namespace xcluster
