#include "summaries/value_summary.h"

#include <gtest/gtest.h>

namespace xcluster {
namespace {

ValueSummary NumericSummary() {
  return ValueSummary::FromNumeric({1, 2, 2, 3, 10}, 16);
}

ValueSummary StringSummary() {
  return ValueSummary::FromStrings({"tree", "trie", "twig"}, 4);
}

ValueSummary TextSummary() {
  return ValueSummary::FromTexts({{1, 2}, {1}, {1, 3}});
}

TEST(ValueSummaryTest, EmptyByDefault) {
  ValueSummary summary;
  EXPECT_TRUE(summary.empty());
  EXPECT_EQ(summary.SizeBytes(), 0u);
  EXPECT_FALSE(summary.CanCompress());
}

TEST(ValueSummaryTest, NumericSelectivity) {
  ValueSummary summary = NumericSummary();
  EXPECT_EQ(summary.type(), ValueType::kNumeric);
  EXPECT_NEAR(summary.Selectivity(ValuePredicate::Range(2, 3)), 0.6, 1e-9);
}

TEST(ValueSummaryTest, StringSelectivity) {
  ValueSummary summary = StringSummary();
  EXPECT_EQ(summary.type(), ValueType::kString);
  EXPECT_NEAR(summary.Selectivity(ValuePredicate::Contains("tr")), 2.0 / 3.0,
              1e-9);
}

TEST(ValueSummaryTest, TextSelectivity) {
  ValueSummary summary = TextSummary();
  ValuePredicate pred = ValuePredicate::FtContains({"ignored"});
  pred.term_ids = {1};
  EXPECT_NEAR(summary.Selectivity(pred), 1.0, 1e-9);
  pred.term_ids = {2};
  EXPECT_NEAR(summary.Selectivity(pred), 1.0 / 3.0, 1e-9);
}

TEST(ValueSummaryTest, MismatchedPredicateKindIsZero) {
  ValueSummary summary = NumericSummary();
  EXPECT_EQ(summary.Selectivity(ValuePredicate::Contains("x")), 0.0);
  ValueSummary text = TextSummary();
  EXPECT_EQ(text.Selectivity(ValuePredicate::Range(0, 10)), 0.0);
}

TEST(ValueSummaryTest, MergeRequiresMatchingOrEmpty) {
  ValueSummary a = NumericSummary();
  ValueSummary merged = ValueSummary::Merge(a, 5.0, ValueSummary(), 3.0);
  EXPECT_EQ(merged.type(), ValueType::kNumeric);
  EXPECT_NEAR(merged.histogram().total(), 5.0, 1e-9);
}

TEST(ValueSummaryTest, MergeNumericSumsHistograms) {
  ValueSummary a = ValueSummary::FromNumeric({1, 2}, 8);
  ValueSummary b = ValueSummary::FromNumeric({2, 3}, 8);
  ValueSummary merged = ValueSummary::Merge(a, 2.0, b, 2.0);
  EXPECT_NEAR(merged.histogram().total(), 4.0, 1e-9);
  EXPECT_NEAR(merged.histogram().EstimateRange(2, 2), 2.0, 1e-9);
}

TEST(ValueSummaryTest, MergeTextUsesWeights) {
  ValueSummary a = ValueSummary::FromTexts({{1}});
  ValueSummary b = ValueSummary::FromTexts({{2}, {2}, {2}});
  ValueSummary merged = ValueSummary::Merge(a, 1.0, b, 3.0);
  EXPECT_NEAR(merged.terms().Frequency(2), 0.75, 1e-9);
}

TEST(ValueSummaryTest, AtomicPredicatesForNumeric) {
  ValueSummary summary = NumericSummary();
  std::vector<AtomicPredicate> preds = summary.AtomicPredicates(16);
  ASSERT_FALSE(preds.empty());
  for (const AtomicPredicate& p : preds) {
    EXPECT_EQ(p.type, ValueType::kNumeric);
    double sel = summary.AtomicSelectivity(p);
    EXPECT_GE(sel, 0.0);
    EXPECT_LE(sel, 1.0 + 1e-12);
  }
  // Last boundary is the domain max: prefix selectivity 1.
  EXPECT_NEAR(summary.AtomicSelectivity(preds.back()), 1.0, 1e-9);
}

TEST(ValueSummaryTest, AtomicPredicatesCapRespected) {
  std::vector<int64_t> values;
  for (int64_t v = 0; v < 60; ++v) values.push_back(v);
  ValueSummary summary = ValueSummary::FromNumeric(std::move(values), 64);
  EXPECT_LE(summary.AtomicPredicates(8).size(), 8u);
}

TEST(ValueSummaryTest, AtomicPredicatesForString) {
  ValueSummary summary = StringSummary();
  std::vector<AtomicPredicate> preds = summary.AtomicPredicates(16);
  ASSERT_FALSE(preds.empty());
  for (const AtomicPredicate& p : preds) {
    EXPECT_EQ(p.type, ValueType::kString);
    EXPECT_GT(summary.AtomicSelectivity(p), 0.0);
  }
}

TEST(ValueSummaryTest, AtomicPredicatesForText) {
  ValueSummary summary = TextSummary();
  std::vector<AtomicPredicate> preds = summary.AtomicPredicates(16);
  ASSERT_EQ(preds.size(), 3u);
  for (const AtomicPredicate& p : preds) {
    EXPECT_EQ(p.type, ValueType::kText);
  }
}

TEST(ValueSummaryTest, TrivialAtomicPredicateIsOne) {
  AtomicPredicate trivial;  // type kNone
  EXPECT_EQ(NumericSummary().AtomicSelectivity(trivial), 1.0);
  EXPECT_EQ(ValueSummary().AtomicSelectivity(trivial), 1.0);
}

TEST(ValueSummaryTest, CompressDispatchesByType) {
  ValueSummary numeric = NumericSummary();
  size_t saved = numeric.Compress(1);
  EXPECT_GT(saved, 0u);

  ValueSummary text = TextSummary();
  size_t before = text.SizeBytes();
  text.Compress(1);
  EXPECT_LE(text.SizeBytes(), before);

  ValueSummary str = StringSummary();
  size_t nodes_before = str.pst().node_count();
  str.Compress(2);
  EXPECT_LT(str.pst().node_count(), nodes_before);
}

TEST(ValueSummaryTest, CompressedCopyIndependent) {
  ValueSummary summary = NumericSummary();
  ValueSummary compressed = summary.Compressed(2);
  EXPECT_GT(summary.histogram().bucket_count(),
            compressed.histogram().bucket_count());
}

TEST(ValueSummaryTest, SizeBytesMatchesUnderlying) {
  EXPECT_EQ(NumericSummary().SizeBytes(),
            NumericSummary().histogram().SizeBytes());
  EXPECT_EQ(StringSummary().SizeBytes(), StringSummary().pst().SizeBytes());
  EXPECT_EQ(TextSummary().SizeBytes(), TextSummary().terms().SizeBytes());
}

TEST(ValueSummaryTest, WaveletNumericKind) {
  ValueSummary summary = ValueSummary::FromNumeric(
      {1, 2, 2, 3, 10}, 16, NumericSummaryKind::kWavelet);
  EXPECT_EQ(summary.numeric_kind(), NumericSummaryKind::kWavelet);
  EXPECT_NEAR(summary.Selectivity(ValuePredicate::Range(2, 3)), 0.6, 0.05);
  EXPECT_GT(summary.SizeBytes(), 0u);
  // Compression and atomic predicates work through the facade.
  EXPECT_TRUE(summary.CanCompress());
  std::vector<AtomicPredicate> preds = summary.AtomicPredicates(8);
  EXPECT_FALSE(preds.empty());
  for (const AtomicPredicate& p : preds) {
    double sel = summary.AtomicSelectivity(p);
    EXPECT_GE(sel, 0.0);
    EXPECT_LE(sel, 1.0 + 1e-9);
  }
}

TEST(ValueSummaryTest, SampleNumericKind) {
  ValueSummary summary = ValueSummary::FromNumeric(
      {1, 2, 2, 3, 10}, 16, NumericSummaryKind::kSample);
  EXPECT_EQ(summary.numeric_kind(), NumericSummaryKind::kSample);
  EXPECT_NEAR(summary.Selectivity(ValuePredicate::Range(2, 3)), 0.6, 1e-9);
  EXPECT_NEAR(summary.NumericTotal(), 5.0, 1e-9);
}

TEST(ValueSummaryTest, MergePreservesNumericKind) {
  ValueSummary a = ValueSummary::FromNumeric({1, 2}, 8,
                                             NumericSummaryKind::kWavelet);
  ValueSummary b = ValueSummary::FromNumeric({3, 4}, 8,
                                             NumericSummaryKind::kWavelet);
  ValueSummary merged = ValueSummary::Merge(a, 2.0, b, 2.0);
  EXPECT_EQ(merged.numeric_kind(), NumericSummaryKind::kWavelet);
  EXPECT_NEAR(merged.NumericTotal(), 4.0, 1e-6);
}

TEST(ValueSummaryTest, PredicateToString) {
  EXPECT_EQ(ValuePredicate::Range(1, 9).ToString(), "range(1,9)");
  EXPECT_EQ(ValuePredicate::Contains("ACM").ToString(), "contains(ACM)");
  EXPECT_EQ(ValuePredicate::FtContains({"xml", "synopsis"}).ToString(),
            "ftcontains(xml,synopsis)");
}

}  // namespace
}  // namespace xcluster
