#include "summaries/wavelet.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace xcluster {
namespace {

TEST(WaveletTest, EmptyInput) {
  WaveletSummary summary = WaveletSummary::Build({}, 16);
  EXPECT_EQ(summary.total(), 0.0);
  EXPECT_EQ(summary.SizeBytes(), 0u);
  EXPECT_EQ(summary.EstimateRange(0, 10), 0.0);
}

TEST(WaveletTest, LosslessWhenAllCoefficientsKept) {
  std::vector<int64_t> values = {0, 0, 1, 2, 2, 2, 3, 7};
  WaveletSummary summary = WaveletSummary::Build(values, 0);  // keep all
  EXPECT_DOUBLE_EQ(summary.total(), 8.0);
  EXPECT_NEAR(summary.EstimateRange(0, 0), 2.0, 1e-9);
  EXPECT_NEAR(summary.EstimateRange(2, 2), 3.0, 1e-9);
  EXPECT_NEAR(summary.EstimateRange(7, 7), 1.0, 1e-9);
  EXPECT_NEAR(summary.EstimateRange(4, 6), 0.0, 1e-9);
}

TEST(WaveletTest, FullDomainEstimateIsTotal) {
  std::vector<int64_t> values;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    values.push_back(static_cast<int64_t>(rng.Uniform(1000)));
  }
  WaveletSummary summary = WaveletSummary::Build(values, 32);
  EXPECT_NEAR(summary.EstimateRange(summary.domain_lo(), summary.domain_hi()),
              500.0, 500.0 * 0.02);
}

TEST(WaveletTest, SelectivityNormalized) {
  std::vector<int64_t> values = {1, 1, 2, 3};
  WaveletSummary summary = WaveletSummary::Build(values, 0);
  EXPECT_NEAR(summary.Selectivity(1, 1), 0.5, 1e-9);
}

TEST(WaveletTest, ThresholdingKeepsLargestEffects) {
  // A distribution with one dominant spike: few coefficients should
  // suffice to place most mass correctly.
  std::vector<int64_t> values;
  for (int i = 0; i < 90; ++i) values.push_back(10);
  for (int i = 0; i < 10; ++i) values.push_back(200 + i * 3);
  WaveletSummary coarse = WaveletSummary::Build(values, 8);
  EXPECT_NEAR(coarse.EstimateRange(0, 50), 90.0, 25.0);
}

TEST(WaveletTest, CompressDropsCoefficients) {
  std::vector<int64_t> values;
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    values.push_back(static_cast<int64_t>(rng.Uniform(64)));
  }
  WaveletSummary summary = WaveletSummary::Build(values, 32);
  size_t before = summary.coefficient_count();
  size_t bytes_before = summary.SizeBytes();
  summary.Compress(8);
  EXPECT_EQ(summary.coefficient_count(), before - 8);
  EXPECT_LT(summary.SizeBytes(), bytes_before);
  // The overall average survives, so the full-domain estimate is stable.
  EXPECT_NEAR(summary.EstimateRange(summary.domain_lo(), summary.domain_hi()),
              200.0, 200.0 * 0.05);
}

TEST(WaveletTest, CompressKeepsAtLeastAverage) {
  WaveletSummary summary = WaveletSummary::Build({1, 2, 3, 4}, 0);
  summary.Compress(100);
  EXPECT_EQ(summary.coefficient_count(), 1u);
  EXPECT_FALSE(summary.CanCompress());
}

TEST(WaveletTest, MergePreservesTotal) {
  WaveletSummary a = WaveletSummary::Build({1, 2, 3}, 8);
  WaveletSummary b = WaveletSummary::Build({100, 101}, 8);
  WaveletSummary merged = WaveletSummary::Merge(a, b);
  EXPECT_NEAR(merged.total(), 5.0, 1e-6);
  EXPECT_NEAR(merged.EstimateRange(merged.domain_lo(), merged.domain_hi()),
              5.0, 0.1);
  // Mass sits in the right halves of the merged domain.
  EXPECT_NEAR(merged.EstimateRange(0, 50), 3.0, 0.5);
  EXPECT_NEAR(merged.EstimateRange(90, 110), 2.0, 0.5);
}

TEST(WaveletTest, MergeWithEmptyIsIdentity) {
  WaveletSummary a = WaveletSummary::Build({5, 6}, 8);
  WaveletSummary merged = WaveletSummary::Merge(a, WaveletSummary());
  EXPECT_DOUBLE_EQ(merged.total(), 2.0);
}

TEST(WaveletTest, SingleValueDomain) {
  WaveletSummary summary = WaveletSummary::Build({42, 42, 42}, 4);
  EXPECT_NEAR(summary.EstimateRange(42, 42), 3.0, 1e-9);
  EXPECT_EQ(summary.EstimateRange(43, 100), 0.0);
}

TEST(WaveletTest, NegativeDomain) {
  WaveletSummary summary = WaveletSummary::Build({-10, -5, 0}, 0);
  EXPECT_NEAR(summary.EstimateRange(-10, -5), 2.0, 1e-9);
}

TEST(WaveletTest, FromCoefficientsRoundTrip) {
  WaveletSummary summary = WaveletSummary::Build({1, 2, 2, 9, 9, 9}, 16);
  WaveletSummary rebuilt = WaveletSummary::FromCoefficients(
      std::vector<WaveletSummary::Coefficient>(summary.coefficients().begin(),
                                               summary.coefficients().end()),
      summary.domain_lo(), summary.cell_width(), summary.grid(),
      summary.total());
  EXPECT_NEAR(rebuilt.EstimateRange(2, 2), summary.EstimateRange(2, 2),
              1e-9);
  EXPECT_NEAR(rebuilt.EstimateRange(9, 9), summary.EstimateRange(9, 9),
              1e-9);
}

/// Property: for random data, a generously-budgeted wavelet estimates
/// prefix ranges within a modest relative error of the truth.
class WaveletPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WaveletPropertyTest, PrefixRangeAccuracy) {
  Rng rng(GetParam());
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<int64_t>(rng.Uniform(300)));
  }
  WaveletSummary summary = WaveletSummary::Build(values, 64);
  for (int64_t h = 20; h < 300; h += 40) {
    double truth = 0.0;
    for (int64_t v : values) {
      if (v <= h) truth += 1.0;
    }
    EXPECT_NEAR(summary.EstimateRange(summary.domain_lo(), h), truth,
                std::max(20.0, truth * 0.15))
        << "prefix " << h;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaveletPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace xcluster
