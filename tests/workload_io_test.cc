#include "workload/io.h"

#include <gtest/gtest.h>

#include <fstream>

#include "data/xmark.h"
#include "estimate/estimator.h"
#include "synopsis/reference.h"
#include "workload/metrics.h"

namespace xcluster {
namespace {

class WorkloadIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkOptions options;
    options.scale = 0.05;
    dataset_ = GenerateXMark(options);
    ReferenceOptions ref_options;
    ref_options.value_paths = dataset_.value_paths;
    reference_ = BuildReferenceSynopsis(dataset_.doc, ref_options);
    WorkloadOptions wl_options;
    wl_options.num_queries = 80;
    workload_ = GenerateWorkload(dataset_.doc, reference_, wl_options);
    path_ = testing::TempDir() + "/workload_io_test.tsv";
  }

  GeneratedDataset dataset_;
  GraphSynopsis reference_;
  Workload workload_;
  std::string path_;
};

TEST_F(WorkloadIoTest, RoundTripPreservesQueries) {
  ASSERT_TRUE(SaveWorkload(workload_, path_).ok());
  Result<Workload> loaded = LoadWorkload(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().queries.size(), workload_.queries.size());
  for (size_t i = 0; i < workload_.queries.size(); ++i) {
    const WorkloadQuery& original = workload_.queries[i];
    const WorkloadQuery& restored = loaded.value().queries[i];
    EXPECT_EQ(restored.pred_class, original.pred_class) << i;
    EXPECT_DOUBLE_EQ(restored.true_selectivity, original.true_selectivity);
    EXPECT_EQ(restored.query.ToString(), original.query.ToString()) << i;
  }
}

TEST_F(WorkloadIoTest, LoadedWorkloadEstimatesIdentically) {
  ASSERT_TRUE(SaveWorkload(workload_, path_).ok());
  Result<Workload> loaded = LoadWorkload(path_);
  ASSERT_TRUE(loaded.ok());
  XClusterEstimator estimator(reference_);
  for (size_t i = 0; i < workload_.queries.size(); ++i) {
    double a = estimator.Estimate(workload_.queries[i].query);
    double b = estimator.Estimate(loaded.value().queries[i].query);
    EXPECT_NEAR(a, b, 1e-9 * (1.0 + a))
        << workload_.queries[i].query.ToString();
  }
}

TEST_F(WorkloadIoTest, LoadMissingFileFails) {
  Result<Workload> loaded = LoadWorkload("/nonexistent/workload.tsv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kIOError);
}

TEST_F(WorkloadIoTest, LoadGarbageFails) {
  std::ofstream out(path_);
  out << "not a workload line\n";
  out.close();
  Result<Workload> loaded = LoadWorkload(path_);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(WorkloadIoTest, LoadBadQueryFails) {
  std::ofstream out(path_);
  out << "Struct\t10\t//a[[\n";
  out.close();
  Result<Workload> loaded = LoadWorkload(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST_F(WorkloadIoTest, EmptyWorkloadRoundTrips) {
  ASSERT_TRUE(SaveWorkload(Workload{}, path_).ok());
  Result<Workload> loaded = LoadWorkload(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().queries.empty());
}

}  // namespace
}  // namespace xcluster
