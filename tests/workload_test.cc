#include "workload/generator.h"

#include <gtest/gtest.h>

#include <map>

#include "data/imdb.h"
#include "eval/evaluator.h"
#include "query/parser.h"
#include "synopsis/reference.h"

namespace xcluster {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ImdbOptions options;
    options.scale = 0.05;
    dataset_ = GenerateImdb(options);
    ReferenceOptions ref_options;
    ref_options.value_paths = dataset_.value_paths;
    reference_ = BuildReferenceSynopsis(dataset_.doc, ref_options);
  }

  Workload Generate(size_t n, bool positive = true) {
    WorkloadOptions options;
    options.num_queries = n;
    options.positive = positive;
    return GenerateWorkload(dataset_.doc, reference_, options);
  }

  GeneratedDataset dataset_;
  GraphSynopsis reference_;
};

TEST_F(WorkloadTest, GeneratesRequestedCount) {
  Workload workload = Generate(100);
  EXPECT_EQ(workload.queries.size(), 100u);
}

TEST_F(WorkloadTest, PositiveQueriesHaveNonZeroSelectivity) {
  Workload workload = Generate(150);
  for (const WorkloadQuery& q : workload.queries) {
    EXPECT_GT(q.true_selectivity, 0.0) << q.query.ToString();
  }
}

TEST_F(WorkloadTest, TrueSelectivitiesMatchEvaluator) {
  Workload workload = Generate(50);
  ExactEvaluator evaluator(dataset_.doc, reference_.term_dictionary().get());
  for (const WorkloadQuery& q : workload.queries) {
    TwigQuery query = q.query;
    query.ResolveTerms(*reference_.term_dictionary());
    EXPECT_DOUBLE_EQ(evaluator.Selectivity(query), q.true_selectivity);
  }
}

TEST_F(WorkloadTest, CoversAllQueryClasses) {
  Workload workload = Generate(300);
  std::map<ValueType, size_t> by_class;
  for (const WorkloadQuery& q : workload.queries) {
    ++by_class[q.pred_class];
  }
  EXPECT_GT(by_class[ValueType::kNone], 30u);
  EXPECT_GT(by_class[ValueType::kNumeric], 20u);
  EXPECT_GT(by_class[ValueType::kString], 20u);
  EXPECT_GT(by_class[ValueType::kText], 20u);
}

TEST_F(WorkloadTest, PredClassMatchesPredicates) {
  Workload workload = Generate(120);
  for (const WorkloadQuery& q : workload.queries) {
    size_t preds = q.query.PredicateCount();
    if (q.pred_class == ValueType::kNone) {
      EXPECT_EQ(preds, 0u);
    } else {
      EXPECT_GE(preds, 1u);
    }
  }
}

TEST_F(WorkloadTest, DeterministicForSeed) {
  Workload a = Generate(40);
  Workload b = Generate(40);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].query.ToString(), b.queries[i].query.ToString());
    EXPECT_EQ(a.queries[i].true_selectivity, b.queries[i].true_selectivity);
  }
}

TEST_F(WorkloadTest, SeedChangesWorkload) {
  WorkloadOptions options;
  options.num_queries = 40;
  options.seed = 12345;
  Workload a = GenerateWorkload(dataset_.doc, reference_, options);
  Workload b = Generate(40);
  bool differs = false;
  for (size_t i = 0; i < a.queries.size(); ++i) {
    if (a.queries[i].query.ToString() != b.queries[i].query.ToString()) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST_F(WorkloadTest, NegativeWorkloadHasZeroSelectivity) {
  Workload workload = Generate(60, /*positive=*/false);
  EXPECT_GT(workload.queries.size(), 20u);  // best effort generation
  for (const WorkloadQuery& q : workload.queries) {
    EXPECT_EQ(q.true_selectivity, 0.0) << q.query.ToString();
  }
}

TEST_F(WorkloadTest, StructFractionRespected) {
  WorkloadOptions options;
  options.num_queries = 300;
  options.struct_fraction = 1.0;
  Workload workload = GenerateWorkload(dataset_.doc, reference_, options);
  for (const WorkloadQuery& q : workload.queries) {
    EXPECT_EQ(q.pred_class, ValueType::kNone);
  }
}

TEST_F(WorkloadTest, DescendantStepsAppear) {
  WorkloadOptions options;
  options.num_queries = 100;
  options.descendant_prob = 0.9;
  Workload workload = GenerateWorkload(dataset_.doc, reference_, options);
  size_t with_descendant = 0;
  for (const WorkloadQuery& q : workload.queries) {
    if (q.query.ToString().find("//") != std::string::npos) ++with_descendant;
  }
  EXPECT_GT(with_descendant, 30u);
}

TEST_F(WorkloadTest, BranchesAppear) {
  WorkloadOptions options;
  options.num_queries = 100;
  options.branch_prob = 1.0;
  Workload workload = GenerateWorkload(dataset_.doc, reference_, options);
  size_t with_branch = 0;
  for (const WorkloadQuery& q : workload.queries) {
    if (q.query.ToString().find('[') != std::string::npos) ++with_branch;
  }
  EXPECT_GT(with_branch, 50u);
}

TEST_F(WorkloadTest, StructuralQueriesParseBackFromToString) {
  WorkloadOptions options;
  options.num_queries = 60;
  options.struct_fraction = 1.0;  // predicates may contain arbitrary bytes
  Workload workload = GenerateWorkload(dataset_.doc, reference_, options);
  for (const WorkloadQuery& q : workload.queries) {
    std::string text = q.query.ToString();
    EXPECT_TRUE(ParseTwig(text).ok()) << text;
  }
}

}  // namespace
}  // namespace xcluster
