#include "xml/writer.h"

#include <gtest/gtest.h>

#include "data/imdb.h"
#include "xml/parser.h"

namespace xcluster {
namespace {

TEST(WriterTest, EmptyDocument) {
  XmlDocument doc;
  XmlWriter writer;
  EXPECT_EQ(writer.ToString(doc), "");
}

TEST(WriterTest, SelfClosingElement) {
  XmlDocument doc;
  doc.CreateRoot("root");
  XmlWriter writer;
  EXPECT_EQ(writer.ToString(doc), "<root/>");
}

TEST(WriterTest, ValuesRendered) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  doc.SetNumeric(doc.AddChild(root, "year"), 2000);
  doc.SetString(doc.AddChild(root, "title"), "Tree Counting");
  XmlWriter writer;
  EXPECT_EQ(writer.ToString(doc),
            "<r><year>2000</year><title>Tree Counting</title></r>");
}

TEST(WriterTest, AttributeChildrenRenderAsAttributes) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("item");
  doc.SetString(doc.AddChild(root, "@id"), "i3");
  doc.SetString(doc.AddChild(root, "name"), "ring");
  XmlWriter writer;
  EXPECT_EQ(writer.ToString(doc),
            "<item id=\"i3\"><name>ring</name></item>");
}

TEST(WriterTest, EscapesSpecialCharacters) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  doc.SetString(doc.AddChild(root, "t"), "a<b & \"c\">d");
  XmlWriter writer;
  EXPECT_EQ(writer.ToString(doc),
            "<r><t>a&lt;b &amp; &quot;c&quot;&gt;d</t></r>");
}

TEST(WriterTest, XmlEscapeFunction) {
  EXPECT_EQ(XmlEscape("plain"), "plain");
  EXPECT_EQ(XmlEscape("<&>\""), "&lt;&amp;&gt;&quot;");
}

TEST(WriterTest, SerializedSizeMatchesToString) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  doc.SetString(doc.AddChild(root, "a"), "xyz");
  XmlWriter writer;
  EXPECT_EQ(writer.SerializedSize(doc), writer.ToString(doc).size());
}

TEST(WriterTest, IndentedOutputHasNewlines) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  doc.AddChild(root, "a");
  XmlWriter::Options options;
  options.indent = true;
  XmlWriter writer(options);
  std::string out = writer.ToString(doc);
  EXPECT_NE(out.find('\n'), std::string::npos);
}

TEST(WriterTest, WriteFileRoundTrip) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  doc.SetNumeric(doc.AddChild(root, "n"), 5);
  XmlWriter writer;
  std::string path = testing::TempDir() + "/writer_test.xml";
  ASSERT_TRUE(writer.WriteFile(doc, path).ok());
  XmlParser parser;
  XmlDocument parsed;
  ASSERT_TRUE(parser.ParseFile(path, &parsed).ok());
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.node(parsed.children(parsed.root())[0]).numeric, 5);
}

/// Property: write(parse(write(doc))) is stable for generated data.
TEST(WriterTest, GeneratedDatasetRoundTripPreservesShape) {
  ImdbOptions options;
  options.scale = 0.02;
  GeneratedDataset dataset = GenerateImdb(options);
  XmlWriter writer;
  std::string once = writer.ToString(dataset.doc);

  XmlParser parser;
  XmlDocument reparsed;
  ASSERT_TRUE(parser.Parse(once, &reparsed).ok());
  EXPECT_EQ(reparsed.size(), dataset.doc.size());
  EXPECT_EQ(reparsed.CountValued(), dataset.doc.CountValued());
  EXPECT_EQ(writer.ToString(reparsed), once);
}

}  // namespace
}  // namespace xcluster
