// XCSF round-trip and fault-injection tests. The two hard contracts:
//
//  * bit-identity — an image mapped back through XcsfMmapView must return
//    the *same double* (EXPECT_EQ, not EXPECT_NEAR) as the compiled-in-RAM
//    FlatSynopsis it was written from, for every query;
//  * no SIGBUS — a truncated, bit-flipped, or otherwise mangled image must
//    fail with a clean Status from Open/Adopt, for corruption in *every*
//    section and truncation at *every* section boundary.
#include "storage/xcsf_mmap_view.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/xcluster.h"
#include "data/imdb.h"
#include "estimate/compiled_twig.h"
#include "estimate/flat_estimator.h"
#include "estimate/flat_synopsis.h"
#include "query/parser.h"
#include "storage/xcsf_format.h"
#include "storage/xcsf_writer.h"
#include "synopsis/graph.h"

namespace xcluster {
namespace storage {
namespace {

const char* kQueries[] = {
    "/movie/title",
    "//movie",
    "//year[range(1950,1980)]",
    "//movie[/cast]/rating[range(50,80)]",
    "//plot[ftcontains(the)]",
    "//title[contains(The)]",
    "//actor/name",
    "//movie[/year[range(1990,2000)]]//name",
};

TwigQuery MustParse(std::string_view input) {
  Result<TwigQuery> result = ParseTwig(input);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

double EstimateOn(const FlatSynopsis& flat, const char* query) {
  FlatEstimator estimator(flat);
  const CompiledTwig plan = CompiledTwig::Compile(MustParse(query), flat);
  return estimator.Estimate(plan);
}

void WriteRaw(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Built once: an IMDB synopsis exercising numeric, string, and text
/// summaries plus a populated term dictionary, its compiled FlatSynopsis,
/// and the encoded XCSF image.
class XcsfTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ImdbOptions options;
    options.scale = 0.05;
    GeneratedDataset dataset = GenerateImdb(options);
    XCluster::Options xc_options;
    xc_options.reference.value_paths = dataset.value_paths;
    xc_options.build.structural_budget = 4096;
    xc_options.build.value_budget = 24576;
    built_ = new XCluster(XCluster::Build(dataset.doc, xc_options));
    flat_ = new FlatSynopsis(built_->synopsis());
    image_ = new std::string;
    ASSERT_TRUE(XcsfWriter::Encode(*flat_, image_).ok());
  }

  static void TearDownTestSuite() {
    delete image_;
    delete flat_;
    delete built_;
    image_ = nullptr;
    flat_ = nullptr;
    built_ = nullptr;
  }

  std::string TempPath(const std::string& name) const {
    return testing::TempDir() + "/" + name;
  }

  static XCluster* built_;
  static FlatSynopsis* flat_;
  static std::string* image_;
};

XCluster* XcsfTest::built_ = nullptr;
FlatSynopsis* XcsfTest::flat_ = nullptr;
std::string* XcsfTest::image_ = nullptr;

TEST_F(XcsfTest, EncodeIsDeterministic) {
  std::string again;
  ASSERT_TRUE(XcsfWriter::Encode(*flat_, &again).ok());
  EXPECT_EQ(again, *image_);
}

TEST_F(XcsfTest, OpenRejectsMissingAndEmptyFiles) {
  EXPECT_EQ(XcsfMmapView::Open("/nonexistent/synopsis.xcsf").status().code(),
            Status::Code::kIOError);
  const std::string path = TempPath("empty.xcsf");
  WriteRaw(path, "");
  EXPECT_EQ(XcsfMmapView::Open(path).status().code(),
            Status::Code::kCorruption);
}

TEST_F(XcsfTest, MappedViewMatchesCompiledSlotForSlot) {
  const std::string path = TempPath("identity.xcsf");
  ASSERT_TRUE(XcsfWriter::Write(*flat_, path, /*sync=*/false).ok());
  Result<XcsfMmapView> view = XcsfMmapView::Open(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const FlatSynopsis& mapped = view.value().flat();
  EXPECT_TRUE(mapped.mapped());
  EXPECT_TRUE(view.value().file_backed());

  ASSERT_EQ(mapped.num_nodes(), flat_->num_nodes());
  ASSERT_EQ(mapped.num_edges(), flat_->num_edges());
  EXPECT_EQ(mapped.root(), flat_->root());
  for (FlatNodeId n = 0; n < flat_->num_nodes(); ++n) {
    EXPECT_EQ(mapped.label(n), flat_->label(n));
    EXPECT_EQ(mapped.type(n), flat_->type(n));
    EXPECT_EQ(mapped.count(n), flat_->count(n));
    EXPECT_EQ(mapped.syn_of(n), flat_->syn_of(n));
    EXPECT_EQ(mapped.edges_begin(n), flat_->edges_begin(n));
    EXPECT_EQ(mapped.edges_end(n), flat_->edges_end(n));
    EXPECT_EQ(mapped.vsumm(n) == nullptr, flat_->vsumm(n) == nullptr);
  }
  for (size_t e = 0; e < flat_->num_edges(); ++e) {
    EXPECT_EQ(mapped.edge_target(e), flat_->edge_target(e));
    EXPECT_EQ(mapped.edge_count(e), flat_->edge_count(e));
    EXPECT_EQ(mapped.sorted_edge_target(e), flat_->sorted_edge_target(e));
    EXPECT_EQ(mapped.sorted_edge_count(e), flat_->sorted_edge_count(e));
  }
}

TEST_F(XcsfTest, MappedEstimatesAreBitIdentical) {
  const std::string path = TempPath("estimates.xcsf");
  ASSERT_TRUE(XcsfWriter::Write(*flat_, path, /*sync=*/false).ok());
  Result<XcsfMmapView> view = XcsfMmapView::Open(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  for (const char* query : kQueries) {
    EXPECT_EQ(EstimateOn(view.value().flat(), query),
              EstimateOn(*flat_, query))
        << query;
  }
}

TEST_F(XcsfTest, AdoptedBufferIsBitIdenticalToo) {
  Result<XcsfMmapView> view = XcsfMmapView::Adopt(std::string(*image_));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE(view.value().file_backed());
  EXPECT_TRUE(view.value().flat().mapped());
  for (const char* query : kQueries) {
    EXPECT_EQ(EstimateOn(view.value().flat(), query),
              EstimateOn(*flat_, query))
        << query;
  }
}

TEST_F(XcsfTest, TwoViewsOfOneFileServeIndependently) {
  const std::string path = TempPath("shared.xcsf");
  ASSERT_TRUE(XcsfWriter::Write(*flat_, path, /*sync=*/false).ok());
  Result<XcsfMmapView> a = XcsfMmapView::Open(path);
  Result<XcsfMmapView> b = XcsfMmapView::Open(path);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(EstimateOn(a.value().flat(), kQueries[0]),
            EstimateOn(b.value().flat(), kQueries[0]));
}

TEST_F(XcsfTest, SynopsisWithoutTermsOmitsTermPool) {
  GraphSynopsis synopsis;
  SynNodeId r = synopsis.AddNode("R", ValueType::kNone, 1.0);
  SynNodeId a = synopsis.AddNode("A", ValueType::kNumeric, 10.0);
  synopsis.AddEdge(r, a, 10.0);
  std::vector<int64_t> values = {0, 1, 2, 3};
  synopsis.node(a).vsumm = ValueSummary::FromNumeric(std::move(values), 8);
  FlatSynopsis small(synopsis);
  std::string image;
  ASSERT_TRUE(XcsfWriter::Encode(small, &image).ok());
  Result<XcsfMmapView> view = XcsfMmapView::Adopt(std::move(image));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view.value().header().flags & kXcsfFlagHasTerms, 0u);
  for (const XcsfSection& section : view.value().sections()) {
    EXPECT_NE(section.id, static_cast<uint32_t>(kXcsfTermPool));
  }
  EXPECT_EQ(view.value().flat().num_nodes(), 2u);
  EXPECT_NE(view.value().flat().vsumm(1), nullptr);
}

TEST_F(XcsfTest, WriteGraphCompilesAndPersists) {
  GraphSynopsis synopsis;
  SynNodeId r = synopsis.AddNode("R", ValueType::kNone, 1.0);
  synopsis.AddNode("A", ValueType::kNone, 5.0);
  synopsis.AddEdge(r, 1, 5.0);
  const std::string path = TempPath("graph.xcsf");
  ASSERT_TRUE(XcsfWriter::WriteGraph(synopsis, path, /*sync=*/false).ok());
  EXPECT_TRUE(SniffXcsfFile(path));
  Result<XcsfMmapView> view = XcsfMmapView::Open(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view.value().flat().num_nodes(), 2u);
}

// --- fault injection -----------------------------------------------------

TEST_F(XcsfTest, BitFlipInEverySectionIsRejected) {
  XcsfHeader header;
  ASSERT_TRUE(ParseXcsfHeader(*image_, image_->size(), &header).ok());
  std::vector<XcsfSection> table;
  ASSERT_TRUE(ParseXcsfTable(*image_, image_->size(), header, &table).ok());
  ASSERT_FALSE(table.empty());
  for (const XcsfSection& section : table) {
    if (section.length == 0) continue;
    std::string corrupt = *image_;
    corrupt[section.offset + section.length / 2] ^= 0x40;
    Result<XcsfMmapView> view = XcsfMmapView::Adopt(std::move(corrupt));
    EXPECT_FALSE(view.ok()) << XcsfSectionName(section.id);
    EXPECT_EQ(view.status().code(), Status::Code::kCorruption)
        << XcsfSectionName(section.id);
  }
}

TEST_F(XcsfTest, BitFlipInHeaderTableAndTrailerIsRejected) {
  const size_t spots[] = {
      0,                                 // magic
      8,                                 // flags
      40,                                // edge count
      kXcsfHeaderBytes + 16,             // first table entry's length
      image_->size() - kXcsfTrailerBytes // whole-file CRC
  };
  for (const size_t spot : spots) {
    std::string corrupt = *image_;
    corrupt[spot] ^= 0x01;
    Result<XcsfMmapView> view = XcsfMmapView::Adopt(std::move(corrupt));
    EXPECT_FALSE(view.ok()) << "flip at " << spot;
  }
}

TEST_F(XcsfTest, TruncationAtEverySectionBoundaryIsRejected) {
  XcsfHeader header;
  ASSERT_TRUE(ParseXcsfHeader(*image_, image_->size(), &header).ok());
  std::vector<XcsfSection> table;
  ASSERT_TRUE(ParseXcsfTable(*image_, image_->size(), header, &table).ok());
  std::vector<size_t> cuts = {0, 1, kXcsfHeaderBytes - 1, kXcsfHeaderBytes,
                              image_->size() - 1};
  for (const XcsfSection& section : table) {
    cuts.push_back(static_cast<size_t>(section.offset));
    cuts.push_back(static_cast<size_t>(section.offset + section.length));
  }
  const std::string path = TempPath("truncated.xcsf");
  for (const size_t cut : cuts) {
    ASSERT_LT(cut, image_->size());
    // Both ingestion paths must reject the truncation cleanly.
    Result<XcsfMmapView> adopted =
        XcsfMmapView::Adopt(image_->substr(0, cut));
    EXPECT_FALSE(adopted.ok()) << "adopt cut at " << cut;
    WriteRaw(path, std::string_view(*image_).substr(0, cut));
    Result<XcsfMmapView> opened = XcsfMmapView::Open(path);
    EXPECT_FALSE(opened.ok()) << "open cut at " << cut;
  }
}

TEST_F(XcsfTest, OversizedFileIsRejected) {
  std::string padded = *image_ + std::string(16, '\0');
  Result<XcsfMmapView> view = XcsfMmapView::Adopt(std::move(padded));
  EXPECT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), Status::Code::kCorruption);
}

TEST_F(XcsfTest, ForeignFormatIsRejectedBySniff) {
  EXPECT_FALSE(LooksLikeXcsf("XCSB4567"));
  EXPECT_TRUE(LooksLikeXcsf(*image_));
  Result<XcsfMmapView> view = XcsfMmapView::Adopt("XCSB not this format");
  EXPECT_FALSE(view.ok());
}

// --- verify / inspect ----------------------------------------------------

TEST_F(XcsfTest, VerifyReportsEverySection) {
  std::string report;
  ASSERT_TRUE(VerifyXcsfBytes(*image_, &report).ok()) << report;
  EXPECT_NE(report.find("node-labels"), std::string::npos);
  EXPECT_NE(report.find("summary-pool"), std::string::npos);
  EXPECT_NE(report.find("xcsf image ok"), std::string::npos);
}

TEST_F(XcsfTest, InspectMarksOnlyTheCorruptSection) {
  std::vector<SynopsisSectionInfo> sections;
  ASSERT_TRUE(InspectXcsfSections(*image_, &sections).ok());
  ASSERT_GT(sections.size(), 2u);
  for (const SynopsisSectionInfo& info : sections) {
    EXPECT_TRUE(info.crc_ok) << info.name;
  }
  // Corrupt one payload byte: that section and the whole-file pseudo-entry
  // go bad, everything else stays ok — inspect keeps walking.
  std::string corrupt = *image_;
  const SynopsisSectionInfo& victim = sections[1];
  corrupt[victim.offset] ^= 0x10;
  std::vector<SynopsisSectionInfo> after;
  ASSERT_TRUE(InspectXcsfSections(corrupt, &after).ok());
  ASSERT_EQ(after.size(), sections.size());
  for (const SynopsisSectionInfo& info : after) {
    if (info.name == victim.name || info.name == "file-crc") {
      EXPECT_FALSE(info.crc_ok) << info.name;
    } else {
      EXPECT_TRUE(info.crc_ok) << info.name;
    }
  }
}

TEST_F(XcsfTest, PayloadDispatchHandlesBothFormats) {
  // XCSF image through the dispatching entry points.
  EXPECT_TRUE(VerifySynopsisPayload(*image_, nullptr).ok());
  std::vector<SynopsisSectionInfo> sections;
  ASSERT_TRUE(InspectSynopsisPayload(*image_, &sections).ok());
  EXPECT_EQ(sections.front().name, "node-labels");
  // Legacy XCSB bytes route to the serialize verifier.
  const std::string path = TempPath("dispatch.xcs");
  ASSERT_TRUE(built_->Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string xcsb((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_TRUE(VerifySynopsisPayload(xcsb, nullptr).ok());
  ASSERT_TRUE(InspectSynopsisPayload(xcsb, &sections).ok());
  EXPECT_FALSE(sections.empty());
}

}  // namespace
}  // namespace storage
}  // namespace xcluster
