#include "data/xmark.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "synopsis/reference.h"

namespace xcluster {
namespace {

XMarkOptions SmallOptions() {
  XMarkOptions options;
  options.scale = 0.05;
  return options;
}

TEST(XMarkTest, GeneratesNonEmptyDocument) {
  GeneratedDataset dataset = GenerateXMark(SmallOptions());
  EXPECT_EQ(dataset.name, "XMark");
  EXPECT_GT(dataset.doc.size(), 500u);
  EXPECT_GT(dataset.doc.CountValued(), 100u);
}

TEST(XMarkTest, DeterministicForSeed) {
  GeneratedDataset a = GenerateXMark(SmallOptions());
  GeneratedDataset b = GenerateXMark(SmallOptions());
  EXPECT_EQ(a.doc.size(), b.doc.size());
  EXPECT_EQ(a.doc.CountValued(), b.doc.CountValued());
}

TEST(XMarkTest, DifferentSeedsDiffer) {
  XMarkOptions other = SmallOptions();
  other.seed = 999;
  GeneratedDataset a = GenerateXMark(SmallOptions());
  GeneratedDataset b = GenerateXMark(other);
  // Same structure counts are possible but full value equality is not.
  bool differs = a.doc.size() != b.doc.size();
  if (!differs) {
    for (NodeId id = 0; id < a.doc.size(); ++id) {
      if (a.doc.node(id).text != b.doc.node(id).text ||
          a.doc.node(id).numeric != b.doc.node(id).numeric) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(XMarkTest, ScaleGrowsDocument) {
  XMarkOptions big = SmallOptions();
  big.scale = 0.15;
  EXPECT_GT(GenerateXMark(big).doc.size(),
            GenerateXMark(SmallOptions()).doc.size() * 2);
}

TEST(XMarkTest, SchemaRootAndSections) {
  GeneratedDataset dataset = GenerateXMark(SmallOptions());
  const XmlDocument& doc = dataset.doc;
  EXPECT_EQ(doc.label_name(doc.root()), "site");
  std::set<std::string> sections;
  for (NodeId child : doc.children(doc.root())) {
    sections.insert(doc.label_name(child));
  }
  EXPECT_TRUE(sections.count("regions"));
  EXPECT_TRUE(sections.count("categories"));
  EXPECT_TRUE(sections.count("catgraph"));
  EXPECT_TRUE(sections.count("people"));
  EXPECT_TRUE(sections.count("open_auctions"));
  EXPECT_TRUE(sections.count("closed_auctions"));
}

TEST(XMarkTest, AllSixRegionsPresent) {
  GeneratedDataset dataset = GenerateXMark(SmallOptions());
  const XmlDocument& doc = dataset.doc;
  std::set<std::string> regions;
  for (NodeId child : doc.children(doc.root())) {
    if (doc.label_name(child) != "regions") continue;
    for (NodeId region : doc.children(child)) {
      regions.insert(doc.label_name(region));
    }
  }
  EXPECT_EQ(regions.size(), 6u);
  EXPECT_TRUE(regions.count("europe"));
}

TEST(XMarkTest, ValuePathsExistInDocument) {
  GeneratedDataset dataset = GenerateXMark(SmallOptions());
  EXPECT_EQ(dataset.value_paths.size(), 9u);
  std::set<std::string> doc_paths;
  for (NodeId id = 0; id < dataset.doc.size(); ++id) {
    if (dataset.doc.type(id) != ValueType::kNone) {
      doc_paths.insert(dataset.doc.PathOf(id));
    }
  }
  for (const std::string& path : dataset.value_paths) {
    EXPECT_TRUE(doc_paths.count(path)) << path;
  }
}

TEST(XMarkTest, AllThreeValueTypesPresent) {
  GeneratedDataset dataset = GenerateXMark(SmallOptions());
  std::map<ValueType, size_t> counts;
  for (NodeId id = 0; id < dataset.doc.size(); ++id) {
    ++counts[dataset.doc.type(id)];
  }
  EXPECT_GT(counts[ValueType::kNumeric], 50u);
  EXPECT_GT(counts[ValueType::kString], 50u);
  EXPECT_GT(counts[ValueType::kText], 50u);
}

TEST(XMarkTest, RecursiveParlistsOccur) {
  XMarkOptions options;
  options.scale = 0.3;
  GeneratedDataset dataset = GenerateXMark(options);
  const XmlDocument& doc = dataset.doc;
  bool nested = false;
  for (NodeId id = 0; id < doc.size() && !nested; ++id) {
    if (doc.label_name(id) != "parlist") continue;
    // parlist -> listitem -> parlist?
    for (NodeId li : doc.children(id)) {
      for (NodeId inner : doc.children(li)) {
        if (doc.label_name(inner) == "parlist") nested = true;
      }
    }
  }
  EXPECT_TRUE(nested);
}

TEST(XMarkTest, PopularityCorrelation) {
  // Auctions with many bidders must have systematically lower initial
  // prices than auctions with none — the planted structure-value
  // correlation.
  XMarkOptions options;
  options.scale = 0.3;
  GeneratedDataset dataset = GenerateXMark(options);
  const XmlDocument& doc = dataset.doc;
  double sum_no_bidders = 0.0;
  double n_no = 0.0;
  double sum_many = 0.0;
  double n_many = 0.0;
  for (NodeId id = 0; id < doc.size(); ++id) {
    if (doc.label_name(id) != "open_auction") continue;
    int bidders = 0;
    int64_t initial = -1;
    for (NodeId child : doc.children(id)) {
      if (doc.label_name(child) == "bidder") ++bidders;
      if (doc.label_name(child) == "initial") initial = doc.node(child).numeric;
    }
    ASSERT_GE(initial, 0);
    if (bidders == 0) {
      sum_no_bidders += static_cast<double>(initial);
      n_no += 1.0;
    } else if (bidders >= 3) {
      sum_many += static_cast<double>(initial);
      n_many += 1.0;
    }
  }
  ASSERT_GT(n_no, 0.0);
  ASSERT_GT(n_many, 0.0);
  EXPECT_GT(sum_no_bidders / n_no, 2.0 * (sum_many / n_many));
}

TEST(XMarkTest, ReferenceSynopsisHasNineValueClusters) {
  GeneratedDataset dataset = GenerateXMark(SmallOptions());
  ReferenceOptions options;
  options.value_paths = dataset.value_paths;
  GraphSynopsis synopsis = BuildReferenceSynopsis(dataset.doc, options);
  EXPECT_EQ(synopsis.ValueNodeCount(), 9u);
}

}  // namespace
}  // namespace xcluster
