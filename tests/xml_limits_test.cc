// Resource-guard and malformed-input tests for XmlParser: every document in
// the corpus must be rejected with a clean Status (never a crash), and
// parse errors must carry line/column context.

#include <gtest/gtest.h>

#include <string>

#include "xml/parser.h"

namespace xcluster {
namespace {

Status ParseWith(std::string_view input, ParseOptions options = {}) {
  XmlParser parser(std::move(options));
  XmlDocument doc;
  return parser.Parse(input, &doc);
}

TEST(XmlLimitsTest, WellFormedStillParses) {
  EXPECT_TRUE(ParseWith("<a><b x='1'>7</b><c>text &amp; more</c></a>").ok());
}

TEST(XmlLimitsTest, MalformedCorpusRejectedWithPosition) {
  const std::string_view corpus[] = {
      "<a>",                          // unterminated element
      "<a><b></a>",                   // mismatched close tag
      "<a x=></a>",                   // missing attribute value
      "<a x='1></a>",                 // unterminated attribute value
      "<a 1bad='v'></a>",             // attribute name starts with a digit
      "<1a></1a>",                    // element name starts with a digit
      "<a></a><b></b>",               // two roots
      "<a><![CDATA[never closed</a>", // unterminated CDATA
      "<a",                           // truncated start tag
      "</a>",                         // close tag with no open
  };
  for (std::string_view doc : corpus) {
    Status status = ParseWith(doc);
    ASSERT_FALSE(status.ok()) << doc;
    EXPECT_NE(status.message().find("line "), std::string::npos)
        << doc << " -> " << status.ToString();
    EXPECT_NE(status.message().find("column "), std::string::npos)
        << doc << " -> " << status.ToString();
  }
}

TEST(XmlLimitsTest, PositionsAreOneBasedAndTrackNewlines) {
  // The mismatched close tag is on line 3.
  Status status = ParseWith("<a>\n  <b>\n  </c>\n</a>");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 3"), std::string::npos)
      << status.ToString();
}

TEST(XmlLimitsTest, DepthLimitEnforced) {
  ParseOptions options;
  options.limits.max_depth = 16;
  std::string deep;
  for (int i = 0; i < 32; ++i) deep += "<d>";
  for (int i = 0; i < 32; ++i) deep += "</d>";
  Status status = ParseWith(deep, options);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kResourceExhausted);
  EXPECT_NE(status.message().find("depth"), std::string::npos);

  std::string shallow = "<d><d><d>ok</d></d></d>";
  EXPECT_TRUE(ParseWith(shallow, options).ok());
}

TEST(XmlLimitsTest, DeepNestingWithDefaultLimitsDoesNotOverflowStack) {
  std::string deep;
  for (int i = 0; i < 100000; ++i) deep += "<d>";
  for (int i = 0; i < 100000; ++i) deep += "</d>";
  Status status = ParseWith(deep);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kResourceExhausted);
}

TEST(XmlLimitsTest, InputSizeLimitEnforced) {
  ParseOptions options;
  options.limits.max_input_bytes = 64;
  std::string big = "<a>" + std::string(100, 'x') + "</a>";
  Status status = ParseWith(big, options);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kResourceExhausted);
  EXPECT_TRUE(ParseWith("<a>small</a>", options).ok());
}

TEST(XmlLimitsTest, AttributeCountLimitEnforced) {
  ParseOptions options;
  options.limits.max_attribute_count = 8;
  std::string tag = "<a";
  for (int i = 0; i < 20; ++i) {
    tag += " a" + std::to_string(i) + "='v'";
  }
  tag += "></a>";
  Status status = ParseWith(tag, options);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kResourceExhausted);
  EXPECT_NE(status.message().find("attribute"), std::string::npos);

  EXPECT_TRUE(ParseWith("<a x='1' y='2' z='3'></a>", options).ok());
}

TEST(XmlLimitsTest, EntityExpansionLimitEnforced) {
  ParseOptions options;
  options.limits.max_entity_expansions = 10;
  std::string body;
  for (int i = 0; i < 50; ++i) body += "&amp;";
  Status status = ParseWith("<a>" + body + "</a>", options);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kResourceExhausted);
  EXPECT_NE(status.message().find("entity"), std::string::npos);

  EXPECT_TRUE(ParseWith("<a>&lt;ten&gt; &amp; fewer</a>", options).ok());
}

TEST(XmlLimitsTest, EntityLimitAppliesToAttributes) {
  ParseOptions options;
  options.limits.max_entity_expansions = 4;
  Status status =
      ParseWith("<a v='&amp;&amp;&amp;&amp;&amp;&amp;'></a>", options);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kResourceExhausted);
}

}  // namespace
}  // namespace xcluster
