#include "xml/parser.h"

#include <gtest/gtest.h>

namespace xcluster {
namespace {

XmlDocument MustParse(std::string_view input, ParseOptions options = {}) {
  XmlParser parser(std::move(options));
  XmlDocument doc;
  Status status = parser.Parse(input, &doc);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return doc;
}

TEST(XmlParserTest, MinimalDocument) {
  XmlDocument doc = MustParse("<root/>");
  ASSERT_EQ(doc.size(), 1u);
  EXPECT_EQ(doc.label_name(doc.root()), "root");
}

TEST(XmlParserTest, NestedElements) {
  XmlDocument doc = MustParse("<a><b><c/></b><b/></a>");
  ASSERT_EQ(doc.size(), 4u);
  EXPECT_EQ(doc.children(doc.root()).size(), 2u);
  NodeId b0 = doc.children(doc.root())[0];
  EXPECT_EQ(doc.label_name(b0), "b");
  EXPECT_EQ(doc.children(b0).size(), 1u);
}

TEST(XmlParserTest, NumericInference) {
  XmlDocument doc = MustParse("<r><year>2005</year></r>");
  NodeId year = doc.children(doc.root())[0];
  EXPECT_EQ(doc.type(year), ValueType::kNumeric);
  EXPECT_EQ(doc.node(year).numeric, 2005);
}

TEST(XmlParserTest, NegativeNumeric) {
  XmlDocument doc = MustParse("<r><t>-17</t></r>");
  NodeId t = doc.children(doc.root())[0];
  EXPECT_EQ(doc.type(t), ValueType::kNumeric);
  EXPECT_EQ(doc.node(t).numeric, -17);
}

TEST(XmlParserTest, StringInference) {
  XmlDocument doc = MustParse("<r><title>Holistic Twig Joins</title></r>");
  NodeId title = doc.children(doc.root())[0];
  EXPECT_EQ(doc.type(title), ValueType::kString);
  EXPECT_EQ(doc.node(title).text, "Holistic Twig Joins");
}

TEST(XmlParserTest, TextInferenceForLongContent) {
  std::string body(200, 'x');
  XmlDocument doc = MustParse("<r><abstract>" + body + "</abstract></r>");
  NodeId abs = doc.children(doc.root())[0];
  EXPECT_EQ(doc.type(abs), ValueType::kText);
}

TEST(XmlParserTest, TypeHintsOverrideInference) {
  ParseOptions options;
  options.type_hints["zipcode"] = ValueType::kString;
  options.type_hints["abstract"] = ValueType::kText;
  XmlDocument doc = MustParse(
      "<r><zipcode>90210</zipcode><abstract>short</abstract></r>", options);
  EXPECT_EQ(doc.type(doc.children(doc.root())[0]), ValueType::kString);
  EXPECT_EQ(doc.type(doc.children(doc.root())[1]), ValueType::kText);
}

TEST(XmlParserTest, AttributesBecomeChildren) {
  XmlDocument doc = MustParse("<item id=\"i7\" price=\"30\"/>");
  ASSERT_EQ(doc.children(doc.root()).size(), 2u);
  NodeId id = doc.children(doc.root())[0];
  EXPECT_EQ(doc.label_name(id), "@id");
  EXPECT_EQ(doc.node(id).text, "i7");
  NodeId price = doc.children(doc.root())[1];
  EXPECT_EQ(doc.type(price), ValueType::kNumeric);
  EXPECT_EQ(doc.node(price).numeric, 30);
}

TEST(XmlParserTest, AttributesDisabled) {
  ParseOptions options;
  options.attributes_as_children = false;
  XmlDocument doc = MustParse("<item id=\"i7\"/>", options);
  EXPECT_EQ(doc.size(), 1u);
}

TEST(XmlParserTest, EntityDecoding) {
  XmlDocument doc = MustParse("<r><t>a &lt;b&gt; &amp; &quot;c&quot; &#65;</t></r>");
  EXPECT_EQ(doc.node(doc.children(doc.root())[0]).text, "a <b> & \"c\" A");
}

TEST(XmlParserTest, CdataSection) {
  XmlDocument doc = MustParse("<r><t><![CDATA[5 < 6 & 7 > 2]]></t></r>");
  EXPECT_EQ(doc.node(doc.children(doc.root())[0]).text, "5 < 6 & 7 > 2");
}

TEST(XmlParserTest, CommentsAndPisSkipped) {
  XmlDocument doc = MustParse(
      "<?xml version=\"1.0\"?><!-- hi --><r><!-- in --><a/><?pi data?></r>");
  EXPECT_EQ(doc.size(), 2u);
}

TEST(XmlParserTest, DoctypeSkipped) {
  XmlDocument doc = MustParse("<!DOCTYPE site SYSTEM \"x.dtd\"><r/>");
  EXPECT_EQ(doc.size(), 1u);
}

TEST(XmlParserTest, DoctypeWithInternalSubsetSkipped) {
  XmlDocument doc = MustParse("<!DOCTYPE r [ <!ELEMENT r EMPTY> ]><r/>");
  EXPECT_EQ(doc.size(), 1u);
}

TEST(XmlParserTest, WhitespaceOnlyContentIgnored) {
  XmlDocument doc = MustParse("<r>\n  <a/>\n</r>");
  EXPECT_EQ(doc.type(doc.root()), ValueType::kNone);
}

TEST(XmlParserTest, MismatchedCloseTagFails) {
  XmlParser parser;
  XmlDocument doc;
  Status status = parser.Parse("<a><b></a></b>", &doc);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kCorruption);
}

TEST(XmlParserTest, UnterminatedElementFails) {
  XmlParser parser;
  XmlDocument doc;
  EXPECT_FALSE(parser.Parse("<a><b>", &doc).ok());
}

TEST(XmlParserTest, TrailingContentFails) {
  XmlParser parser;
  XmlDocument doc;
  EXPECT_FALSE(parser.Parse("<a/><b/>", &doc).ok());
}

TEST(XmlParserTest, EmptyInputFails) {
  XmlParser parser;
  XmlDocument doc;
  EXPECT_FALSE(parser.Parse("", &doc).ok());
}

TEST(XmlParserTest, MissingFileFails) {
  XmlParser parser;
  XmlDocument doc;
  EXPECT_EQ(parser.ParseFile("/nonexistent/path.xml", &doc).code(),
            Status::Code::kIOError);
}

TEST(XmlParserTest, SingleQuotedAttributes) {
  XmlDocument doc = MustParse("<r a='x y'/>");
  EXPECT_EQ(doc.node(doc.children(doc.root())[0]).text, "x y");
}

TEST(XmlParserTest, MixedContentConcatenated) {
  XmlDocument doc = MustParse("<r>hello <b/> world</r>");
  EXPECT_EQ(doc.node(doc.root()).text, "hello  world");
}

}  // namespace
}  // namespace xcluster
