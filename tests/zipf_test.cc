#include "common/zipf.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace xcluster {
namespace {

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  for (size_t i = 0; i < zipf.n(); ++i) total += zipf.Probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, ProbabilitiesDecreaseWithRank) {
  ZipfSampler zipf(50, 0.9);
  for (size_t i = 1; i < zipf.n(); ++i) {
    EXPECT_LE(zipf.Probability(i), zipf.Probability(i - 1) + 1e-12);
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(zipf.Probability(i), 0.1, 1e-9);
  }
}

TEST(ZipfTest, HigherThetaIsMoreSkewed) {
  ZipfSampler mild(100, 0.5);
  ZipfSampler steep(100, 1.5);
  EXPECT_GT(steep.Probability(0), mild.Probability(0));
}

TEST(ZipfTest, SampleMatchesDistribution) {
  ZipfSampler zipf(5, 1.0);
  Rng rng(99);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), zipf.Probability(i), 0.01)
        << "rank " << i;
  }
}

TEST(ZipfTest, SampleAlwaysInRange) {
  ZipfSampler zipf(7, 1.2);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 7u);
  }
}

TEST(ZipfTest, SingleElementDomain) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(5);
  EXPECT_EQ(zipf.Sample(&rng), 0u);
  EXPECT_NEAR(zipf.Probability(0), 1.0, 1e-12);
}

TEST(ZipfTest, ZeroSizeClampedToOne) {
  ZipfSampler zipf(0, 1.0);
  EXPECT_EQ(zipf.n(), 1u);
}

TEST(ZipfTest, OutOfRangeProbabilityIsZero) {
  ZipfSampler zipf(4, 1.0);
  EXPECT_EQ(zipf.Probability(10), 0.0);
}

}  // namespace
}  // namespace xcluster
