// xclusterctl — command-line front end for the XCluster library.
//
//   xclusterctl generate --dataset imdb|xmark [--scale S] [--seed N]
//               --out data.xml [--paths data.paths]
//       Generates a synthetic data set, writes it as XML, and (optionally)
//       writes the value paths that should receive detailed summaries.
//
//   xclusterctl build --in data.xml --out synopsis.xcs
//               [--bstr KB] [--bval KB] [--paths data.paths]
//               [--numeric hist|wavelet|sample] [--verbose]
//       Parses an XML file, builds an XCluster synopsis within the given
//       budgets, and saves it.
//
//   xclusterctl estimate --synopsis synopsis.xcs --query "//a[range(1,9)]/b"
//   xclusterctl estimate --synopsis synopsis.xcs --queries queries.txt
//       Loads a synopsis and prints the estimated selectivity of a twig
//       query (see query/parser.h for the syntax). With --queries, the
//       synopsis is loaded once into a SynopsisStore and every line of the
//       file is estimated against the shared snapshot, reporting per-query
//       latency; --workers N fans the batch across a thread pool.
//
//   xclusterctl serve --stdin [--workers N] [--queue N]
//               [--preload name=f.xcs ...] [--reach-cache-capacity N]
//               [--plan-cache-capacity N] [--quota name=rate:burst,...]
//               [--lane-weights I:B]
//       Runs the in-process estimation service on a line-oriented
//       stdin/stdout protocol (see docs/SERVING.md for the grammar).
//       --quota installs per-collection admission token buckets;
//       --lane-weights tunes the interactive:bulk fair-queueing shares.
//
//   xclusterctl serve --listen host:port [--stdin] [--max-connections N]
//               [--deadline-us N] [--drain-ms N] [--max-install-bytes N]
//               [...shared flags above]
//       Additionally (or instead) serves the binary frame protocol on a
//       TCP socket; stdio and socket clients share the same
//       SynopsisStore and executor. Prints "listening host:port" once
//       bound (port 0 picks an ephemeral port). SIGTERM/SIGINT trigger a
//       graceful drain. Bind/listen failures exit with code 3.
//
//       Observability knobs (docs/OBSERVABILITY.md):
//         --trace-sample R     deterministic span-sampling rate [0,1] for
//                              batches without a client sampling decision
//         --trace-ring N       always-on ring TraceRecorder capacity
//                              (default 65536 spans; 0 disables; ignored
//                              when --trace <path> installs the unbounded
//                              recorder instead)
//         --flight-ring N      flight-recorder capacity (default 4096)
//         --slow-query-ms N    batches slower than N ms append a JSON
//                              line to --slow-query-log (required with it)
//         --dump-prefix P      SIGQUIT writes <P>-<unixtime>.flight.json
//                              and <P>-<unixtime>.trace.json while the
//                              daemon keeps serving (default
//                              xcluster-dump)
//
//   xclusterctl route --listen host:port --peer host:port [--peer ...]
//               [--probe-ms N] [--workers N] [--queue N] [--retries N]
//               [--trace-sample R] [--flight-ring N] [--max-shards N]
//               [--max-install-bytes N]
//       Runs the cluster router (docs/CLUSTER.md): an XNET daemon that
//       rendezvous-hashes each collection over the static --peer fleet,
//       retries sheds per the --retries budget, fails over to the next
//       healthy replica, scatter-gathers `base@N` sharded collections,
//       and fans kInstall replication pushes to every healthy replica
//       under one generation. Same daemon conventions as serve --listen
//       (listening line, SIGTERM/SIGINT drain, exit 3 on bind failure).
//
//   xclusterctl remote <estimate|batch|load|stats|flight> --connect ...
//       Client for a `serve --listen` daemon: estimate --name n --query q;
//       batch --name n --queries f.txt [--deadline-us N] [--explain]
//       [--priority interactive|bulk] [--trace [hexid]] (ships the whole
//       file as one packed frame; --trace attaches a sampled trace
//       context — a 16-digit hex id, or server/client-generated when the
//       value is omitted — and prints the trace_id echoed by a v3
//       server); load --name n --path f.xcs (server-side path), or with
//       --replicate [--generation N] read the file here and push its
//       bytes as a chunked v4 install frame — through a router this
//       replicates to every healthy replica; stats [--prom|--json]
//       (typed v3 scrape frame; plain text falls back to the v1 command
//       path); flight [--limit N] (flight-recorder JSON dump, v3+).
//       Shared client flags: --timeout-ms N, --connect-timeout-ms N, and
//       --retries N (bounded exponential-backoff retry of admission sheds
//       and capacity rejections, honoring the server's retry-after hint).
//
//   xclusterctl inspect --synopsis synopsis.xcs [--dump]
//       Prints size/cluster statistics (and optionally the clustering).
//
//   xclusterctl verify --synopsis synopsis.xcs [--quiet]
//       fsck for synopsis files: walks the section table, checks every
//       CRC32C, and fully decodes. Exits non-zero on any corruption.
//
//   xclusterctl stats [--in metrics.json] [--format text|json|prom]
//       Pretty-prints a metrics snapshot: the live process registry, or a
//       snapshot previously exported with --metrics-json.
//
//   Global flags (any command except `remote`, where --trace is the
//   batch trace-context flag above):
//     --metrics-json <path>   write a registry snapshot (JSON) on exit
//     --metrics-prom <path>   write the snapshot in Prometheus text format
//     --trace <path>          record trace spans, write Chrome trace JSON
//       (see docs/OBSERVABILITY.md; span recording is inert when the
//       library was built with -DXCLUSTER_TELEMETRY=OFF)

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "common/io/file_io.h"
#include "common/json.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "core/serialize.h"
#include "core/xcluster.h"
#include "data/imdb.h"
#include "data/xmark.h"
#include "estimate/estimator.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "query/parser.h"
#include "estimate/compiled_twig.h"
#include "estimate/flat_estimator.h"
#include "estimate/flat_synopsis.h"
#include "service/harness.h"
#include "service/service.h"
#include "storage/xcsf_format.h"
#include "storage/xcsf_mmap_view.h"
#include "storage/xcsf_writer.h"
#include "synopsis/reference.h"
#include "synopsis/stats.h"
#include "workload/generator.h"
#include "workload/io.h"
#include "workload/metrics.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xcluster {
namespace {

/// Minimal --flag value parser. Flags with no following value get "".
/// Repeated flags accumulate (GetAll); the single-value accessors return
/// the last occurrence, preserving the old last-wins behavior.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      std::string key = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key].push_back(argv[++i]);
      } else {
        values_[key].push_back("");
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, std::string fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second.back();
  }

  /// Every occurrence of a repeatable flag (e.g. route --peer), in order.
  std::vector<std::string> GetAll(const std::string& key) const {
    auto it = values_.find(key);
    return it == values_.end() ? std::vector<std::string>() : it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second.back());
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoll(it->second.back());
  }

 private:
  std::map<std::string, std::vector<std::string>> values_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

int Generate(const Args& args) {
  const std::string kind = args.Get("dataset", "imdb");
  const std::string out = args.Get("out");
  if (out.empty()) return Fail("generate requires --out");
  GeneratedDataset dataset;
  if (kind == "imdb") {
    ImdbOptions options;
    options.scale = args.GetDouble("scale", 1.0);
    options.seed = static_cast<uint64_t>(args.GetInt("seed", 11));
    dataset = GenerateImdb(options);
  } else if (kind == "xmark") {
    XMarkOptions options;
    options.scale = args.GetDouble("scale", 1.0);
    options.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
    dataset = GenerateXMark(options);
  } else {
    return Fail("unknown --dataset '" + kind + "' (imdb|xmark)");
  }

  XmlWriter writer;
  Status status = writer.WriteFile(dataset.doc, out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %s: %zu elements, %zu valued\n", out.c_str(),
              dataset.doc.size(), dataset.doc.CountValued());

  const std::string paths_out = args.Get("paths");
  if (!paths_out.empty()) {
    std::ofstream paths_file(paths_out);
    for (const std::string& path : dataset.value_paths) {
      paths_file << path << '\n';
    }
    std::printf("wrote %zu value paths to %s\n", dataset.value_paths.size(),
                paths_out.c_str());
  }
  return 0;
}

int Build(const Args& args) {
  const std::string in = args.Get("in");
  const std::string out = args.Get("out");
  if (in.empty() || out.empty()) return Fail("build requires --in and --out");

  XmlParser parser;
  XmlDocument doc;
  Status status = parser.ParseFile(in, &doc);
  if (!status.ok()) return Fail("parse: " + status.ToString());

  XCluster::Options options;
  options.build.structural_budget =
      static_cast<size_t>(args.GetInt("bstr", 50)) * 1024;
  options.build.value_budget =
      static_cast<size_t>(args.GetInt("bval", 150)) * 1024;
  options.build.verbose = args.Has("verbose");
  const std::string paths = args.Get("paths");
  if (!paths.empty()) options.reference.value_paths = ReadLines(paths);
  const std::string numeric = args.Get("numeric", "hist");
  if (numeric == "wavelet") {
    options.reference.numeric_summary = NumericSummaryKind::kWavelet;
  } else if (numeric == "sample") {
    options.reference.numeric_summary = NumericSummaryKind::kSample;
  } else if (numeric != "hist") {
    return Fail("unknown --numeric '" + numeric + "' (hist|wavelet|sample)");
  }

  XCluster synopsis = XCluster::Build(doc, options);
  status = synopsis.Save(out);
  if (!status.ok()) return Fail("save: " + status.ToString());

  // Structured build report: the full BuildStats plus budgets and final
  // sizes, as one JSON object on stdout (machine-parseable; the bench
  // harness and CI smoke test consume it).
  const BuildStats& stats = synopsis.build_stats();
  auto num = [](size_t v) { return JsonValue::Number(static_cast<double>(v)); };
  JsonValue report = JsonValue::Object();
  report.members()["input"] = JsonValue::String(in);
  report.members()["output"] = JsonValue::String(out);
  report.members()["elements"] = num(doc.size());
  JsonValue budgets = JsonValue::Object();
  budgets.members()["structural_bytes"] = num(options.build.structural_budget);
  budgets.members()["value_bytes"] = num(options.build.value_budget);
  report.members()["budgets"] = std::move(budgets);
  JsonValue result = JsonValue::Object();
  result.members()["clusters"] = num(synopsis.synopsis().NodeCount());
  result.members()["edges"] = num(synopsis.synopsis().EdgeCount());
  result.members()["total_bytes"] = num(synopsis.SizeBytes());
  result.members()["structural_bytes"] =
      num(synopsis.synopsis().StructuralBytes());
  result.members()["value_bytes"] = num(synopsis.synopsis().ValueBytes());
  report.members()["synopsis"] = std::move(result);
  JsonValue build_stats = JsonValue::Object();
  build_stats.members()["reference_nodes"] = num(stats.reference_nodes);
  build_stats.members()["reference_bytes"] = num(stats.reference_bytes);
  build_stats.members()["merges_applied"] = num(stats.merges_applied);
  build_stats.members()["candidates_evaluated"] =
      num(stats.candidates_evaluated);
  build_stats.members()["pool_rebuilds"] = num(stats.pool_rebuilds);
  build_stats.members()["value_bytes_compressed"] =
      num(stats.value_bytes_compressed);
  build_stats.members()["final_structural_bytes"] =
      num(stats.final_structural_bytes);
  build_stats.members()["final_value_bytes"] = num(stats.final_value_bytes);
  report.members()["build_stats"] = std::move(build_stats);
  std::printf("%s\n", report.Dump(2).c_str());
  return 0;
}

/// Multi-query path: the synopsis is loaded (and checksum-verified) once
/// into a SynopsisStore, then every query in the file is estimated against
/// the shared snapshot — instead of the old reload-per-invocation loop.
int EstimateFile(const std::string& synopsis_path,
                 const std::string& queries_path, size_t workers,
                 bool explain) {
  ServiceOptions options;
  options.executor.num_threads = workers;
  EstimationService service(options);
  auto loaded = service.store().LoadFile("default", synopsis_path);
  if (!loaded.ok()) return Fail("load: " + loaded.status().ToString());

  const std::vector<std::string> queries = ReadLines(queries_path);
  if (queries.empty()) return Fail(queries_path + ": no queries");
  BatchOptions batch_options;
  batch_options.explain = explain;
  BatchResult batch = service.EstimateBatch("default", queries, batch_options);

  int rc = 0;
  for (size_t i = 0; i < batch.results.size(); ++i) {
    const QueryResult& result = batch.results[i];
    if (result.status.ok()) {
      std::printf("%-12.6g us=%-8llu %s\n", result.estimate,
                  static_cast<unsigned long long>(result.latency_ns / 1000),
                  queries[i].c_str());
      if (explain && !result.explanation.empty()) {
        std::printf("%s", result.explanation.c_str());
      }
    } else {
      std::printf("error: %-12s %s\n", result.status.ToString().c_str(),
                  queries[i].c_str());
      rc = 1;
    }
  }
  // Per-query latency summary straight from the telemetry histogram the
  // service records into on both the scalar and vectorized batch paths
  // (the estimator's own estimate.latency_ns only counts scalar DP runs).
  telemetry::MetricsSnapshot snapshot =
      telemetry::MetricsRegistry::Global().Snapshot();
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name != "service.request_latency_ns") continue;
    std::printf(
        "# %zu queries: ok=%zu err=%zu wall_us=%llu "
        "estimate_p50_us=%.1f p95_us=%.1f p99_us=%.1f\n",
        queries.size(), batch.stats.ok, batch.stats.failed,
        static_cast<unsigned long long>(batch.stats.wall_ns / 1000),
        histogram.p50_ns / 1000.0, histogram.p95_ns / 1000.0,
        histogram.p99_ns / 1000.0);
  }
  return rc;
}

int Estimate(const Args& args) {
  const std::string path = args.Get("synopsis");
  const std::string query = args.Get("query");
  const std::string queries = args.Get("queries");
  if (path.empty() || (query.empty() && queries.empty())) {
    return Fail("estimate requires --synopsis and --query or --queries");
  }
  if (!queries.empty()) {
    return EstimateFile(path, queries,
                        static_cast<size_t>(args.GetInt("workers", 0)),
                        args.Has("explain"));
  }
  if (storage::SniffXcsfFile(path)) {
    // Mapped image: estimate through the flat path (the only path a
    // mapped synopsis has — and it is bit-identical to the graph one).
    Result<storage::XcsfMmapView> view = storage::XcsfMmapView::Open(path);
    if (!view.ok()) return Fail("load: " + view.status().ToString());
    if (args.Has("explain")) {
      return Fail(
          "explain needs the synopsis graph; run it against the .xcs");
    }
    Result<TwigQuery> parsed = ParseTwig(query);
    if (!parsed.ok()) return Fail("query: " + parsed.status().ToString());
    const FlatSynopsis& flat = view.value().flat();
    const CompiledTwig plan = CompiledTwig::Compile(parsed.value(), flat);
    FlatEstimator estimator(flat);
    std::printf("%.6g\n", estimator.Estimate(plan));
    return 0;
  }
  Result<XCluster> synopsis = XCluster::Load(path);
  if (!synopsis.ok()) return Fail("load: " + synopsis.status().ToString());
  Result<double> estimate = synopsis.value().EstimateSelectivity(query);
  if (!estimate.ok()) {
    return Fail("query: " + estimate.status().ToString());
  }
  if (args.Has("explain")) {
    // The EXPLAIN rendering leads with the estimate, then the per-variable
    // VarStats table (expected bindings and predicate selectivity).
    Result<TwigQuery> parsed = ParseTwig(query);
    if (!parsed.ok()) return Fail("query: " + parsed.status().ToString());
    XClusterEstimator estimator(synopsis.value().synopsis());
    std::printf("%s", estimator.Explain(parsed.value()).ToString().c_str());
  } else {
    std::printf("%.6g\n", estimate.value());
  }
  return 0;
}

/// Exit code for bind/listen failures, distinct from the generic 1 so
/// scripts can tell "the port is taken" from "the request was malformed".
constexpr int kExitListenFailed = 3;

/// Write end of the serving NetServer's wake pipe; the signal handler is a
/// single async-signal-safe write(2) through it.
std::atomic<int> g_drain_fd{-1};

void HandleDrainSignal(int /*signo*/) {
  const int fd = g_drain_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    ssize_t ignored = ::write(fd, &byte, 1);
    (void)ignored;
  }
}

/// Write end of the SIGQUIT dump pipe. The handler writes one byte; a
/// dedicated thread does the actual file I/O so the daemon keeps serving
/// and the handler stays async-signal-safe.
std::atomic<int> g_dump_fd{-1};

void HandleDumpSignal(int /*signo*/) {
  const int fd = g_dump_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    ssize_t ignored = ::write(fd, &byte, 1);
    (void)ignored;
  }
}

/// Flight-ring + trace-ring dump to <prefix>-<unixtime>.{flight,trace}.json.
/// Runs on the dump thread (never in signal context). Prints the written
/// paths on stderr so wrappers (scripts/chaos_smoke.sh) can find them.
void WriteDebugDump(const EstimationService* service,
                    telemetry::TraceRecorder* recorder,
                    const std::string& prefix) {
  const std::string stamp = std::to_string(
      static_cast<long long>(::time(nullptr)));
  const std::string flight_path = prefix + "-" + stamp + ".flight.json";
  Status status = WriteFileAtomic(flight_path, service->flight().ToJson());
  if (status.ok()) {
    std::fprintf(stderr, "dump: wrote %s\n", flight_path.c_str());
  } else {
    std::fprintf(stderr, "dump: %s: %s\n", flight_path.c_str(),
                 status.ToString().c_str());
  }
  if (recorder != nullptr) {
    const std::string trace_path = prefix + "-" + stamp + ".trace.json";
    status = recorder->WriteFile(trace_path);
    if (status.ok()) {
      std::fprintf(stderr, "dump: wrote %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "dump: %s: %s\n", trace_path.c_str(),
                   status.ToString().c_str());
    }
  }
  std::fflush(stderr);
}

/// Owns the serve-mode ring recorder and its global registration.
/// Declared before the EstimationService so it is destroyed after it:
/// worker threads are joined first, then the recorder is uninstalled and
/// freed.
struct RingTraceGuard {
  std::unique_ptr<telemetry::TraceRecorder> recorder;

  ~RingTraceGuard() {
    if (recorder != nullptr &&
        telemetry::GlobalTraceRecorder() == recorder.get()) {
      telemetry::InstallGlobalTraceRecorder(nullptr);
    }
  }
};

/// Owns the SIGQUIT dump plumbing (self-pipe + worker thread). Declared
/// after the EstimationService so the dump thread — which reads the
/// service's flight ring — is stopped before the service dies, on every
/// Serve() exit path including the early Fail returns.
struct DumpPipeGuard {
  int pipe_read = -1;
  int pipe_write = -1;
  std::thread dump_thread;

  ~DumpPipeGuard() {
    if (pipe_write < 0) return;
    std::signal(SIGQUIT, SIG_DFL);
    g_dump_fd.store(-1, std::memory_order_relaxed);
    const char sentinel = 0;
    ssize_t ignored = ::write(pipe_write, &sentinel, 1);
    (void)ignored;
    if (dump_thread.joinable()) dump_thread.join();
    ::close(pipe_write);
    ::close(pipe_read);
  }
};

int Serve(const Args& args) {
  const std::string listen = args.Get("listen");
  if (!args.Has("stdin") && listen.empty()) {
    return Fail("serve requires --stdin and/or --listen <host:port>");
  }
  ServiceOptions options;
  options.executor.num_threads = static_cast<size_t>(
      args.GetInt("workers", std::thread::hardware_concurrency()));
  options.executor.queue_capacity =
      static_cast<size_t>(args.GetInt("queue", 1024));
  options.estimator.reach_cache_capacity = static_cast<size_t>(args.GetInt(
      "reach-cache-capacity",
      static_cast<int64_t>(options.estimator.reach_cache_capacity)));
  options.plan_cache_capacity = static_cast<size_t>(args.GetInt(
      "plan-cache-capacity",
      static_cast<int64_t>(options.plan_cache_capacity)));
  options.flight_recorder_capacity = static_cast<size_t>(args.GetInt(
      "flight-ring",
      static_cast<int64_t>(options.flight_recorder_capacity)));
  const int64_t slow_query_ms = args.GetInt("slow-query-ms", 0);
  if (slow_query_ms < 0) return Fail("--slow-query-ms must be >= 0");
  options.slow_query_ns = static_cast<uint64_t>(slow_query_ms) * 1000000;
  options.slow_query_log_path = args.Get("slow-query-log");
  if (slow_query_ms > 0 && options.slow_query_log_path.empty()) {
    return Fail("--slow-query-ms requires --slow-query-log <path>");
  }
  // --xcsf-spool DIR — persist replicated XCSF images there (atomic
  // write + mmap) so a restarted replica cold-starts from disk.
  options.xcsf_spool_dir = args.Get("xcsf-spool");
  // --lane-weights I:B — weighted-fair-queueing shares for the interactive
  // and bulk admission lanes (default 8:1).
  const std::string lane_weights = args.Get("lane-weights");
  if (!lane_weights.empty()) {
    const size_t colon = lane_weights.find(':');
    char* end = nullptr;
    const long interactive =
        std::strtol(lane_weights.c_str(), &end, 10);
    long bulk = 0;
    if (colon != std::string::npos) {
      bulk = std::strtol(lane_weights.c_str() + colon + 1, &end, 10);
    }
    if (colon == std::string::npos || interactive <= 0 || bulk <= 0) {
      return Fail("--lane-weights expects I:B with positive integers, got '" +
                  lane_weights + "'");
    }
    options.admission.lane_weights[static_cast<size_t>(Lane::kInteractive)] =
        static_cast<uint32_t>(interactive);
    options.admission.lane_weights[static_cast<size_t>(Lane::kBulk)] =
        static_cast<uint32_t>(bulk);
  }
  // Always-on bounded tracing for the daemon: a seqlock ring recorder that
  // overwrites the oldest spans instead of growing. --trace <path> (handled
  // in Run) installs the unbounded recorder instead and wins; --trace-ring 0
  // disables ring tracing entirely.
  const int64_t trace_ring = args.GetInt("trace-ring", 65536);
  if (trace_ring < 0) return Fail("--trace-ring must be >= 0");
  RingTraceGuard ring_trace;
  if (trace_ring > 0 && telemetry::GlobalTraceRecorder() == nullptr) {
    ring_trace.recorder = std::make_unique<telemetry::TraceRecorder>(
        static_cast<size_t>(trace_ring));
    telemetry::InstallGlobalTraceRecorder(ring_trace.recorder.get());
  }

  EstimationService service(options);

  // SIGQUIT → debug dump (flight ring + trace ring) without stopping the
  // daemon. The handler pokes a self-pipe; the dump thread owns the file
  // I/O so the handler stays down to one async-signal-safe write(2).
  DumpPipeGuard dump;
  {
    int dump_pipe[2] = {-1, -1};
    const std::string dump_prefix = args.Get("dump-prefix", "xcluster-dump");
    if (::pipe(dump_pipe) == 0) {
      dump.pipe_read = dump_pipe[0];
      dump.pipe_write = dump_pipe[1];
      g_dump_fd.store(dump.pipe_write, std::memory_order_relaxed);
      dump.dump_thread = std::thread([&service, read_fd = dump.pipe_read,
                                      dump_prefix] {
        for (;;) {
          char byte = 0;
          const ssize_t got = ::read(read_fd, &byte, 1);
          if (got <= 0 || byte == 0) break;  // shutdown sentinel / pipe gone
          WriteDebugDump(&service, telemetry::GlobalTraceRecorder(),
                         dump_prefix);
        }
      });
      std::signal(SIGQUIT, HandleDumpSignal);
    }
  }

  // --quota name=rate:burst[,name=rate:burst...]: per-collection admission
  // token buckets (queries/sec and burst size), installed before serving.
  std::string quota = args.Get("quota");
  while (!quota.empty()) {
    const size_t comma = quota.find(',');
    const std::string spec = quota.substr(0, comma);
    quota = comma == std::string::npos ? "" : quota.substr(comma + 1);
    const size_t eq = spec.find('=');
    const size_t colon = spec.find(':', eq == std::string::npos ? 0 : eq);
    if (eq == std::string::npos || colon == std::string::npos) {
      return Fail("--quota expects name=rate:burst, got '" + spec + "'");
    }
    char* end = nullptr;
    const double rate = std::strtod(spec.c_str() + eq + 1, &end);
    const double burst = std::strtod(spec.c_str() + colon + 1, &end);
    if (!(rate > 0) || !(burst > 0)) {
      return Fail("--quota " + spec + ": rate and burst must be positive");
    }
    service.admission().SetQuota(spec.substr(0, eq), rate, burst);
  }

  // --preload name=path[,name=path...]: install synopses before serving.
  std::string preload = args.Get("preload");
  while (!preload.empty()) {
    const size_t comma = preload.find(',');
    const std::string spec = preload.substr(0, comma);
    preload = comma == std::string::npos ? "" : preload.substr(comma + 1);
    const size_t eq = spec.find('=');
    if (eq == std::string::npos) {
      return Fail("--preload expects name=path, got '" + spec + "'");
    }
    auto loaded =
        service.store().LoadFile(spec.substr(0, eq), spec.substr(eq + 1));
    if (!loaded.ok()) {
      return Fail("preload " + spec + ": " + loaded.status().ToString());
    }
  }

  std::unique_ptr<net::NetServer> server;
  if (!listen.empty()) {
    Result<net::HostPort> host_port = net::ParseHostPort(listen);
    if (!host_port.ok()) {
      std::fprintf(stderr, "error: --listen %s: %s\n", listen.c_str(),
                   host_port.status().ToString().c_str());
      return kExitListenFailed;
    }
    net::NetServerOptions net_options;
    net_options.host = host_port.value().host;
    net_options.port = host_port.value().port;
    net_options.max_connections = static_cast<size_t>(args.GetInt(
        "max-connections", static_cast<int64_t>(net_options.max_connections)));
    net_options.default_deadline_ns =
        static_cast<uint64_t>(args.GetInt("deadline-us", 0)) * 1000;
    net_options.drain_timeout_ms = static_cast<uint64_t>(args.GetInt(
        "drain-ms", static_cast<int64_t>(net_options.drain_timeout_ms)));
    net_options.trace_sample = args.GetDouble("trace-sample", 0.0);
    if (net_options.trace_sample < 0.0 || net_options.trace_sample > 1.0) {
      return Fail("--trace-sample must be in [0, 1]");
    }
    const int64_t max_install = args.GetInt(
        "max-install-bytes", static_cast<int64_t>(net_options.max_install_bytes));
    if (max_install <= 0) return Fail("--max-install-bytes must be positive");
    net_options.max_install_bytes = static_cast<size_t>(max_install);
    server = std::make_unique<net::NetServer>(&service, net_options);
    Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
      return kExitListenFailed;
    }
    g_drain_fd.store(server->drain_fd(), std::memory_order_relaxed);
    std::signal(SIGTERM, HandleDrainSignal);
    std::signal(SIGINT, HandleDrainSignal);
    // The bound port on stdout (port 0 resolves to the kernel's pick) so
    // wrappers can scrape it; see scripts/net_smoke.sh.
    std::printf("listening %s:%u\n", net_options.host.c_str(),
                static_cast<unsigned>(server->port()));
    std::fflush(stdout);
  }

  int rc = 0;
  if (args.Has("stdin")) {
    ServiceHarness harness(&service);
    rc = harness.Run(std::cin, std::cout);
    if (server) server->Stop();  // stdio EOF/quit shuts the daemon down too
  } else {
    server->AwaitTermination();
  }
  if (server) {
    g_drain_fd.store(-1, std::memory_order_relaxed);
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
  }
  return rc;
}

/// `xclusterctl route --listen host:port --peer host:port [--peer ...]`
/// — the cluster router daemon (docs/CLUSTER.md): same XNET protocol on
/// both sides, rendezvous-hash routing with failover, kInstall fan-out
/// replication, and `base@N` scatter-gather. Same daemon conventions as
/// serve --listen: "listening host:port" on stdout once bound, SIGTERM/
/// SIGINT drain, exit 3 on bind failure.
int Route(const Args& args) {
  const std::string listen = args.Get("listen");
  if (listen.empty()) return Fail("route requires --listen host:port");
  const std::vector<std::string> peers = args.GetAll("peer");
  if (peers.empty()) return Fail("route requires at least one --peer host:port");
  for (const std::string& peer : peers) {
    if (peer.empty()) return Fail("--peer requires host:port");
  }
  Result<net::HostPort> host_port = net::ParseHostPort(listen);
  if (!host_port.ok()) {
    std::fprintf(stderr, "error: --listen %s: %s\n", listen.c_str(),
                 host_port.status().ToString().c_str());
    return kExitListenFailed;
  }

  cluster::RouterOptions options;
  options.server.host = host_port.value().host;
  options.server.port = host_port.value().port;
  options.server.max_connections = static_cast<size_t>(
      args.GetInt("max-connections",
                  static_cast<int64_t>(options.server.max_connections)));
  options.server.drain_timeout_ms = static_cast<uint64_t>(args.GetInt(
      "drain-ms", static_cast<int64_t>(options.server.drain_timeout_ms)));
  options.peers = peers;
  options.replicas.probe_interval_ms = static_cast<uint64_t>(
      args.GetInt("probe-ms",
                  static_cast<int64_t>(options.replicas.probe_interval_ms)));
  options.replicas.client.recv_timeout_ms =
      static_cast<uint64_t>(args.GetInt("timeout-ms", 30000));
  options.replicas.client.connect_timeout_ms = static_cast<uint64_t>(
      args.GetInt("connect-timeout-ms",
                  static_cast<int64_t>(
                      options.replicas.client.connect_timeout_ms)));
  // Shed-retry budget *per replica* before the router fails a batch over
  // to the next replica in HRW order.
  options.replicas.client.retry.max_attempts =
      static_cast<int>(args.GetInt("retries", 2));
  options.workers = static_cast<size_t>(args.GetInt("workers", 4));
  options.queue_capacity = static_cast<size_t>(args.GetInt("queue", 256));
  options.trace_sample = args.GetDouble("trace-sample", 0.0);
  if (options.trace_sample < 0.0 || options.trace_sample > 1.0) {
    return Fail("--trace-sample must be in [0, 1]");
  }
  options.flight_capacity = static_cast<size_t>(args.GetInt(
      "flight-ring", static_cast<int64_t>(options.flight_capacity)));
  options.max_shards = static_cast<uint32_t>(
      args.GetInt("max-shards", static_cast<int64_t>(options.max_shards)));
  const int64_t max_install = args.GetInt(
      "max-install-bytes",
      static_cast<int64_t>(options.server.max_install_bytes));
  if (max_install <= 0) return Fail("--max-install-bytes must be positive");
  options.server.max_install_bytes = static_cast<size_t>(max_install);

  cluster::Router router(std::move(options));
  Status started = router.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return kExitListenFailed;
  }
  g_drain_fd.store(router.drain_fd(), std::memory_order_relaxed);
  std::signal(SIGTERM, HandleDrainSignal);
  std::signal(SIGINT, HandleDrainSignal);
  std::printf("listening %s:%u\n", host_port.value().host.c_str(),
              static_cast<unsigned>(router.port()));
  std::fflush(stdout);
  router.AwaitTermination();
  g_drain_fd.store(-1, std::memory_order_relaxed);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  return 0;
}

int Remote(const std::string& action, const Args& args) {
  const std::string target = args.Get("connect");
  if (target.empty()) {
    return Fail("remote requires --connect host:port");
  }
  Result<net::HostPort> host_port = net::ParseHostPort(target);
  if (!host_port.ok()) {
    return Fail("--connect " + target + ": " +
                host_port.status().ToString());
  }
  net::NetClientOptions client_options;
  client_options.recv_timeout_ms =
      static_cast<uint64_t>(args.GetInt("timeout-ms", 30000));
  client_options.connect_timeout_ms = static_cast<uint64_t>(args.GetInt(
      "connect-timeout-ms",
      static_cast<int64_t>(client_options.connect_timeout_ms)));
  // --retries N: total attempts for retryable (Unavailable) refusals —
  // connection-capacity rejections at connect and admission sheds on batch.
  client_options.retry.max_attempts =
      static_cast<int>(args.GetInt("retries", 1));
  Result<net::NetClient> client = net::NetClient::ConnectWithRetry(
      host_port.value().host, host_port.value().port, client_options);
  if (!client.ok()) {
    return Fail("connect " + target + ": " + client.status().ToString());
  }

  if (action == "estimate") {
    const std::string name = args.Get("name");
    const std::string query = args.Get("query");
    if (name.empty() || query.empty()) {
      return Fail("remote estimate requires --name and --query");
    }
    Result<std::string> reply =
        client.value().Command("estimate " + name + " " + query);
    if (!reply.ok()) return Fail(reply.status().ToString());
    std::printf("%s", reply.value().c_str());
    return reply.value().rfind("ok", 0) == 0 ? 0 : 1;
  }
  if (action == "batch") {
    const std::string name = args.Get("name");
    const std::string queries_path = args.Get("queries");
    if (name.empty() || queries_path.empty()) {
      return Fail("remote batch requires --name and --queries");
    }
    std::vector<std::string> queries = ReadLines(queries_path);
    if (queries.empty()) return Fail(queries_path + ": no queries");
    BatchOptions batch_options;
    batch_options.explain = args.Has("explain");
    batch_options.deadline_ns =
        static_cast<uint64_t>(args.GetInt("deadline-us", 0)) * 1000;
    const std::string priority = args.Get("priority", "interactive");
    if (!ParseLane(priority, &batch_options.lane)) {
      return Fail("unknown --priority '" + priority +
                  "' (interactive|bulk)");
    }
    // --trace [hexid]: attach a sampled trace context. With no value the
    // client mints the id, so the trace is identifiable even before the
    // server echoes it back.
    if (args.Has("trace")) {
      const std::string hex = args.Get("trace");
      if (hex.empty()) {
        batch_options.trace.trace_id = telemetry::GenerateTraceId();
      } else {
        Status parsed =
            telemetry::ParseTraceIdHex(hex, &batch_options.trace.trace_id);
        if (!parsed.ok()) {
          return Fail("--trace " + hex + ": " + parsed.ToString());
        }
      }
      batch_options.trace.sampled = true;
    }
    Result<net::BatchReplyFrame> reply =
        client.value().Batch(name, queries, batch_options);
    if (!reply.ok()) {
      if (reply.status().code() == Status::Code::kUnavailable) {
        return Fail(reply.status().ToString() + " (after " +
                    std::to_string(client.value().last_attempts()) +
                    " attempts; retry_after_ms=" +
                    std::to_string(client.value().last_retry_after_ms()) +
                    ")");
      }
      return Fail(reply.status().ToString());
    }
    std::printf("%s",
                net::FormatBatchReply(reply.value(), batch_options.explain)
                    .c_str());
    // Only --trace requests print the id: batch output must stay
    // byte-identical to serve --stdin (net_smoke diffs them), and a v3
    // server echoes a minted id for every batch. Prefer the echo; fall
    // back to the sent id against a pre-v3 server.
    if (args.Has("trace")) {
      const uint64_t trace_id = client.value().last_trace_id() != 0
                                    ? client.value().last_trace_id()
                                    : batch_options.trace.trace_id;
      std::printf("trace_id=%s\n", telemetry::TraceIdHex(trace_id).c_str());
    }
    return reply.value().stats.failed == 0 ? 0 : 1;
  }
  if (action == "load") {
    const std::string name = args.Get("name");
    const std::string path = args.Get("path");
    if (name.empty() || path.empty()) {
      return Fail("remote load requires --name and --path");
    }
    if (args.Has("replicate")) {
      // --replicate reads the snapshot (.xcs or .xcsf) here and ships the
      // bytes as a chunked
      // kInstall push (v4). Against a router that fans the snapshot out to
      // every healthy replica under one generation; against a single
      // replica it is a plain wire install. Either way the file only has
      // to exist on the *client* machine.
      Result<std::string> bytes = ReadFileToString(path);
      if (!bytes.ok()) {
        return Fail("read " + path + ": " + bytes.status().ToString());
      }
      Status verified = storage::VerifySynopsisPayload(bytes.value(), nullptr);
      if (!verified.ok()) {
        return Fail(path + ": " + verified.ToString());
      }
      const uint64_t generation =
          static_cast<uint64_t>(args.GetInt("generation", 0));
      Result<net::InstallReplyFrame> reply =
          client.value().Install(name, bytes.value(), generation);
      if (!reply.ok()) return Fail(reply.status().ToString());
      if (reply.value().ok) {
        std::printf("ok install %s gen=%llu %s\n", name.c_str(),
                    static_cast<unsigned long long>(reply.value().generation),
                    reply.value().message.c_str());
        return 0;
      }
      std::printf("err install %s: %s\n", name.c_str(),
                  reply.value().message.c_str());
      return 1;
    }
    // The path is resolved by the server process, not this client.
    Result<std::string> reply =
        client.value().Command("load " + name + " " + path);
    if (!reply.ok()) return Fail(reply.status().ToString());
    std::printf("%s", reply.value().c_str());
    return reply.value().rfind("ok", 0) == 0 ? 0 : 1;
  }
  if (action == "stats") {
    // --prom/--json use the typed v3 scrape frame (machine formats straight
    // off the metrics registry); the plain form keeps the v1 command path
    // so old servers still answer.
    if (args.Has("prom") || args.Has("json")) {
      const net::StatsFormat format = args.Has("prom")
                                          ? net::StatsFormat::kPrometheus
                                          : net::StatsFormat::kJson;
      Result<std::string> scrape = client.value().StatsScrape(format);
      if (!scrape.ok()) return Fail(scrape.status().ToString());
      std::printf("%s", scrape.value().c_str());
      return 0;
    }
    Result<std::string> reply = client.value().Command("stats");
    if (!reply.ok()) return Fail(reply.status().ToString());
    std::printf("%s", reply.value().c_str());
    // Hello-handshake metadata as a trailing comment line: the negotiated
    // protocol version always, plus the v4 role/description when the
    // server sent them (a pre-v4 server has neither).
    std::printf("# server version=%u", client.value().negotiated_version());
    if (!client.value().server_role().empty()) {
      std::printf(" role=%s", client.value().server_role().c_str());
    }
    if (!client.value().server_description().empty()) {
      std::printf(" description=%s", client.value().server_description().c_str());
    }
    std::printf("\n");
    return reply.value().rfind("ok", 0) == 0 ? 0 : 1;
  }
  if (action == "flight") {
    const int64_t limit = args.GetInt("limit", 0);
    if (limit < 0) return Fail("--limit must be >= 0");
    Result<std::string> dump =
        client.value().FlightDump(static_cast<uint32_t>(limit));
    if (!dump.ok()) return Fail(dump.status().ToString());
    std::printf("%s", dump.value().c_str());
    return 0;
  }
  return Fail("unknown remote action '" + action +
              "' (estimate|batch|load|stats|flight)");
}

int Stats(const Args& args) {
  telemetry::MetricsSnapshot snapshot;
  const std::string in = args.Get("in");
  if (!in.empty()) {
    Result<std::string> bytes = ReadFileToString(in);
    if (!bytes.ok()) return Fail("read: " + bytes.status().ToString());
    Result<telemetry::MetricsSnapshot> parsed =
        telemetry::SnapshotFromJson(bytes.value());
    if (!parsed.ok()) return Fail(in + ": " + parsed.status().ToString());
    snapshot = std::move(parsed).value();
  } else {
    snapshot = telemetry::MetricsRegistry::Global().Snapshot();
  }
  const std::string format = args.Get("format", "text");
  if (format == "text") {
    std::printf("%s", snapshot.ToText().c_str());
  } else if (format == "json") {
    std::printf("%s", snapshot.ToJson().c_str());
  } else if (format == "prom") {
    std::printf("%s", snapshot.ToPrometheus().c_str());
  } else {
    return Fail("unknown --format '" + format + "' (text|json|prom)");
  }
  return 0;
}

/// Compiles a `.xcs` synopsis into an XCSF flat image (`.xcsf`): the
/// read-optimized form a daemon mmaps and serves zero-copy.
int Compile(const Args& args) {
  const std::string in = args.Get("in");
  const std::string out = args.Get("out");
  if (in.empty() || out.empty()) {
    return Fail("compile requires --in f.xcs and --out f.xcsf");
  }
  Result<XCluster> loaded = XCluster::Load(in);
  if (!loaded.ok()) return Fail("load: " + loaded.status().ToString());
  FlatSynopsis flat(loaded.value().synopsis());
  Status status = storage::XcsfWriter::Write(flat, out);
  if (!status.ok()) return Fail(status.ToString());
  // Re-open through the real mmap path: proves the image round-trips
  // before anyone serves from it, and reports the on-disk size.
  Result<storage::XcsfMmapView> view = storage::XcsfMmapView::Open(out);
  if (!view.ok()) return Fail("reopen: " + view.status().ToString());
  std::printf("compiled %s -> %s: %u clusters, %zu edges, %zu bytes\n",
              in.c_str(), out.c_str(), view.value().flat().num_nodes(),
              view.value().flat().num_edges(), view.value().image_bytes());
  return 0;
}

/// The per-section table shown by inspect, for either format.
void PrintSectionTable(const std::vector<SynopsisSectionInfo>& sections) {
  std::printf("%-20s %10s %12s  %s\n", "section", "offset", "bytes", "crc");
  for (const SynopsisSectionInfo& info : sections) {
    std::printf("%-20s %10llu %12llu  %s\n", info.name.c_str(),
                static_cast<unsigned long long>(info.offset),
                static_cast<unsigned long long>(info.length),
                info.crc_ok ? "ok" : "BAD");
  }
}

int Inspect(const Args& args) {
  const std::string path = args.Get("synopsis");
  if (path.empty()) return Fail("inspect requires --synopsis");
  if (storage::SniffXcsfFile(path)) {
    // XCSF image: everything comes from the header + section table —
    // tolerant of payload corruption (bad sections print "BAD").
    Result<std::string> bytes = ReadFileToString(path);
    if (!bytes.ok()) return Fail(bytes.status().ToString());
    storage::XcsfHeader header;
    Status status = storage::ParseXcsfHeader(bytes.value(),
                                             bytes.value().size(), &header);
    if (!status.ok()) return Fail(path + ": " + status.ToString());
    std::printf("format:     xcsf v%u (flat mmap image)\n", header.version);
    std::printf("clusters:   %u\n", header.node_count);
    std::printf("edges:      %llu\n",
                static_cast<unsigned long long>(header.edge_count));
    std::printf("terms:      %s\n",
                (header.flags & storage::kXcsfFlagHasTerms) != 0 ? "yes"
                                                                 : "no");
    std::printf("image:      %zu bytes (%u sections)\n",
                bytes.value().size(), header.section_count);
    std::vector<SynopsisSectionInfo> sections;
    status = storage::InspectXcsfSections(bytes.value(), &sections);
    if (!status.ok()) return Fail(path + ": " + status.ToString());
    PrintSectionTable(sections);
    return 0;
  }
  Result<XCluster> loaded = XCluster::Load(path);
  if (!loaded.ok()) return Fail("load: " + loaded.status().ToString());
  const GraphSynopsis& synopsis = loaded.value().synopsis();
  std::printf("clusters:   %zu\n", synopsis.NodeCount());
  std::printf("edges:      %zu\n", synopsis.EdgeCount());
  std::printf("structural: %zu bytes\n", synopsis.StructuralBytes());
  std::printf("value:      %zu bytes (%zu summarized clusters)\n",
              synopsis.ValueBytes(), synopsis.ValueNodeCount());
  auto dict = synopsis.term_dictionary();
  std::printf("terms:      %zu\n", dict ? dict->size() : 0);
  {
    Result<std::string> bytes = ReadFileToString(path);
    std::vector<SynopsisSectionInfo> sections;
    if (bytes.ok() &&
        InspectSynopsisSections(bytes.value(), &sections).ok()) {
      PrintSectionTable(sections);
    }
  }
  if (args.Has("detail")) {
    std::printf("%s", ComputeStats(synopsis).ToString().c_str());
  }
  if (args.Has("dump")) {
    std::printf("%s", synopsis.DebugString().c_str());
  }
  return 0;
}

GeneratedDataset GenerateByName(const Args& args, bool* ok) {
  const std::string kind = args.Get("dataset", "imdb");
  *ok = true;
  if (kind == "imdb") {
    ImdbOptions options;
    options.scale = args.GetDouble("scale", 1.0);
    options.seed = static_cast<uint64_t>(args.GetInt("seed", 11));
    return GenerateImdb(options);
  }
  if (kind == "xmark") {
    XMarkOptions options;
    options.scale = args.GetDouble("scale", 1.0);
    options.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
    return GenerateXMark(options);
  }
  *ok = false;
  return GeneratedDataset();
}

int MakeWorkload(const Args& args) {
  const std::string out = args.Get("out");
  if (out.empty()) return Fail("workload requires --out");
  bool ok = false;
  GeneratedDataset dataset = GenerateByName(args, &ok);
  if (!ok) return Fail("unknown --dataset (imdb|xmark)");
  ReferenceOptions ref_options;
  ref_options.value_paths = dataset.value_paths;
  GraphSynopsis reference = BuildReferenceSynopsis(dataset.doc, ref_options);
  WorkloadOptions wl_options;
  wl_options.num_queries = static_cast<size_t>(args.GetInt("queries", 1000));
  wl_options.seed = static_cast<uint64_t>(args.GetInt("seed", 17));
  wl_options.positive = !args.Has("negative");
  Workload workload = GenerateWorkload(dataset.doc, reference, wl_options);
  Status status = SaveWorkload(workload, out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %zu queries to %s\n", workload.queries.size(),
              out.c_str());
  return 0;
}

int Evaluate(const Args& args) {
  const std::string synopsis_path = args.Get("synopsis");
  const std::string workload_path = args.Get("workload");
  if (synopsis_path.empty() || workload_path.empty()) {
    return Fail("evaluate requires --synopsis and --workload");
  }
  Result<XCluster> synopsis = XCluster::Load(synopsis_path);
  if (!synopsis.ok()) return Fail("load: " + synopsis.status().ToString());
  Result<Workload> workload = LoadWorkload(workload_path);
  if (!workload.ok()) return Fail("workload: " + workload.status().ToString());

  XClusterEstimator estimator(synopsis.value().synopsis());
  std::vector<double> estimates;
  estimates.reserve(workload.value().queries.size());
  for (const WorkloadQuery& query : workload.value().queries) {
    estimates.push_back(estimator.Estimate(query.query));
  }
  ErrorReport report = EvaluateErrors(workload.value(), estimates);
  std::printf("queries:  %zu (sanity bound %.1f)\n", report.overall.count,
              report.sanity_bound);
  std::printf("overall:  %.1f%% avg rel error, %.2f avg abs error\n",
              100.0 * report.overall.avg_rel_error,
              report.overall.avg_abs_error);
  for (const auto& [name, stats] : report.by_class) {
    std::printf("%-8s  %.1f%% avg rel error (n=%zu)\n", name.c_str(),
                100.0 * stats.avg_rel_error, stats.count);
  }
  return 0;
}

int Verify(const Args& args) {
  const std::string path = args.Get("synopsis");
  if (path.empty()) return Fail("verify requires --synopsis");
  Result<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) return Fail(bytes.status().ToString());
  std::string report;
  Status status = storage::VerifySynopsisPayload(bytes.value(), &report);
  if (!args.Has("quiet") && !report.empty()) {
    std::printf("%s", report.c_str());
  }
  if (!status.ok()) {
    return Fail(path + ": " + status.ToString());
  }
  std::printf("%s: OK\n", path.c_str());
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: xclusterctl <command> [flags]\n"
      "  generate --dataset imdb|xmark [--scale S] [--seed N] --out f.xml\n"
      "           [--paths f.paths]\n"
      "  build    --in f.xml --out f.xcs [--bstr KB] [--bval KB]\n"
      "           [--paths f.paths] [--numeric hist|wavelet|sample]\n"
      "           [--verbose]\n"
      "  compile  --in f.xcs --out f.xcsf   (flat mmap image: zero-copy,\n"
      "           O(1) cold-start serving; see docs/FORMAT.md)\n"
      "  estimate --synopsis f.xcs --query \"//a[range(1,9)]/b\" [--explain]\n"
      "           (or --queries f.txt [--workers N] for a shared-load batch)\n"
      "  serve    --stdin [--workers N] [--queue N]\n"
      "           [--preload name=f.xcs|f.xcsf] [--xcsf-spool DIR]\n"
      "           [--reach-cache-capacity N] [--plan-cache-capacity N]\n"
      "           [--quota name=rate:burst,...] [--lane-weights I:B]\n"
      "           [--trace-sample R] [--trace-ring N] [--flight-ring N]\n"
      "           [--slow-query-ms N --slow-query-log f.log]\n"
      "           [--dump-prefix P]   (SIGQUIT writes flight+trace dumps)\n"
      "           [--listen host:port [--max-connections N]\n"
      "            [--deadline-us N] [--drain-ms N] [--max-install-bytes N]]\n"
      "  route    --listen host:port --peer host:port [--peer ...]\n"
      "           [--probe-ms N] [--workers N] [--queue N] [--retries N]\n"
      "           [--timeout-ms N] [--connect-timeout-ms N]\n"
      "           [--trace-sample R] [--flight-ring N] [--max-shards N]\n"
      "           [--max-connections N] [--drain-ms N]\n"
      "           [--max-install-bytes N]\n"
      "  remote   estimate --connect host:port --name n --query q\n"
      "  remote   batch    --connect host:port --name n --queries f.txt\n"
      "           [--deadline-us N] [--explain] [--trace [hexid]]\n"
      "           [--priority interactive|bulk]\n"
      "  remote   load     --connect host:port --name n --path f.xcs|f.xcsf\n"
      "           [--replicate [--generation N]]  (push bytes over the\n"
      "           wire; via a router, fan out to every healthy replica)\n"
      "  remote   stats    --connect host:port [--prom|--json]\n"
      "  remote   flight   --connect host:port [--limit N]\n"
      "  remote flags: [--timeout-ms N] [--connect-timeout-ms N]\n"
      "           [--retries N]\n"
      "  inspect  --synopsis f.xcs|f.xcsf [--detail] [--dump]\n"
      "  workload --dataset imdb|xmark [--scale S] [--seed N]\n"
      "           [--queries N] [--negative] --out f.tsv\n"
      "  evaluate --synopsis f.xcs --workload f.tsv\n"
      "  verify   --synopsis f.xcs|f.xcsf [--quiet]\n"
      "  stats    [--in metrics.json] [--format text|json|prom]\n"
      "global flags (any command):\n"
      "  --metrics-json f.json   export a metrics snapshot on exit\n"
      "  --metrics-prom f.prom   export Prometheus text format on exit\n"
      "  --trace f.json          record spans as Chrome trace JSON\n");
  return 2;
}

int Dispatch(const std::string& command, const std::string& action,
             const Args& args) {
  if (command == "generate") return Generate(args);
  if (command == "build") return Build(args);
  if (command == "compile") return Compile(args);
  if (command == "estimate") return Estimate(args);
  if (command == "inspect") return Inspect(args);
  if (command == "workload") return MakeWorkload(args);
  if (command == "evaluate") return Evaluate(args);
  if (command == "verify") return Verify(args);
  if (command == "stats") return Stats(args);
  if (command == "serve") return Serve(args);
  if (command == "route") return Route(args);
  if (command == "remote") return Remote(action, args);
  return Usage();
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  // `remote` takes its action as a bare word (remote estimate --connect
  // ...); the Args parser skips non-flag tokens, so lift it out here.
  std::string action;
  if (command == "remote" && argc >= 3 &&
      std::string(argv[2]).rfind("--", 0) != 0) {
    action = argv[2];
  }
  Args args(argc, argv);
  for (const char* flag : {"metrics-json", "metrics-prom", "trace"}) {
    // For `remote`, --trace is the batch trace-context flag (optional hex
    // id, no path) — it never names an output file there.
    if (command == "remote" && std::string(flag) == "trace") continue;
    if (args.Has(flag) && args.Get(flag).empty()) {
      return Fail(std::string("--") + flag + " requires a path");
    }
  }

  const std::string trace_path =
      command == "remote" ? "" : args.Get("trace");
  telemetry::TraceRecorder recorder;
  if (!trace_path.empty()) telemetry::InstallGlobalTraceRecorder(&recorder);

  int rc = Dispatch(command, action, args);

  if (!trace_path.empty()) {
    telemetry::InstallGlobalTraceRecorder(nullptr);
    Status status = recorder.WriteFile(trace_path);
    if (!status.ok()) {
      rc = Fail("trace: " + status.ToString());
    }
  }
  const std::string metrics_json = args.Get("metrics-json");
  const std::string metrics_prom = args.Get("metrics-prom");
  if (!metrics_json.empty() || !metrics_prom.empty()) {
    telemetry::MetricsSnapshot snapshot =
        telemetry::MetricsRegistry::Global().Snapshot();
    if (!metrics_json.empty()) {
      Status status = WriteFileAtomic(metrics_json, snapshot.ToJson());
      if (!status.ok()) rc = Fail("metrics-json: " + status.ToString());
    }
    if (!metrics_prom.empty()) {
      Status status = WriteFileAtomic(metrics_prom, snapshot.ToPrometheus());
      if (!status.ok()) rc = Fail("metrics-prom: " + status.ToString());
    }
  }
  return rc;
}

}  // namespace
}  // namespace xcluster

int main(int argc, char** argv) { return xcluster::Run(argc, argv); }
